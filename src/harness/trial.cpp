//===- harness/trial.cpp - Parallel evaluation trial runner ---------------===//

#include "harness/trial.h"

#include "exec/compiled.h"
#include "resilience/trial_abort.h"
#include "runtime/simulator.h"
#include "support/rng.h"

#include <array>
#include <atomic>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

using namespace enerj;
using namespace enerj::harness;

TrialRunner::TrialRunner(unsigned Threads) : Threads(Threads) {
  if (this->Threads == 0) {
    this->Threads = std::thread::hardware_concurrency();
    if (this->Threads == 0)
      this->Threads = 1;
  }
}

namespace {

/// One guarded approximate execution: like apps::runApproximate, but the
/// application runs inside a try block *while the simulator is still in
/// scope*, so a watchdog abort (or any in-trial exception) still yields
/// the partial statistics up to the abort point — aborted work is real
/// work and is charged. When the trial requests telemetry, a Telemetry
/// bundle is attached for the attempt and harvested here.
struct Attempt {
  apps::AppRun Run;
  bool Aborted = false;
  std::string Error;
  uint64_t EndCycle = 0; ///< The simulator clock when the attempt ended.
  obs::MetricsRegistry Metrics;
  std::vector<obs::TraceEvent> Trace;
  uint64_t TraceDropped = 0;
  env::PowerStats Power;    ///< Environment accounting (all-zero if off).
  bool PowerFailed = false; ///< The supply never let the attempt finish.
  std::array<uint64_t, env::NumPowerOpClasses> PowerMix{};
};

/// Folds one attempt's power accounting into the trial total: the event
/// counters sum across attempts, Survived reflects the latest (recorded)
/// attempt.
void accumulatePower(env::PowerStats &Total, const env::PowerStats &A) {
  Total.Losses += A.Losses;
  Total.Checkpoints += A.Checkpoints;
  Total.ReExecutedOps += A.ReExecutedOps;
  Total.LiveOps += A.LiveOps;
  Total.OffTicks += A.OffTicks;
  Total.LiveUnits += A.LiveUnits;
  Total.ChargedUnits += A.ChargedUnits;
  Total.Survived = A.Survived;
}

/// Trace-event kind of one power-meter event.
obs::TraceEventKind powerEventKind(env::PowerEventKind Kind) {
  return Kind == env::PowerEventKind::Loss ? obs::TraceEventKind::PowerLoss
         : Kind == env::PowerEventKind::Checkpoint
             ? obs::TraceEventKind::Checkpoint
             : obs::TraceEventKind::Restore;
}

Attempt runAttempt(const apps::Application &App, const FaultConfig &Config,
                   uint64_t WorkloadSeed, const obs::TelemetryRequest &Obs,
                   const env::PowerEnv *Power) {
  FaultConfig RunConfig = Config;
  // The same per-trial stream derivation as apps::runApproximate; retry
  // attempts pre-mix the attempt number into Config.Seed.
  RunConfig.Seed = mixSeed(Config.Seed, WorkloadSeed);
  Simulator Sim(RunConfig);
  std::optional<obs::Telemetry> Tel;
  if (Obs.enabled()) {
    Tel.emplace(Obs);
    Sim.attachTelemetry(&*Tel);
  }
  std::optional<env::PowerMeter> Meter;
  if (Power) {
    Meter.emplace(*Power, RunConfig);
    if (Tel && Obs.Trace)
      Meter->Events = [&Tel](env::PowerEventKind Kind, uint64_t At) {
        Tel->Trace.push(
            {At, At, powerEventKind(Kind), obs::OpKind::PreciseInt, 0});
      };
    Sim.attachPowerMeter(&*Meter);
  }
  Attempt A;
  {
    SimulatorScope Scope(Sim);
    try {
      A.Run.Output = App.run(WorkloadSeed);
    } catch (const resilience::TrialAbort &Abort) {
      A.Aborted = true;
      A.Error = Abort.what();
    } catch (const std::exception &E) {
      A.Aborted = true;
      A.Error = E.what();
    }
  }
  A.Run.Stats = Sim.stats();
  A.EndCycle = Sim.now();
  if (Tel) {
    Tel->Metrics.setRegionStorage(Sim.ledger().snapshotTagged());
    if (Obs.Trace) {
      A.Trace = Tel->Trace.drain();
      A.TraceDropped = Tel->Trace.dropped();
    }
    A.Metrics = std::move(Tel->Metrics);
  }
  if (Meter) {
    A.Power = Meter->stats();
    A.PowerFailed = Meter->failed();
    A.PowerMix = Meter->opMix();
  }
  return A;
}

/// Containment at the trial boundary: whatever escapes a trial becomes a
/// failed TrialResult instead of std::terminate tearing down the pool.
TrialResult runContained(const Trial &T,
                         const resilience::ResiliencePolicy &Policy) {
  try {
    return TrialRunner::runOne(T, Policy);
  } catch (const std::exception &E) {
    TrialResult Failed;
    Failed.QosError = 1.0;
    Failed.Outcome = resilience::TrialOutcome::Aborted;
    Failed.FinalLevel = T.Config.Level;
    Failed.EffectiveEnergyFactor = 0.0;
    Failed.Error = E.what();
    return Failed;
  } catch (...) {
    TrialResult Failed;
    Failed.QosError = 1.0;
    Failed.Outcome = resilience::TrialOutcome::Aborted;
    Failed.FinalLevel = T.Config.Level;
    Failed.EffectiveEnergyFactor = 0.0;
    Failed.Error = "unknown exception escaped the trial";
    return Failed;
  }
}

/// Appends one attempt's trace to the trial-level timeline, bracketed by
/// harness markers. Region ids are used as-is: every attempt of a trial
/// interns regions in execution order over the same application code, so
/// ids agree across attempts (an aborted attempt's table is a prefix).
void collectAttemptTrace(TrialResult &Result, const Attempt &A,
                         int AttemptIndex, ApproxLevel Level,
                         bool Accepted) {
  Result.Trace.push_back(
      {AttemptIndex,
       {0, static_cast<uint64_t>(Level), obs::TraceEventKind::AttemptBegin,
        obs::OpKind::PreciseInt, 0}});
  for (const obs::TraceEvent &E : A.Trace)
    Result.Trace.push_back({AttemptIndex, E});
  if (A.Aborted)
    Result.Trace.push_back({AttemptIndex,
                            {A.EndCycle, A.EndCycle,
                             obs::TraceEventKind::Abort,
                             obs::OpKind::PreciseInt, 0}});
  Result.Trace.push_back(
      {AttemptIndex,
       {A.EndCycle, Accepted ? 1u : 0u, obs::TraceEventKind::AttemptEnd,
        obs::OpKind::PreciseInt, 0}});
  Result.TraceDropped += A.TraceDropped;
}

/// The compiled path: the trial's verified kernel runs on a FastMachine
/// with batched fault injection; QoS comes from the kernel's baked-in
/// precise reference, so no second execution is needed. The stats are
/// priced through the same energy model as the interpreter path.
TrialResult runCompiled(const Trial &T) {
  TrialResult Result;
  // The same harness markers the interpreter path brackets its attempts
  // with: a journal of a compiled trial carries the attempt/power
  // timeline even though the FastMachine's batched injector has no
  // per-fault events.
  if (T.Obs.Trace)
    Result.Trace.push_back(
        {0,
         {0, static_cast<uint64_t>(T.Config.Level),
          obs::TraceEventKind::AttemptBegin, obs::OpKind::PreciseInt, 0}});
  std::optional<env::PowerMeter> Meter;
  if (T.Power) {
    Meter.emplace(*T.Power, T.Config);
    if (T.Obs.Trace)
      Meter->Events = [&Result](env::PowerEventKind Kind, uint64_t At) {
        Result.Trace.push_back(
            {0, {At, At, powerEventKind(Kind), obs::OpKind::PreciseInt, 0}});
      };
  }
  exec::CompiledTrialResult R = exec::runCompiledTrial(
      *T.Kernel, T.Config, T.WorkloadSeed, T.Obs.Metrics,
      BlockMode::Batched, Meter ? &*Meter : nullptr);
  Result.FinalLevel = T.Config.Level;
  Result.QosError = R.QosError;
  Result.Stats = R.Stats;
  Result.Energy = computeEnergy(R.Stats, T.Config);
  Result.EffectiveEnergyFactor = Result.Energy.TotalFactor;
  Result.ClockCycles = R.Cycles;
  if (R.Trapped) {
    Result.Outcome = resilience::TrialOutcome::Aborted;
    Result.Error = R.Error;
  }
  if (Meter) {
    Result.Power = Meter->stats();
    Result.EffectiveEnergyFactor =
        Result.Energy.TotalFactor * Result.Power.overheadRatio();
    if (Meter->failed()) {
      Result.Outcome = resilience::TrialOutcome::PowerFailed;
      Result.QosError = 1.0;
    }
  }
  if (T.Obs.Metrics)
    Result.Metrics = std::move(R.Metrics);
  if (T.Obs.Trace) {
    bool Accepted = Result.Outcome == resilience::TrialOutcome::Ok;
    if (R.Trapped)
      Result.Trace.push_back({0,
                              {R.Cycles, R.Cycles, obs::TraceEventKind::Abort,
                               obs::OpKind::PreciseInt, 0}});
    Result.Trace.push_back(
        {0,
         {R.Cycles, Accepted ? 1u : 0u, obs::TraceEventKind::AttemptEnd,
          obs::OpKind::PreciseInt, 0}});
  }
  return Result;
}

/// The program for one ladder rung on the compiled path: the trial's own
/// kernel when the rung matches, otherwise a cache lookup (nullptr ends
/// the ladder when no cache was provided).
const exec::CompiledKernel *kernelForLevel(const Trial &T, ApproxLevel Level) {
  if (T.Kernel && T.Kernel->Level == Level)
    return T.Kernel;
  if (!T.Kernels || !T.Kernel)
    return nullptr;
  return &T.Kernels->get(T.Kernel->AppName, Level);
}

/// Advances \p Config one ladder rung after a failed retry round, or
/// returns false to end the recovery process. Always-on policies walk the
/// classic degradation ladder (toward None: better QoS at more energy).
/// With a power environment armed the ladder inverts into the survival
/// direction: only a power-failed round escalates — toward Aggressive,
/// where cheaper approximate ops fit the supply — and rungs the forecast
/// prices as still unsustainable for the failed attempt's op mix are
/// skipped. The last rung is always attempted: the forecast is a
/// heuristic, the meter is the truth.
bool advanceLadder(const Trial &T, const resilience::ResiliencePolicy &Policy,
                   resilience::TrialOutcome LastOutcome,
                   const std::array<uint64_t, env::NumPowerOpClasses> &Mix,
                   FaultConfig &Config, int &LadderSteps, TrialResult &Result,
                   int Attempts) {
  if (!Policy.Degrade)
    return false;
  ApproxLevel NextLevel;
  if (T.Power) {
    if (LastOutcome != resilience::TrialOutcome::PowerFailed ||
        Config.Level == ApproxLevel::Aggressive)
      return false;
    FaultConfig Next = resilience::escalateConfig(Config);
    while (Next.Level != ApproxLevel::Aggressive &&
           !env::PowerMeter::forecastSustainable(*T.Power, Next, Mix))
      Next = resilience::escalateConfig(Next);
    NextLevel = Next.Level;
    Config = Next;
  } else {
    if (Config.Level == ApproxLevel::None)
      return false;
    Config = resilience::degradeConfig(Config);
    NextLevel = Config.Level;
  }
  if (T.Obs.Trace)
    Result.Trace.push_back({Attempts,
                            {0, static_cast<uint64_t>(NextLevel),
                             obs::TraceEventKind::Degrade,
                             obs::OpKind::PreciseInt, 0}});
  ++LadderSteps;
  return true;
}

/// The compiled path's recovery loop: the same retry-seed derivation and
/// acceptance shape as the interpreter loop, with attempts dispatched
/// onto cached (app, level) kernels — each ladder rung runs the binary
/// compiled for that rung. QoS comes from the kernel's baked-in precise
/// reference; acceptance is !trapped && !power-failed && QoS <= SLO (the
/// reference-relative QoS already covers output sanity).
TrialResult runCompiledResilient(const Trial &T,
                                 const resilience::ResiliencePolicy &Policy) {
  FaultConfig Config = T.Config;
  TrialResult Result;
  Result.FinalLevel = Config.Level;
  int LadderSteps = 0;
  int Attempts = 0;
  double EnergySum = 0.0;
  std::array<uint64_t, env::NumPowerOpClasses> LastMix{};
  for (;;) {
    const exec::CompiledKernel *Kernel = kernelForLevel(T, Config.Level);
    if (!Kernel)
      break; // No program for this rung: keep the last attempt's verdict.
    for (int Retry = 0; Retry <= Policy.MaxRetries; ++Retry) {
      FaultConfig AttemptConfig = Config;
      // Identical retry-stream derivation to the interpreter loop:
      // mixSeed(config seed, attempt), with runCompiledTrial folding in
      // the workload seed. Attempt 0 keeps the unmixed seed — bitwise
      // identical to the no-policy compiled path.
      if (Retry > 0)
        AttemptConfig.Seed =
            mixSeed(Config.Seed, static_cast<uint64_t>(Retry));
      // The same marker shape (and attempt indices) as the interpreter
      // recovery loop, so journals read identically across engines.
      if (Retry > 0 && T.Obs.Trace)
        Result.Trace.push_back({Attempts,
                                {0, static_cast<uint64_t>(Retry),
                                 obs::TraceEventKind::Retry,
                                 obs::OpKind::PreciseInt, 0}});
      if (T.Obs.Trace)
        Result.Trace.push_back(
            {Attempts,
             {0, static_cast<uint64_t>(AttemptConfig.Level),
              obs::TraceEventKind::AttemptBegin, obs::OpKind::PreciseInt,
              0}});
      std::optional<env::PowerMeter> Meter;
      if (T.Power) {
        Meter.emplace(*T.Power, AttemptConfig);
        if (T.Obs.Trace) {
          int AttemptIndex = Attempts;
          Meter->Events = [&Result, AttemptIndex](env::PowerEventKind Kind,
                                                  uint64_t At) {
            Result.Trace.push_back({AttemptIndex,
                                    {At, At, powerEventKind(Kind),
                                     obs::OpKind::PreciseInt, 0}});
          };
        }
      }
      exec::CompiledTrialResult R = exec::runCompiledTrial(
          *Kernel, AttemptConfig, T.WorkloadSeed, T.Obs.Metrics,
          BlockMode::Batched, Meter ? &*Meter : nullptr, Policy.OpBudget);
      ++Attempts;
      Result.Stats = R.Stats;
      Result.Energy = computeEnergy(R.Stats, AttemptConfig);
      Result.FinalLevel = AttemptConfig.Level;
      Result.Error = R.Error;
      Result.ClockCycles = R.Cycles;
      double Overhead = 1.0;
      bool PowerDead = false;
      if (Meter) {
        accumulatePower(Result.Power, Meter->stats());
        Overhead = Meter->stats().overheadRatio();
        LastMix = Meter->opMix();
        PowerDead = Meter->failed();
      }
      EnergySum += Result.Energy.TotalFactor * Overhead;
      Result.QosError = (R.Trapped || PowerDead) ? 1.0 : R.QosError;
      if (T.Obs.Metrics)
        Result.Metrics = std::move(R.Metrics);
      bool Accepted =
          !R.Trapped && !PowerDead && Result.QosError <= Policy.Slo;
      if (T.Obs.Trace) {
        if (R.Trapped)
          Result.Trace.push_back({Attempts - 1,
                                  {R.Cycles, R.Cycles,
                                   obs::TraceEventKind::Abort,
                                   obs::OpKind::PreciseInt, 0}});
        Result.Trace.push_back({Attempts - 1,
                                {R.Cycles, Accepted ? 1u : 0u,
                                 obs::TraceEventKind::AttemptEnd,
                                 obs::OpKind::PreciseInt, 0}});
      }
      if (Accepted) {
        Result.Outcome = LadderSteps > 0
                             ? resilience::TrialOutcome::Degraded
                         : Attempts > 1 ? resilience::TrialOutcome::Retried
                                        : resilience::TrialOutcome::Ok;
        Result.Attempts = Attempts;
        Result.EffectiveEnergyFactor = EnergySum;
        return Result;
      }
      Result.Outcome = PowerDead    ? resilience::TrialOutcome::PowerFailed
                       : R.Trapped  ? resilience::TrialOutcome::Aborted
                                    : resilience::TrialOutcome::SloViolated;
    }
    if (!advanceLadder(T, Policy, Result.Outcome, LastMix, Config,
                       LadderSteps, Result, Attempts))
      break;
  }
  // Every permitted attempt failed; Result holds the last attempt.
  Result.Attempts = Attempts > 0 ? Attempts : 1;
  Result.EffectiveEnergyFactor = EnergySum;
  return Result;
}

} // namespace

TrialResult TrialRunner::runOne(const Trial &T) {
  if (T.Kernel)
    return runCompiled(T);
  // Same sequence as the historical serial path (apps::qosUnder followed
  // by energy pricing): precise reference first, then the approximate run
  // on a fresh Simulator whose seed mixSeed derives from the trial alone.
  apps::AppOutput Reference = apps::runPrecise(*T.App, T.WorkloadSeed);
  TrialResult Result;
  Result.FinalLevel = T.Config.Level;
  if (!T.Obs.enabled() && !T.Power) {
    apps::AppRun Run = apps::runApproximate(*T.App, T.Config, T.WorkloadSeed);
    Result.QosError = T.App->qosError(Reference, Run.Output);
    Result.Stats = Run.Stats;
    Result.Energy = computeEnergy(Run.Stats, T.Config);
    Result.EffectiveEnergyFactor = Result.Energy.TotalFactor;
    return Result;
  }

  // Instrumented and/or power-metered path: the simulator executes the
  // identical run (runAttempt derives the same seed), plus containment so
  // a watchdog abort still yields the partial metrics up to the abort
  // point.
  Attempt A = runAttempt(*T.App, T.Config, T.WorkloadSeed, T.Obs, T.Power);
  Result.Stats = A.Run.Stats;
  Result.Energy = computeEnergy(A.Run.Stats, T.Config);
  Result.EffectiveEnergyFactor =
      Result.Energy.TotalFactor * A.Power.overheadRatio();
  Result.Error = A.Error;
  Result.ClockCycles = A.EndCycle;
  Result.Power = A.Power;
  if (A.PowerFailed) {
    Result.QosError = 1.0;
    Result.Outcome = resilience::TrialOutcome::PowerFailed;
  } else if (A.Aborted) {
    Result.QosError = 1.0;
    Result.Outcome = resilience::TrialOutcome::Aborted;
  } else {
    Result.QosError = T.App->qosError(Reference, A.Run.Output);
  }
  if (T.Obs.Trace)
    collectAttemptTrace(Result, A, 0, T.Config.Level,
                        !A.Aborted && !A.PowerFailed);
  Result.Metrics = std::move(A.Metrics);
  return Result;
}

TrialResult TrialRunner::runOne(const Trial &T,
                                const resilience::ResiliencePolicy &Policy) {
  if (!Policy.Enabled)
    return runOne(T);
  if (T.Kernel)
    return runCompiledResilient(T, Policy);

  apps::AppOutput Reference = apps::runPrecise(*T.App, T.WorkloadSeed);
  FaultConfig Config = T.Config;
  Config.OpBudgetOps = Policy.OpBudget;

  TrialResult Result;
  int LadderSteps = 0;
  int Attempts = 0;
  double EnergySum = 0.0;
  std::array<uint64_t, env::NumPowerOpClasses> LastMix{};
  for (;;) {
    for (int Retry = 0; Retry <= Policy.MaxRetries; ++Retry) {
      FaultConfig AttemptConfig = Config;
      // Retry fault streams are pure functions of (config seed, attempt):
      // runAttempt then folds in the workload seed, so the effective seed
      // is mixSeed(mixSeed(config seed, attempt), workload seed). The
      // first attempt keeps the unmixed seed — bit-identical to the
      // no-policy path.
      if (Retry > 0)
        AttemptConfig.Seed =
            mixSeed(Config.Seed, static_cast<uint64_t>(Retry));
      if (Retry > 0 && T.Obs.Trace)
        Result.Trace.push_back({Attempts,
                                {0, static_cast<uint64_t>(Retry),
                                 obs::TraceEventKind::Retry,
                                 obs::OpKind::PreciseInt, 0}});
      Attempt A =
          runAttempt(*T.App, AttemptConfig, T.WorkloadSeed, T.Obs, T.Power);
      ++Attempts;
      Result.Stats = A.Run.Stats;
      Result.Energy = computeEnergy(A.Run.Stats, AttemptConfig);
      Result.FinalLevel = AttemptConfig.Level;
      Result.Error = A.Error;
      Result.ClockCycles = A.EndCycle;
      EnergySum += Result.Energy.TotalFactor * A.Power.overheadRatio();
      accumulatePower(Result.Power, A.Power);
      LastMix = A.PowerMix;

      bool Sane = !A.Aborted && resilience::outputSane(
                                    A.Run.Output.Numeric,
                                    Policy.OutputAbsBound);
      Result.QosError = (A.Aborted || A.PowerFailed || !Sane)
                            ? 1.0
                            : T.App->qosError(Reference, A.Run.Output);
      bool Accepted = !A.Aborted && !A.PowerFailed && Sane &&
                      Result.QosError <= Policy.Slo;
      if (T.Obs.Trace)
        collectAttemptTrace(Result, A, Attempts - 1, AttemptConfig.Level,
                            Accepted);
      if (T.Obs.enabled()) {
        // The recorded attempt's registry replaces the previous one
        // (parallel to Stats). Earlier attempts' region names are
        // re-interned in id order so their trace events keep resolving —
        // within a trial, every attempt interns regions in the same
        // execution order, so each name lands back on its old id.
        obs::MetricsRegistry Prev = std::move(Result.Metrics);
        Result.Metrics = std::move(A.Metrics);
        for (uint32_t R = 0; R < Prev.regionCount(); ++R)
          Result.Metrics.internRegion(Prev.regionName(R));
      }
      if (Accepted) {
        Result.Outcome = LadderSteps > 0
                             ? resilience::TrialOutcome::Degraded
                         : Attempts > 1 ? resilience::TrialOutcome::Retried
                                        : resilience::TrialOutcome::Ok;
        Result.Attempts = Attempts;
        Result.EffectiveEnergyFactor = EnergySum;
        return Result;
      }
      Result.Outcome = A.PowerFailed ? resilience::TrialOutcome::PowerFailed
                       : A.Aborted   ? resilience::TrialOutcome::Aborted
                                     : resilience::TrialOutcome::SloViolated;
    }
    if (!advanceLadder(T, Policy, Result.Outcome, LastMix, Config,
                       LadderSteps, Result, Attempts))
      break;
  }
  // Every permitted attempt failed; Result holds the last attempt.
  Result.Attempts = Attempts;
  Result.EffectiveEnergyFactor = EnergySum;
  return Result;
}

std::vector<TrialResult> TrialRunner::run(
    const std::vector<Trial> &Trials) const {
  return run(Trials, resilience::ResiliencePolicy{});
}

std::vector<TrialResult> TrialRunner::run(
    const std::vector<Trial> &Trials,
    const resilience::ResiliencePolicy &Policy) const {
  return run(Trials, Policy, ProgressFn());
}

std::vector<TrialResult> TrialRunner::run(
    const std::vector<Trial> &Trials,
    const resilience::ResiliencePolicy &Policy,
    const ProgressFn &Progress) const {
  std::vector<TrialResult> Results(Trials.size());
  unsigned Workers = Threads;
  if (Workers > Trials.size())
    Workers = static_cast<unsigned>(Trials.size());

  if (Workers <= 1) {
    for (size_t I = 0; I < Trials.size(); ++I) {
      Results[I] = runContained(Trials[I], Policy);
      if (Progress)
        Progress(I + 1, Results[I]);
    }
    return Results;
  }

  // Lock-free work queue: one atomic ticket counter; each worker owns the
  // disjoint result slots of the trials it claims, so no further
  // synchronization is needed until join. Progress notification is the
  // one exception: a mutex serializes observer calls and the Done count,
  // keeping the hot path untouched when no observer is attached.
  std::atomic<size_t> Next{0};
  std::mutex ProgressMutex;
  size_t Done = 0;
  auto Worker = [&Trials, &Results, &Next, &Policy, &Progress,
                 &ProgressMutex, &Done]() {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Trials.size())
        return;
      Results[I] = runContained(Trials[I], Policy);
      if (Progress) {
        std::lock_guard<std::mutex> Lock(ProgressMutex);
        Progress(++Done, Results[I]);
      }
    }
  };

  std::vector<std::thread> Pool;
  Pool.reserve(Workers);
  for (unsigned W = 0; W < Workers; ++W)
    Pool.emplace_back(Worker);
  for (std::thread &T : Pool)
    T.join();
  return Results;
}
