//===- harness/trial.cpp - Parallel evaluation trial runner ---------------===//

#include "harness/trial.h"

#include "exec/compiled.h"
#include "resilience/trial_abort.h"
#include "runtime/simulator.h"
#include "support/rng.h"

#include <atomic>
#include <exception>
#include <optional>
#include <thread>
#include <utility>

using namespace enerj;
using namespace enerj::harness;

TrialRunner::TrialRunner(unsigned Threads) : Threads(Threads) {
  if (this->Threads == 0) {
    this->Threads = std::thread::hardware_concurrency();
    if (this->Threads == 0)
      this->Threads = 1;
  }
}

namespace {

/// One guarded approximate execution: like apps::runApproximate, but the
/// application runs inside a try block *while the simulator is still in
/// scope*, so a watchdog abort (or any in-trial exception) still yields
/// the partial statistics up to the abort point — aborted work is real
/// work and is charged. When the trial requests telemetry, a Telemetry
/// bundle is attached for the attempt and harvested here.
struct Attempt {
  apps::AppRun Run;
  bool Aborted = false;
  std::string Error;
  uint64_t EndCycle = 0; ///< The simulator clock when the attempt ended.
  obs::MetricsRegistry Metrics;
  std::vector<obs::TraceEvent> Trace;
  uint64_t TraceDropped = 0;
};

Attempt runAttempt(const apps::Application &App, const FaultConfig &Config,
                   uint64_t WorkloadSeed,
                   const obs::TelemetryRequest &Obs) {
  FaultConfig RunConfig = Config;
  // The same per-trial stream derivation as apps::runApproximate; retry
  // attempts pre-mix the attempt number into Config.Seed.
  RunConfig.Seed = mixSeed(Config.Seed, WorkloadSeed);
  Simulator Sim(RunConfig);
  std::optional<obs::Telemetry> Tel;
  if (Obs.enabled()) {
    Tel.emplace(Obs);
    Sim.attachTelemetry(&*Tel);
  }
  Attempt A;
  {
    SimulatorScope Scope(Sim);
    try {
      A.Run.Output = App.run(WorkloadSeed);
    } catch (const resilience::TrialAbort &Abort) {
      A.Aborted = true;
      A.Error = Abort.what();
    } catch (const std::exception &E) {
      A.Aborted = true;
      A.Error = E.what();
    }
  }
  A.Run.Stats = Sim.stats();
  A.EndCycle = Sim.now();
  if (Tel) {
    Tel->Metrics.setRegionStorage(Sim.ledger().snapshotTagged());
    if (Obs.Trace) {
      A.Trace = Tel->Trace.drain();
      A.TraceDropped = Tel->Trace.dropped();
    }
    A.Metrics = std::move(Tel->Metrics);
  }
  return A;
}

/// Containment at the trial boundary: whatever escapes a trial becomes a
/// failed TrialResult instead of std::terminate tearing down the pool.
TrialResult runContained(const Trial &T,
                         const resilience::ResiliencePolicy &Policy) {
  try {
    return TrialRunner::runOne(T, Policy);
  } catch (const std::exception &E) {
    TrialResult Failed;
    Failed.QosError = 1.0;
    Failed.Outcome = resilience::TrialOutcome::Aborted;
    Failed.FinalLevel = T.Config.Level;
    Failed.EffectiveEnergyFactor = 0.0;
    Failed.Error = E.what();
    return Failed;
  } catch (...) {
    TrialResult Failed;
    Failed.QosError = 1.0;
    Failed.Outcome = resilience::TrialOutcome::Aborted;
    Failed.FinalLevel = T.Config.Level;
    Failed.EffectiveEnergyFactor = 0.0;
    Failed.Error = "unknown exception escaped the trial";
    return Failed;
  }
}

/// Appends one attempt's trace to the trial-level timeline, bracketed by
/// harness markers. Region ids are used as-is: every attempt of a trial
/// interns regions in execution order over the same application code, so
/// ids agree across attempts (an aborted attempt's table is a prefix).
void collectAttemptTrace(TrialResult &Result, const Attempt &A,
                         int AttemptIndex, ApproxLevel Level,
                         bool Accepted) {
  Result.Trace.push_back(
      {AttemptIndex,
       {0, static_cast<uint64_t>(Level), obs::TraceEventKind::AttemptBegin,
        obs::OpKind::PreciseInt, 0}});
  for (const obs::TraceEvent &E : A.Trace)
    Result.Trace.push_back({AttemptIndex, E});
  if (A.Aborted)
    Result.Trace.push_back({AttemptIndex,
                            {A.EndCycle, A.EndCycle,
                             obs::TraceEventKind::Abort,
                             obs::OpKind::PreciseInt, 0}});
  Result.Trace.push_back(
      {AttemptIndex,
       {A.EndCycle, Accepted ? 1u : 0u, obs::TraceEventKind::AttemptEnd,
        obs::OpKind::PreciseInt, 0}});
  Result.TraceDropped += A.TraceDropped;
}

/// The compiled path: the trial's verified kernel runs on a FastMachine
/// with batched fault injection; QoS comes from the kernel's baked-in
/// precise reference, so no second execution is needed. The stats are
/// priced through the same energy model as the interpreter path.
TrialResult runCompiled(const Trial &T) {
  exec::CompiledTrialResult R = exec::runCompiledTrial(
      *T.Kernel, T.Config, T.WorkloadSeed, T.Obs.Metrics);
  TrialResult Result;
  Result.FinalLevel = T.Config.Level;
  Result.QosError = R.QosError;
  Result.Stats = R.Stats;
  Result.Energy = computeEnergy(R.Stats, T.Config);
  Result.EffectiveEnergyFactor = Result.Energy.TotalFactor;
  Result.ClockCycles = R.Cycles;
  if (R.Trapped) {
    Result.Outcome = resilience::TrialOutcome::Aborted;
    Result.Error = R.Error;
  }
  if (T.Obs.Metrics)
    Result.Metrics = std::move(R.Metrics);
  return Result;
}

} // namespace

TrialResult TrialRunner::runOne(const Trial &T) {
  if (T.Kernel)
    return runCompiled(T);
  // Same sequence as the historical serial path (apps::qosUnder followed
  // by energy pricing): precise reference first, then the approximate run
  // on a fresh Simulator whose seed mixSeed derives from the trial alone.
  apps::AppOutput Reference = apps::runPrecise(*T.App, T.WorkloadSeed);
  TrialResult Result;
  Result.FinalLevel = T.Config.Level;
  if (!T.Obs.enabled()) {
    apps::AppRun Run = apps::runApproximate(*T.App, T.Config, T.WorkloadSeed);
    Result.QosError = T.App->qosError(Reference, Run.Output);
    Result.Stats = Run.Stats;
    Result.Energy = computeEnergy(Run.Stats, T.Config);
    Result.EffectiveEnergyFactor = Result.Energy.TotalFactor;
    return Result;
  }

  // Instrumented path: the simulator executes the identical run
  // (runAttempt derives the same seed), plus containment so a watchdog
  // abort still yields the partial metrics up to the abort point.
  Attempt A = runAttempt(*T.App, T.Config, T.WorkloadSeed, T.Obs);
  Result.Stats = A.Run.Stats;
  Result.Energy = computeEnergy(A.Run.Stats, T.Config);
  Result.EffectiveEnergyFactor = Result.Energy.TotalFactor;
  Result.Error = A.Error;
  Result.ClockCycles = A.EndCycle;
  if (A.Aborted) {
    Result.QosError = 1.0;
    Result.Outcome = resilience::TrialOutcome::Aborted;
  } else {
    Result.QosError = T.App->qosError(Reference, A.Run.Output);
  }
  if (T.Obs.Trace)
    collectAttemptTrace(Result, A, 0, T.Config.Level, !A.Aborted);
  Result.Metrics = std::move(A.Metrics);
  return Result;
}

TrialResult TrialRunner::runOne(const Trial &T,
                                const resilience::ResiliencePolicy &Policy) {
  // The compiled path has no recovery loop; callers arming a policy must
  // stay on the interpreter (the CLI rejects the combination).
  if (T.Kernel || !Policy.Enabled)
    return runOne(T);

  apps::AppOutput Reference = apps::runPrecise(*T.App, T.WorkloadSeed);
  FaultConfig Config = T.Config;
  Config.OpBudgetOps = Policy.OpBudget;

  TrialResult Result;
  int LadderSteps = 0;
  int Attempts = 0;
  double EnergySum = 0.0;
  for (;;) {
    for (int Retry = 0; Retry <= Policy.MaxRetries; ++Retry) {
      FaultConfig AttemptConfig = Config;
      // Retry fault streams are pure functions of (config seed, attempt):
      // runAttempt then folds in the workload seed, so the effective seed
      // is mixSeed(mixSeed(config seed, attempt), workload seed). The
      // first attempt keeps the unmixed seed — bit-identical to the
      // no-policy path.
      if (Retry > 0)
        AttemptConfig.Seed =
            mixSeed(Config.Seed, static_cast<uint64_t>(Retry));
      if (Retry > 0 && T.Obs.Trace)
        Result.Trace.push_back({Attempts,
                                {0, static_cast<uint64_t>(Retry),
                                 obs::TraceEventKind::Retry,
                                 obs::OpKind::PreciseInt, 0}});
      Attempt A = runAttempt(*T.App, AttemptConfig, T.WorkloadSeed, T.Obs);
      ++Attempts;
      Result.Stats = A.Run.Stats;
      Result.Energy = computeEnergy(A.Run.Stats, AttemptConfig);
      Result.FinalLevel = AttemptConfig.Level;
      Result.Error = A.Error;
      Result.ClockCycles = A.EndCycle;
      EnergySum += Result.Energy.TotalFactor;

      bool Sane = !A.Aborted && resilience::outputSane(
                                    A.Run.Output.Numeric,
                                    Policy.OutputAbsBound);
      Result.QosError = (A.Aborted || !Sane)
                            ? 1.0
                            : T.App->qosError(Reference, A.Run.Output);
      bool Accepted = !A.Aborted && Sane && Result.QosError <= Policy.Slo;
      if (T.Obs.Trace)
        collectAttemptTrace(Result, A, Attempts - 1, AttemptConfig.Level,
                            Accepted);
      if (T.Obs.enabled()) {
        // The recorded attempt's registry replaces the previous one
        // (parallel to Stats). Earlier attempts' region names are
        // re-interned in id order so their trace events keep resolving —
        // within a trial, every attempt interns regions in the same
        // execution order, so each name lands back on its old id.
        obs::MetricsRegistry Prev = std::move(Result.Metrics);
        Result.Metrics = std::move(A.Metrics);
        for (uint32_t R = 0; R < Prev.regionCount(); ++R)
          Result.Metrics.internRegion(Prev.regionName(R));
      }
      if (Accepted) {
        Result.Outcome = LadderSteps > 0
                             ? resilience::TrialOutcome::Degraded
                         : Attempts > 1 ? resilience::TrialOutcome::Retried
                                        : resilience::TrialOutcome::Ok;
        Result.Attempts = Attempts;
        Result.EffectiveEnergyFactor = EnergySum;
        return Result;
      }
      Result.Outcome = A.Aborted ? resilience::TrialOutcome::Aborted
                                 : resilience::TrialOutcome::SloViolated;
    }
    if (!Policy.Degrade || Config.Level == ApproxLevel::None)
      break;
    if (T.Obs.Trace)
      Result.Trace.push_back(
          {Attempts,
           {0,
            static_cast<uint64_t>(resilience::degradeConfig(Config).Level),
            obs::TraceEventKind::Degrade, obs::OpKind::PreciseInt, 0}});
    Config = resilience::degradeConfig(Config);
    ++LadderSteps;
  }
  // Every permitted attempt failed; Result holds the last attempt.
  Result.Attempts = Attempts;
  Result.EffectiveEnergyFactor = EnergySum;
  return Result;
}

std::vector<TrialResult> TrialRunner::run(
    const std::vector<Trial> &Trials) const {
  return run(Trials, resilience::ResiliencePolicy{});
}

std::vector<TrialResult> TrialRunner::run(
    const std::vector<Trial> &Trials,
    const resilience::ResiliencePolicy &Policy) const {
  std::vector<TrialResult> Results(Trials.size());
  unsigned Workers = Threads;
  if (Workers > Trials.size())
    Workers = static_cast<unsigned>(Trials.size());

  if (Workers <= 1) {
    for (size_t I = 0; I < Trials.size(); ++I)
      Results[I] = runContained(Trials[I], Policy);
    return Results;
  }

  // Lock-free work queue: one atomic ticket counter; each worker owns the
  // disjoint result slots of the trials it claims, so no further
  // synchronization is needed until join.
  std::atomic<size_t> Next{0};
  auto Worker = [&Trials, &Results, &Next, &Policy]() {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Trials.size())
        return;
      Results[I] = runContained(Trials[I], Policy);
    }
  };

  std::vector<std::thread> Pool;
  Pool.reserve(Workers);
  for (unsigned W = 0; W < Workers; ++W)
    Pool.emplace_back(Worker);
  for (std::thread &T : Pool)
    T.join();
  return Results;
}
