//===- harness/eval.cpp - The Section 6 evaluation grid -------------------===//

#include "harness/eval.h"

#include "exec/compiled.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <optional>
#include <stdexcept>

using namespace enerj;
using namespace enerj::harness;

const std::vector<ApproxLevel> &enerj::harness::evalLevels() {
  static const std::vector<ApproxLevel> Levels = {
      ApproxLevel::Mild, ApproxLevel::Medium, ApproxLevel::Aggressive};
  return Levels;
}

const char *enerj::harness::execModeName(ExecMode Mode) {
  return Mode == ExecMode::Compiled ? "compiled" : "interp";
}

const EvalCell *EvalResult::cell(const apps::Application &App,
                                 ApproxLevel Level) const {
  for (const EvalCell &C : Cells)
    if (C.App == &App && C.Level == Level)
      return &C;
  return nullptr;
}

std::vector<std::vector<double>> enerj::harness::meanQosGrid(
    const std::vector<const apps::Application *> &Apps,
    const std::vector<FaultConfig> &Configs, int Runs, unsigned Threads) {
  std::vector<Trial> Trials;
  Trials.reserve(Apps.size() * Configs.size() * Runs);
  for (const apps::Application *App : Apps)
    for (const FaultConfig &Config : Configs)
      for (int Seed = 1; Seed <= Runs; ++Seed)
        Trials.push_back({App, Config, static_cast<uint64_t>(Seed)});

  std::vector<TrialResult> Results = TrialRunner(Threads).run(Trials);

  std::vector<std::vector<double>> Means(Apps.size());
  size_t Index = 0;
  for (size_t A = 0; A < Apps.size(); ++A)
    for (size_t C = 0; C < Configs.size(); ++C) {
      std::vector<double> Qos;
      Qos.reserve(Runs);
      for (int Seed = 1; Seed <= Runs; ++Seed, ++Index)
        Qos.push_back(Results[Index].QosError);
      Means[A].push_back(TrialStats::over(Qos).Mean);
    }
  return Means;
}

EvalResult enerj::harness::runEval(const EvalOptions &Options) {
  EvalResult Result;
  Result.Apps = Options.Apps.empty()
                    ? apps::allApplications()
                    : Options.Apps;
  Result.Levels = Options.Levels.empty() ? evalLevels() : Options.Levels;
  Result.Seeds = Options.Seeds < 1 ? 1 : Options.Seeds;
  Result.Policy = Options.Policy;
  Result.MetricsCollected = Options.Metrics;
  Result.Exec = Options.Exec;
  Result.EchoExecMode = Options.EchoExecMode;
  Result.Power = Options.Power;
  Result.PowerArmed = Options.PowerArmed;

  // The compiled path lowers each (app, level) cell exactly once before
  // any trial runs; a cell whose kernel fails any pipeline stage aborts
  // the whole grid (a silent fall-back to the interpreter would change
  // what the numbers mean). The cache must outlive the trial list,
  // which points into it. With a ladder-walking policy armed, every
  // rung's kernel is compiled up front too, so a mid-grid rung can never
  // fail compilation inside a worker (where the error would be contained
  // as an aborted trial instead of aborting the grid).
  std::optional<exec::ProgramCache> Kernels;
  if (Options.Exec == ExecMode::Compiled) {
    Kernels.emplace(Options.KernelDir);
    if (Options.Policy.Enabled && Options.Policy.Degrade)
      for (const apps::Application *App : Result.Apps)
        for (ApproxLevel Rung :
             {ApproxLevel::None, ApproxLevel::Mild, ApproxLevel::Medium,
              ApproxLevel::Aggressive})
          Kernels->get(App->name(), Rung);
  }

  // App-major, level-minor, seeds ascending: the same enumeration order
  // the serial harnesses used, so per-cell slices are contiguous and
  // in seed order.
  std::vector<Trial> Trials;
  Trials.reserve(Result.Apps.size() * Result.Levels.size() * Result.Seeds);
  for (const apps::Application *App : Result.Apps)
    for (ApproxLevel Level : Result.Levels) {
      FaultConfig Config = FaultConfig::preset(Level);
      const exec::CompiledKernel *Kernel =
          Kernels ? &Kernels->get(App->name(), Level) : nullptr;
      for (int Seed = 1; Seed <= Result.Seeds; ++Seed) {
        Trial T{App, Config, static_cast<uint64_t>(Seed)};
        T.Obs.Metrics = Options.Metrics;
        // The flight recorder rides on the structured trace, which never
        // perturbs the measured run — QoS/energy/outcomes (and the eval
        // JSON) are byte-identical with journaling on or off.
        T.Obs.Trace = Options.Journal;
        T.Kernel = Kernel;
        T.Kernels = Kernels ? &*Kernels : nullptr;
        T.Power = Result.PowerArmed ? &Result.Power : nullptr;
        Trials.push_back(std::move(T));
      }
    }

  // The heartbeat is stderr-only telemetry: a throttled line with the
  // completion count, rate, ETA, and running outcome tallies. It reads
  // results in completion order, which is scheduling-dependent — but it
  // only counts and tallies, so even the heartbeat's final line is
  // deterministic; nothing downstream consumes it either way.
  TrialRunner::ProgressFn Progress;
  resilience::OutcomeCounts Tally;
  auto Started = std::chrono::steady_clock::now();
  auto LastBeat = Started - std::chrono::hours(1);
  if (Options.Progress) {
    size_t Total = Trials.size();
    int SeedsPerCell = Result.Seeds;
    Progress = [&Tally, &Started, &LastBeat, Total,
                SeedsPerCell](size_t Done, const TrialResult &Last) {
      Tally.add(Last.Outcome);
      auto Now = std::chrono::steady_clock::now();
      if (Done != Total &&
          Now - LastBeat < std::chrono::milliseconds(500))
        return;
      LastBeat = Now;
      double Elapsed = std::chrono::duration<double>(Now - Started).count();
      double Rate = Elapsed > 0.0 ? static_cast<double>(Done) / Elapsed : 0.0;
      double Eta = Rate > 0.0 ? static_cast<double>(Total - Done) / Rate : 0.0;
      std::fprintf(
          stderr,
          "[eval] %zu/%zu trials, %zu/%zu cells, %.1f trials/s, eta %.1fs | "
          "ok %" PRIu64 " sloViolated %" PRIu64 " aborted %" PRIu64
          " retried %" PRIu64 " degraded %" PRIu64 " powerFailed %" PRIu64
          "\n",
          Done, Total, Done / static_cast<size_t>(SeedsPerCell),
          Total / static_cast<size_t>(SeedsPerCell), Rate, Eta, Tally.Ok,
          Tally.SloViolated, Tally.Aborted, Tally.Retried, Tally.Degraded,
          Tally.PowerFailed);
    };
  }

  TrialRunner Runner(Options.Threads);
  std::vector<TrialResult> TrialResults =
      Runner.run(Trials, Options.Policy, Progress);

  size_t Index = 0;
  for (const apps::Application *App : Result.Apps)
    for (ApproxLevel Level : Result.Levels) {
      EvalCell Cell;
      Cell.App = App;
      Cell.Level = Level;
      std::vector<double> Qos, Energy, Effective;
      Qos.reserve(Result.Seeds);
      Energy.reserve(Result.Seeds);
      Effective.reserve(Result.Seeds);
      for (int Seed = 1; Seed <= Result.Seeds; ++Seed, ++Index) {
        const TrialResult &T = TrialResults[Index];
        if (Options.Journal) {
          // Always keep the postmortems; sample the healthy trials on a
          // fixed seed stride so every cell keeps at least seed 1.
          bool Sampled =
              Options.JournalOkSampleEvery > 0 &&
              (Seed - 1) % Options.JournalOkSampleEvery == 0;
          if (T.Outcome != resilience::TrialOutcome::Ok || Sampled) {
            TrialRecord Record;
            Record.AppName = App->name();
            Record.Level = Level;
            Record.WorkloadSeed = static_cast<uint64_t>(Seed);
            Record.Config = Trials[Index].Config;
            Record.Obs = Trials[Index].Obs;
            Record.Result = T;
            Result.Journaled.push_back(std::move(Record));
          }
        }
        Qos.push_back(T.QosError);
        Energy.push_back(T.Energy.TotalFactor);
        Effective.push_back(T.EffectiveEnergyFactor);
        Cell.Outcomes.add(T.Outcome);
        Cell.Retries += static_cast<uint64_t>(T.Attempts - 1);
        if (Options.Metrics)
          Cell.Metrics.merge(T.Metrics);
        if (Result.PowerArmed) {
          Cell.PowerLosses += T.Power.Losses;
          Cell.PowerCheckpoints += T.Power.Checkpoints;
          Cell.PowerReExecutedOps += T.Power.ReExecutedOps;
          if (T.Outcome != resilience::TrialOutcome::PowerFailed)
            ++Cell.PowerSurvived;
        }
        if (Seed == 1)
          Cell.Seed1 = T;
      }
      Cell.Qos = TrialStats::over(Qos);
      Cell.EnergyFactor = TrialStats::over(Energy);
      Cell.EffectiveEnergy = TrialStats::over(Effective);
      Result.Cells.push_back(Cell);
    }
  return Result;
}
