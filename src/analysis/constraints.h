//===- analysis/constraints.h - Whole-program qualifier constraints -*-C++-*-=//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The constraint system shared by qualifier inference (infer.h) and the
/// interprocedural non-interference checker (interproc_flow.h). It is the
/// interprocedural, context-instantiated successor of the flow-insensitive
/// entity graph inside enerj-lint's demand analysis.
///
/// **Slots.** A slot is a place a value can rest, *per call-graph
/// instantiation*: a field keyed by the qualifier of the instance it lives
/// on, a parameter / return / local keyed by the MethodInstance that owns
/// it, an array allocation site, an anonymous join temporary, the result
/// of an endorse(), or a sink. Sinks are the places the paper's type
/// system pins to @precise: conditions, array subscripts, allocation
/// lengths (SinkControl — they steer execution) and precise casts plus the
/// observed program result (SinkResult — they pin data, not control).
///
/// **Declarations.** Every slot of a declared entity points back at one
/// Declaration — the source-level identity shared by all instantiations.
/// Inference reports per declaration; a declaration is a *candidate* for
/// relaxation when it is declared @precise and holds primitive or
/// primitive-array data.
///
/// **Constraints.** Walking every reachable instance produces flow edges
/// From -> To ("From's value can come to rest in To"), with calls resolved
/// through the instantiated call graph — so `_APPROX` dispatch and
/// @Context adaptation are modeled exactly, per instantiation. Two
/// fixpoints are solved over the edge set:
///
///  * **Demand** ("must stay precise") propagates *backward* from sinks
///    and from precise-pinned slots (declared-precise data that is not a
///    candidate, e.g. a @context field on a precise instance). endorse()
///    is the one construct that stops demand — that is its whole job.
///    A candidate declaration none of whose slots is demanded can be
///    relaxed to @approx with zero new endorse sites; because undemanded
///    values reach only approximate contexts and other undemanded slots,
///    the full relaxation set is consistent as a whole. Array element
///    types are *invariant* in FEnerJ, so array-typed slots connected by
///    flow form an equivalence group that must relax (or stay) together —
///    allocation sites included.
///
///  * **Taint** ("may hold perturbed data") propagates *forward* from
///    approximate storage. Raw taint reaching a sink or a precise-pinned
///    slot without crossing an endorse() would be a non-interference
///    violation — the type checker proves this cannot happen (Theorem 1),
///    and the solver re-derives it as a machine-checked whole-program
///    witness. Crossing an endorse() turns raw taint into *endorsed*
///    taint; endorsed taint whose raw origin involved @context-adapted
///    state on an approximate instance, reaching a SinkControl, is an
///    adaptation-laundered flow — legal, but invisible to any per-method
///    audit, and exactly the pattern interproc-flow warns about.
///
/// Determinism: slots, declarations, and edges are created in program
/// order (instances in call-graph discovery order); every container is a
/// vector; no iteration order depends on hashing.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_ANALYSIS_CONSTRAINTS_H
#define ENERJ_ANALYSIS_CONSTRAINTS_H

#include "analysis/callgraph.h"
#include "fenerj/ast.h"
#include "fenerj/program.h"

#include <cstdint>
#include <string>
#include <vector>

namespace enerj {
namespace analysis {

enum class SlotKind {
  Field,   ///< A field, on precise or on approximate instances.
  Param,   ///< A parameter of one method instance.
  Return,  ///< The return value of one method instance.
  Local,   ///< A let-bound local of one method instance.
  Alloc,   ///< A `new P[n]` allocation site (element storage).
  Temp,    ///< Anonymous join temporary.
  Endorse, ///< The result of an endorse() — the gate.
  SinkControl, ///< Condition / subscript / allocation length.
  SinkResult,  ///< Precise cast operand / observed program result.
};

enum class DeclKind { Field, Param, Return, Local, Alloc };

/// Source-level identity of a declared entity, shared by its
/// per-instantiation slots.
struct Declaration {
  DeclKind K = DeclKind::Local;
  std::string Name;           ///< "C.f", "C.m.x", "C.m:return", "main.x".
  fenerj::Type DeclaredType;  ///< As written, before substitution.
  fenerj::SourceLoc Loc;      ///< Declaration site.
  /// Primitive/array data (what Figure 3 counts, and what can be relaxed).
  bool InStats = false;
  /// Declared @precise primitive/array data: eligible for relaxation.
  bool Candidate = false;
  std::vector<unsigned> Slots;
  unsigned Uses = 0; ///< Reads, summed over slots.
};

struct Slot {
  SlotKind K = SlotKind::Temp;
  unsigned Decl = ~0u;  ///< Declaration id, for declared-entity slots.
  unsigned Inst = ~0u;  ///< Owning MethodInstance (~0u for fields/sinks).
  fenerj::Qual InstQ = fenerj::Qual::Precise; ///< For fields: instance qual.
  fenerj::Type Ty;      ///< Substituted (context-free) type.
  fenerj::SourceLoc Loc;
  std::string Display;  ///< For findings: "condition", "field 'C.f'", ...
  unsigned Uses = 0;
};

/// One recorded arithmetic/comparison operation, for the static energy
/// estimate: which operands feed it and whether it is annotated
/// approximate already.
struct StaticOp {
  bool IsFp = false;
  bool AnnotatedApprox = false;
  unsigned OperandSlots[2] = {~0u, ~0u};
};

class ConstraintSystem {
public:
  static constexpr unsigned NoSlot = ~0u;

  /// Builds slots, declarations, and flow edges for every instance in
  /// \p Graph. \p Prog must be well typed against \p Table.
  static ConstraintSystem build(const fenerj::Program &Prog,
                                const fenerj::ClassTable &Table,
                                const CallGraph &Graph);

  const std::vector<Declaration> &decls() const { return Decls; }
  const std::vector<Slot> &slots() const { return Slots; }
  const std::vector<StaticOp> &ops() const { return Ops; }
  /// Feeders[To] = slots whose values flow into To.
  const std::vector<std::vector<unsigned>> &feeders() const {
    return Feeders;
  }
  unsigned edgeCount() const { return NumEdges; }

  /// --- Demand fixpoint (inference). ---

  /// Solves the must-stay-precise fixpoint and the array invariance
  /// groups. Idempotent.
  void solveDemand();
  bool demanded(unsigned SlotId) const { return Demanded[SlotId]; }
  /// True when the candidate declaration \p DeclId can be relaxed to
  /// @approx with zero new endorse sites (requires solveDemand()).
  bool relaxable(unsigned DeclId) const;
  /// The representative of a slot's array-invariance group (slots that
  /// must share one element qualifier); slots of non-array type are their
  /// own group.
  unsigned arrayGroup(unsigned SlotId) const;

  /// The final per-slot qualifier picture once every relaxable
  /// declaration is relaxed: true when the slot holds approximate data
  /// (declared approximate, relaxed, or a temporary fed by one).
  /// Requires solveDemand().
  std::vector<bool> inferredApprox() const;

  /// --- Taint fixpoint (non-interference). ---

  struct TaintedEndorse {
    unsigned Slot = NoSlot; ///< The Endorse slot.
    /// The raw taint crossing it originated (at least in part) from
    /// @context-adapted state on an approximate instance.
    bool ContextOrigin = false;
  };

  struct TaintState {
    /// Per slot: may hold un-endorsed approximate data.
    std::vector<bool> Raw;
    /// Per slot: the raw taint's origin includes @context-adapted state
    /// on an approximate instance (adaptation taint).
    std::vector<bool> RawContext;
    /// Per slot: a witness feeder for the raw taint (the seed itself for
    /// seeds), for rendering paths.
    std::vector<unsigned> RawFrom;
    /// Endorse slots whose operand carried raw taint, in slot id order.
    std::vector<TaintedEndorse> TaintedEndorses;
  };

  /// Forward may-taint propagation; raw taint stops at endorse slots.
  TaintState solveTaint() const;

  /// Slots (in id order) reachable from \p From by forward flow,
  /// excluding \p From itself. Used to trace one endorsement's reach.
  std::vector<unsigned> reachableFrom(unsigned From) const;

private:
  friend class ConstraintBuilder;

  std::vector<Declaration> Decls;
  std::vector<Slot> Slots;
  std::vector<std::vector<unsigned>> Feeders;
  std::vector<std::vector<unsigned>> Consumers;
  std::vector<StaticOp> Ops;
  unsigned NumEdges = 0;

  // Demand state.
  bool DemandSolved = false;
  std::vector<bool> Demanded;
  /// Per declaration: relaxation decided (candidate, nothing demanded,
  /// array-invariance cluster agrees).
  std::vector<bool> RelaxOK;
  mutable std::vector<unsigned> GroupParent; ///< Union-find over slots.

  unsigned findGroup(unsigned SlotId) const;
  void uniteGroups(unsigned A, unsigned B);
};

} // namespace analysis
} // namespace enerj

#endif // ENERJ_ANALYSIS_CONSTRAINTS_H
