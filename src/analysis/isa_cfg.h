//===- analysis/isa_cfg.h - Basic-block CFG over ISA programs ---*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic-block control-flow-graph construction over an assembled
/// IsaProgram, the substrate of the flow-sensitive verifier (isa_flow.h).
/// Leaders are instruction 0, every in-range branch/jump target, and the
/// instruction after any control transfer (branch, jump, halt). A branch
/// target equal to Instructions.size() — one past the end — is the
/// architected "fall off the end" exit and produces no edge; targets
/// beyond that are invalid (rejected by the verifier) and also produce
/// no edge.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_ANALYSIS_ISA_CFG_H
#define ENERJ_ANALYSIS_ISA_CFG_H

#include "isa/isa.h"

#include <vector>

namespace enerj {
namespace analysis {

/// True for conditional branches (two successors: target + fallthrough).
bool isCondBranch(isa::Opcode Op);
/// True for any instruction that transfers control (branch, jmp, halt).
bool endsBlock(isa::Opcode Op);

struct IsaBlock {
  size_t Begin = 0; ///< First instruction index of the block.
  size_t End = 0;   ///< One past the last instruction index.
  std::vector<unsigned> Succs;
  std::vector<unsigned> Preds;
};

class IsaCfg {
public:
  explicit IsaCfg(const isa::IsaProgram &Program);

  unsigned blockCount() const {
    return static_cast<unsigned>(Blocks.size());
  }
  const IsaBlock &block(unsigned Block) const { return Blocks[Block]; }
  const std::vector<unsigned> &succs(unsigned Block) const {
    return Blocks[Block].Succs;
  }
  const std::vector<unsigned> &preds(unsigned Block) const {
    return Blocks[Block].Preds;
  }

  /// Block containing instruction \p Instr.
  unsigned blockContaining(size_t Instr) const { return BlockOf[Instr]; }

  const isa::IsaProgram &program() const { return *Program; }

  /// Blocks reachable from the entry block (index 0), as a bit per block.
  std::vector<bool> reachableBlocks() const;

private:
  void addEdge(unsigned From, unsigned To);

  const isa::IsaProgram *Program;
  std::vector<IsaBlock> Blocks;
  std::vector<unsigned> BlockOf;
};

} // namespace analysis
} // namespace enerj

#endif // ENERJ_ANALYSIS_ISA_CFG_H
