//===- analysis/fenerj_cfg.cpp - CFG over FEnerJ method bodies ------------===//

#include "analysis/fenerj_cfg.h"

#include <unordered_map>

using namespace enerj;
using namespace enerj::analysis;
using namespace enerj::fenerj;

namespace enerj {
namespace analysis {

class FenerjCfgBuilder {
public:
  FenerjCfg run(const Expr &Body, const std::vector<ParamDecl> *Params) {
    Cur = newBlock();
    Scopes.emplace_back();
    if (Params)
      for (const ParamDecl &Param : *Params) {
        unsigned Var = declare(Param.Name, Param.DeclaredType,
                               /*Loc=*/{}, /*IsParam=*/true);
        event({FjEvent::Kind::Def, nullptr, Var, {}});
      }
    lower(Body);
    Scopes.pop_back();
    return std::move(Cfg);
  }

private:
  unsigned newBlock() {
    Cfg.Blocks.emplace_back();
    return static_cast<unsigned>(Cfg.Blocks.size() - 1);
  }
  void edge(unsigned From, unsigned To) {
    Cfg.Blocks[From].Succs.push_back(To);
    Cfg.Blocks[To].Preds.push_back(From);
  }
  void event(FjEvent E) { Cfg.Blocks[Cur].Events.push_back(std::move(E)); }

  unsigned declare(const std::string &Name, const Type &DeclType,
                   SourceLoc Loc, bool IsParam) {
    unsigned Var = static_cast<unsigned>(Cfg.Vars.size());
    Cfg.Vars.push_back({Name, DeclType, Loc, IsParam});
    Scopes.back()[Name] = Var;
    return Var;
  }

  /// Innermost binding of \p Name, or ~0u (e.g. 'this', or a name the
  /// type checker already rejected).
  unsigned resolve(const std::string &Name) const {
    for (auto Scope = Scopes.rbegin(); Scope != Scopes.rend(); ++Scope) {
      auto Found = Scope->find(Name);
      if (Found != Scope->end())
        return Found->second;
    }
    return ~0u;
  }

  void lower(const Expr &E) {
    switch (E.kind()) {
    case ExprKind::NullLit:
    case ExprKind::IntLit:
    case ExprKind::FloatLit:
    case ExprKind::BoolLit:
    case ExprKind::New:
      return; // Effect-free leaves add no events.

    case ExprKind::VarRef: {
      const auto &Var = static_cast<const VarRefExpr &>(E);
      unsigned Index = resolve(Var.Name);
      if (Index != ~0u)
        event({FjEvent::Kind::Use, &E, Index, E.loc()});
      return;
    }

    case ExprKind::AssignLocal: {
      const auto &Assign = static_cast<const AssignLocalExpr &>(E);
      lower(*Assign.Value);
      unsigned Index = resolve(Assign.Name);
      if (Index != ~0u)
        event({FjEvent::Kind::Def, &E, Index, E.loc()});
      else
        event({FjEvent::Kind::Eval, &E, ~0u, E.loc()});
      return;
    }

    case ExprKind::Endorse: {
      const auto &End = static_cast<const EndorseExpr &>(E);
      lower(*End.Value);
      event({FjEvent::Kind::Endorse, &E, ~0u, E.loc()});
      return;
    }

    case ExprKind::If: {
      const auto &If = static_cast<const IfExpr &>(E);
      lower(*If.Cond);
      unsigned ThenBlock = newBlock();
      unsigned ElseBlock = newBlock();
      unsigned MergeBlock = newBlock();
      edge(Cur, ThenBlock);
      edge(Cur, ElseBlock);
      Cur = ThenBlock;
      lower(*If.Then);
      edge(Cur, MergeBlock);
      Cur = ElseBlock;
      lower(*If.Else);
      edge(Cur, MergeBlock);
      Cur = MergeBlock;
      return;
    }

    case ExprKind::While: {
      const auto &While = static_cast<const WhileExpr &>(E);
      unsigned CondBlock = newBlock();
      edge(Cur, CondBlock);
      Cur = CondBlock;
      lower(*While.Cond);
      // The condition may itself branch; the block where its evaluation
      // ends is the loop's decision point.
      unsigned BodyBlock = newBlock();
      unsigned ExitBlock = newBlock();
      edge(Cur, BodyBlock);
      edge(Cur, ExitBlock);
      Cur = BodyBlock;
      lower(*While.Body);
      edge(Cur, CondBlock);
      Cur = ExitBlock;
      return;
    }

    case ExprKind::Block: {
      const auto &Block = static_cast<const BlockExpr &>(E);
      Scopes.emplace_back();
      for (const BlockExpr::Item &Item : Block.Items) {
        lower(*Item.Value);
        if (Item.IsLet) {
          unsigned Var = declare(Item.LetName, Item.LetType,
                                 Item.Value->loc(), /*IsParam=*/false);
          event({FjEvent::Kind::Def, Item.Value.get(), Var,
                 Item.Value->loc()});
        }
      }
      Scopes.pop_back();
      return;
    }

    case ExprKind::Unary:
      lower(*static_cast<const UnaryExpr &>(E).Value);
      return;
    case ExprKind::Binary: {
      const auto &Bin = static_cast<const BinaryExpr &>(E);
      lower(*Bin.Lhs);
      lower(*Bin.Rhs);
      return;
    }
    case ExprKind::Cast:
      lower(*static_cast<const CastExpr &>(E).Value);
      return;
    case ExprKind::NewArray:
      lower(*static_cast<const NewArrayExpr &>(E).Length);
      return;
    case ExprKind::ArrayLength:
      lower(*static_cast<const ArrayLengthExpr &>(E).Array);
      return;

    case ExprKind::FieldRead: {
      const auto &Read = static_cast<const FieldReadExpr &>(E);
      lower(*Read.Receiver);
      event({FjEvent::Kind::Eval, &E, ~0u, E.loc()});
      return;
    }
    case ExprKind::FieldWrite: {
      const auto &Write = static_cast<const FieldWriteExpr &>(E);
      lower(*Write.Receiver);
      lower(*Write.Value);
      event({FjEvent::Kind::Eval, &E, ~0u, E.loc()});
      return;
    }
    case ExprKind::ArrayRead: {
      const auto &Read = static_cast<const ArrayReadExpr &>(E);
      lower(*Read.Array);
      lower(*Read.Index);
      event({FjEvent::Kind::Eval, &E, ~0u, E.loc()});
      return;
    }
    case ExprKind::ArrayWrite: {
      const auto &Write = static_cast<const ArrayWriteExpr &>(E);
      lower(*Write.Array);
      lower(*Write.Index);
      lower(*Write.Value);
      event({FjEvent::Kind::Eval, &E, ~0u, E.loc()});
      return;
    }
    case ExprKind::MethodCall: {
      const auto &Call = static_cast<const MethodCallExpr &>(E);
      lower(*Call.Receiver);
      for (const ExprPtr &Arg : Call.Args)
        lower(*Arg);
      event({FjEvent::Kind::Eval, &E, ~0u, E.loc()});
      return;
    }
    }
  }

  FenerjCfg Cfg;
  unsigned Cur = 0;
  std::vector<std::unordered_map<std::string, unsigned>> Scopes;
};

} // namespace analysis
} // namespace enerj

FenerjCfg FenerjCfg::build(const Expr &Body,
                           const std::vector<ParamDecl> *Params) {
  return FenerjCfgBuilder().run(Body, Params);
}
