//===- analysis/callgraph.cpp - FEnerJ whole-program call graph -----------===//

#include "analysis/callgraph.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace enerj {
namespace analysis {

using namespace enerj::fenerj;

std::string MethodInstance::name() const {
  if (isMain())
    return "main";
  // Always suffixed with the instantiation qualifier: the two `_APPROX`
  // overload variants of one method share a source name, and a
  // context-polymorphic method has two instances.
  return Cls->Name + "." + Method->Name +
         (Ctx == Qual::Approx ? "@approx" : "@precise");
}

std::string UnreachableMethod::name() const {
  return Cls->Name + "." + Method->Name;
}

Qual CallGraph::substQual(Qual Q, Qual Ctx) {
  return Q == Qual::Context ? Ctx : Q;
}

Type CallGraph::substType(Type T, Qual Ctx) {
  T.Q = substQual(T.Q, Ctx);
  if (T.isArray())
    T.ElemQual = substQual(T.ElemQual, Ctx);
  return T;
}

std::vector<Qual> CallGraph::calleeContexts(const MethodDecl &M,
                                            Qual ReceiverQual) {
  if (M.ReceiverPrecision != Qual::Context)
    return {M.ReceiverPrecision};
  if (ReceiverQual == Qual::Precise || ReceiverQual == Qual::Approx)
    return {ReceiverQual};
  // Top/lost receivers hide the instance qualifier: the polymorphic body
  // may run on either kind of instance.
  return {Qual::Precise, Qual::Approx};
}

namespace {

/// The class that declares \p Method, found by walking the chain upward
/// from \p ClassName (the lookup that resolved the method walked the same
/// chain, so this always terminates at the right declaration).
const ClassDecl *declaringClass(const ClassTable &Table,
                                const std::string &ClassName,
                                const MethodDecl *Method) {
  const ClassDecl *Walk = Table.lookup(ClassName);
  while (Walk) {
    for (const MethodDecl &M : Walk->Methods)
      if (&M == Method)
        return Walk;
    Walk = Table.lookup(Walk->SuperName);
  }
  return nullptr;
}

/// A light static-type evaluator over one method instance. All types it
/// produces are context-free: 'context' is substituted by the
/// instantiation qualifier at every declaration and adaptation point.
/// Only as much typing as dispatch needs; the program is already well
/// typed, so unresolvable corners simply degrade to precise int.
class CallSiteWalker {
public:
  CallSiteWalker(const ClassTable &Table, const ClassDecl *Cls, Qual Ctx)
      : Table(Table), Cls(Cls), Ctx(Ctx) {}

  /// Called for every resolved call site with the substituted receiver
  /// qualifier and the selected overload.
  struct Resolved {
    const MethodCallExpr *Site;
    Qual ReceiverQual;
    const MethodDecl *Callee;
    const ClassDecl *CalleeClass;
  };

  template <typename Callback>
  void walk(const Expr &Body, const std::vector<ParamDecl> *Params,
            Callback &&OnCall) {
    Scopes.clear();
    Scopes.emplace_back();
    if (Params)
      for (const ParamDecl &P : *Params)
        Scopes.back()[P.Name] = CallGraph::substType(P.DeclaredType, Ctx);
    visit(Body, OnCall);
  }

private:
  Type preciseInt() const {
    return Type::makePrim(Qual::Precise, BaseKind::Int);
  }

  const Type *resolve(const std::string &Name) const {
    for (auto Scope = Scopes.rbegin(); Scope != Scopes.rend(); ++Scope) {
      auto Found = Scope->find(Name);
      if (Found != Scope->end())
        return &Found->second;
    }
    return nullptr;
  }

  static Qual joinQual(Qual A, Qual B) {
    if (A == B)
      return A;
    if (A == Qual::Approx || B == Qual::Approx)
      return Qual::Approx;
    if (A == Qual::Lost || B == Qual::Lost)
      return Qual::Lost;
    return Qual::Top;
  }

  template <typename Callback> Type visit(const Expr &E, Callback &&OnCall) {
    switch (E.kind()) {
    case ExprKind::NullLit:
      return Type::makeNull();
    case ExprKind::IntLit:
      return preciseInt();
    case ExprKind::FloatLit:
      return Type::makePrim(Qual::Precise, BaseKind::Float);
    case ExprKind::BoolLit:
      return Type::makePrim(Qual::Precise, BaseKind::Bool);

    case ExprKind::VarRef: {
      const auto &Var = static_cast<const VarRefExpr &>(E);
      if (Var.Name == "this" && Cls)
        return Type::makeClass(Ctx, Cls->Name);
      if (const Type *T = resolve(Var.Name))
        return *T;
      return preciseInt();
    }

    case ExprKind::New: {
      const auto &New = static_cast<const NewExpr &>(E);
      return Type::makeClass(CallGraph::substQual(New.Q, Ctx),
                             New.ClassName);
    }
    case ExprKind::NewArray: {
      const auto &New = static_cast<const NewArrayExpr &>(E);
      visit(*New.Length, OnCall);
      return Type::makeArray(CallGraph::substQual(New.ElemQual, Ctx),
                             New.Elem);
    }

    case ExprKind::FieldRead: {
      const auto &Read = static_cast<const FieldReadExpr &>(E);
      Type Recv = visit(*Read.Receiver, OnCall);
      if (Recv.isClass())
        if (auto FT = Table.fieldType(Recv.ClassName, Read.Field))
          return adaptType(Recv.Q, *FT);
      return preciseInt();
    }
    case ExprKind::FieldWrite: {
      const auto &Write = static_cast<const FieldWriteExpr &>(E);
      Type Recv = visit(*Write.Receiver, OnCall);
      visit(*Write.Value, OnCall);
      if (Recv.isClass())
        if (auto FT = Table.fieldType(Recv.ClassName, Write.Field))
          return adaptType(Recv.Q, *FT);
      return preciseInt();
    }

    case ExprKind::ArrayRead: {
      const auto &Read = static_cast<const ArrayReadExpr &>(E);
      Type Array = visit(*Read.Array, OnCall);
      visit(*Read.Index, OnCall);
      return Array.isArray() ? Type::makePrim(Array.ElemQual, Array.Elem)
                             : preciseInt();
    }
    case ExprKind::ArrayWrite: {
      const auto &Write = static_cast<const ArrayWriteExpr &>(E);
      Type Array = visit(*Write.Array, OnCall);
      visit(*Write.Index, OnCall);
      visit(*Write.Value, OnCall);
      return Array.isArray() ? Type::makePrim(Array.ElemQual, Array.Elem)
                             : preciseInt();
    }
    case ExprKind::ArrayLength: {
      const auto &Len = static_cast<const ArrayLengthExpr &>(E);
      visit(*Len.Array, OnCall);
      return preciseInt();
    }

    case ExprKind::MethodCall: {
      const auto &Call = static_cast<const MethodCallExpr &>(E);
      Type Recv = visit(*Call.Receiver, OnCall);
      for (const ExprPtr &Arg : Call.Args)
        visit(*Arg, OnCall);
      if (!Recv.isClass())
        return preciseInt();
      const MethodDecl *Callee =
          Table.lookupMethod(Recv.ClassName, Call.Method, Recv.Q);
      if (!Callee)
        return preciseInt();
      OnCall(Resolved{&Call, Recv.Q, Callee,
                      declaringClass(Table, Recv.ClassName, Callee)});
      return adaptType(Recv.Q, Callee->ReturnType);
    }

    case ExprKind::Cast: {
      const auto &Cast = static_cast<const CastExpr &>(E);
      visit(*Cast.Value, OnCall);
      return CallGraph::substType(Cast.Target, Ctx);
    }
    case ExprKind::Endorse: {
      const auto &End = static_cast<const EndorseExpr &>(E);
      Type Value = visit(*End.Value, OnCall);
      return Type::makePrim(Qual::Precise, Value.isPrimitive()
                                               ? Value.Base
                                               : BaseKind::Int);
    }

    case ExprKind::Binary: {
      const auto &Bin = static_cast<const BinaryExpr &>(E);
      Type L = visit(*Bin.Lhs, OnCall);
      Type R = visit(*Bin.Rhs, OnCall);
      Qual Q = joinQual(L.Q, R.Q);
      switch (Bin.Op) {
      case BinaryOp::Add:
      case BinaryOp::Sub:
      case BinaryOp::Mul:
      case BinaryOp::Div:
      case BinaryOp::Mod:
        return Type::makePrim(Q, (L.Base == BaseKind::Float ||
                                  R.Base == BaseKind::Float)
                                     ? BaseKind::Float
                                     : BaseKind::Int);
      default:
        return Type::makePrim(Q, BaseKind::Bool);
      }
    }
    case ExprKind::Unary: {
      const auto &Un = static_cast<const UnaryExpr &>(E);
      Type Value = visit(*Un.Value, OnCall);
      return Un.Op == UnaryOp::Not
                 ? Type::makePrim(Value.Q, BaseKind::Bool)
                 : Value;
    }

    case ExprKind::If: {
      const auto &If = static_cast<const IfExpr &>(E);
      visit(*If.Cond, OnCall);
      Type Then = visit(*If.Then, OnCall);
      Type Else = visit(*If.Else, OnCall);
      Type Result = Then;
      Result.Q = joinQual(Then.Q, Else.Q);
      if (Result.isArray())
        Result.ElemQual = joinQual(Then.ElemQual, Else.ElemQual);
      return Result;
    }
    case ExprKind::While: {
      const auto &While = static_cast<const WhileExpr &>(E);
      visit(*While.Cond, OnCall);
      visit(*While.Body, OnCall);
      return preciseInt();
    }

    case ExprKind::Block: {
      const auto &Block = static_cast<const BlockExpr &>(E);
      Scopes.emplace_back();
      Type Last = preciseInt();
      for (const BlockExpr::Item &Item : Block.Items) {
        Type Value = visit(*Item.Value, OnCall);
        if (Item.IsLet) {
          Type Declared = CallGraph::substType(Item.LetType, Ctx);
          Scopes.back()[Item.LetName] = Declared;
          Last = Declared;
        } else {
          Last = Value;
        }
      }
      Scopes.pop_back();
      return Last;
    }

    case ExprKind::AssignLocal: {
      const auto &Assign = static_cast<const AssignLocalExpr &>(E);
      visit(*Assign.Value, OnCall);
      if (const Type *T = resolve(Assign.Name))
        return *T;
      return preciseInt();
    }
    }
    return preciseInt();
  }

  const ClassTable &Table;
  const ClassDecl *Cls;
  Qual Ctx;
  std::vector<std::map<std::string, Type>> Scopes;
};

/// Iterative Tarjan SCC over the instance graph. Components are numbered
/// so that callees get lower numbers than their callers (Tarjan emits
/// them in reverse topological order of the condensation).
struct Tarjan {
  const std::vector<std::vector<unsigned>> &Succs;
  std::vector<unsigned> Index, LowLink, SccIndex;
  std::vector<bool> OnStack;
  std::vector<unsigned> Stack;
  std::vector<std::vector<unsigned>> Sccs;
  unsigned Next = 0;
  static constexpr unsigned None = ~0u;

  explicit Tarjan(const std::vector<std::vector<unsigned>> &Succs)
      : Succs(Succs), Index(Succs.size(), None), LowLink(Succs.size(), 0),
        SccIndex(Succs.size(), 0), OnStack(Succs.size(), false) {
    for (unsigned Node = 0; Node < Succs.size(); ++Node)
      if (Index[Node] == None)
        run(Node);
  }

  void run(unsigned Root) {
    // Explicit stack of (node, next-successor) frames.
    std::vector<std::pair<unsigned, size_t>> Frames{{Root, 0}};
    while (!Frames.empty()) {
      auto &[Node, NextSucc] = Frames.back();
      if (NextSucc == 0) {
        Index[Node] = LowLink[Node] = Next++;
        Stack.push_back(Node);
        OnStack[Node] = true;
      }
      bool Descended = false;
      while (NextSucc < Succs[Node].size()) {
        unsigned Succ = Succs[Node][NextSucc++];
        if (Index[Succ] == None) {
          Frames.emplace_back(Succ, 0);
          Descended = true;
          break;
        }
        if (OnStack[Succ])
          LowLink[Node] = std::min(LowLink[Node], Index[Succ]);
      }
      if (Descended)
        continue;
      if (LowLink[Node] == Index[Node]) {
        std::vector<unsigned> Members;
        unsigned Member;
        do {
          Member = Stack.back();
          Stack.pop_back();
          OnStack[Member] = false;
          SccIndex[Member] = static_cast<unsigned>(Sccs.size());
          Members.push_back(Member);
        } while (Member != Node);
        std::sort(Members.begin(), Members.end());
        Sccs.push_back(std::move(Members));
      }
      unsigned Done = Node;
      Frames.pop_back();
      if (!Frames.empty()) {
        unsigned Parent = Frames.back().first;
        LowLink[Parent] = std::min(LowLink[Parent], LowLink[Done]);
      }
    }
  }
};

} // namespace

CallGraph CallGraph::build(const Program &Prog, const ClassTable &Table) {
  CallGraph Graph;
  std::map<std::pair<const MethodDecl *, int>, unsigned> InstanceIds;

  auto getInstance = [&](const ClassDecl *Cls, const MethodDecl *Method,
                         Qual Ctx, std::vector<unsigned> &Work) {
    auto Key = std::make_pair(Method, static_cast<int>(Ctx));
    auto Found = InstanceIds.find(Key);
    if (Found != InstanceIds.end())
      return Found->second;
    unsigned Id = static_cast<unsigned>(Graph.Instances.size());
    Graph.Instances.push_back({Cls, Method, Ctx});
    Graph.OutEdges.emplace_back();
    InstanceIds.emplace(Key, Id);
    Work.push_back(Id);
    return Id;
  };

  std::vector<unsigned> Work;
  getInstance(nullptr, nullptr, Qual::Precise, Work); // main = instance 0

  while (!Work.empty()) {
    // FIFO discovery keeps instance numbering in breadth-first program
    // order, which makes the graph (and everything built on it) stable.
    unsigned Inst = Work.front();
    Work.erase(Work.begin());
    const MethodInstance &MI = Graph.Instances[Inst];
    const Expr *Body = MI.isMain() ? Prog.Main.get() : MI.Method->Body.get();
    if (!Body)
      continue;
    CallSiteWalker Walker(Table, MI.Cls, MI.Ctx);
    Walker.walk(*Body, MI.isMain() ? nullptr : &MI.Method->Params,
                [&](const CallSiteWalker::Resolved &Call) {
                  if (!Call.CalleeClass)
                    return;
                  for (Qual Ctx :
                       calleeContexts(*Call.Callee, Call.ReceiverQual)) {
                    unsigned Callee = getInstance(Call.CalleeClass,
                                                  Call.Callee, Ctx, Work);
                    unsigned EdgeId =
                        static_cast<unsigned>(Graph.Edges.size());
                    Graph.Edges.push_back(
                        {Inst, Callee, Call.Site, Call.ReceiverQual});
                    Graph.OutEdges[Inst].push_back(EdgeId);
                  }
                });
  }

  // SCC condensation over instance successors.
  std::vector<std::vector<unsigned>> Succs(Graph.Instances.size());
  for (const CallEdge &E : Graph.Edges)
    Succs[E.Caller].push_back(E.Callee);
  Tarjan Scc(Succs);
  Graph.SccIndex = std::move(Scc.SccIndex);
  Graph.SccMembers = std::move(Scc.Sccs);

  Graph.SccRecursive.assign(Graph.SccMembers.size(), false);
  for (unsigned S = 0; S < Graph.SccMembers.size(); ++S)
    Graph.SccRecursive[S] = Graph.SccMembers[S].size() > 1;
  for (const CallEdge &E : Graph.Edges)
    if (E.Caller == E.Callee)
      Graph.SccRecursive[Graph.SccIndex[E.Caller]] = true;

  // Tarjan numbers components callees-first already; expand to instances.
  for (const std::vector<unsigned> &Members : Graph.SccMembers)
    for (unsigned Inst : Members)
      Graph.CalleeFirst.push_back(Inst);

  // Unreachable methods: anything with no instantiation at all.
  for (const ClassDecl &C : Prog.Classes)
    for (const MethodDecl &M : C.Methods) {
      bool Reached = false;
      for (Qual Ctx : {Qual::Precise, Qual::Approx})
        if (InstanceIds.count({&M, static_cast<int>(Ctx)}))
          Reached = true;
      if (!Reached)
        Graph.Unreachable.push_back({&C, &M});
    }

  return Graph;
}

unsigned CallGraph::instanceId(const MethodDecl *Method, Qual Ctx) const {
  for (unsigned Id = 0; Id < Instances.size(); ++Id)
    if (Instances[Id].Method == Method && Instances[Id].Ctx == Ctx)
      return Id;
  return ~0u;
}

} // namespace analysis
} // namespace enerj
