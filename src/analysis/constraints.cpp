//===- analysis/constraints.cpp - Whole-program qualifier constraints -----===//

#include "analysis/constraints.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace enerj {
namespace analysis {

using namespace enerj::fenerj;

namespace {

/// The qualifier of the *data* a slot of type \p T holds: the element
/// qualifier for arrays, the type qualifier otherwise.
Qual valueQual(const Type &T) { return T.isArray() ? T.ElemQual : T.Q; }

/// Data types: the things Figure 3 counts and relaxation can touch.
bool isDataType(const Type &T) { return T.isPrimitive() || T.isArray(); }

Qual joinQual(Qual A, Qual B) {
  if (A == B)
    return A;
  if (A == Qual::Approx || B == Qual::Approx)
    return Qual::Approx;
  if (A == Qual::Lost || B == Qual::Lost)
    return Qual::Lost;
  return Qual::Top;
}

struct FieldLookup {
  const FieldDeclAst *Field = nullptr;
  const ClassDecl *Declaring = nullptr;
};

FieldLookup findFieldDecl(const ClassTable &Table, const std::string &Cls,
                          const std::string &Field) {
  const ClassDecl *Walk = Table.lookup(Cls);
  while (Walk) {
    for (const FieldDeclAst &F : Walk->Fields)
      if (F.Name == Field)
        return {&F, Walk};
    Walk = Table.lookup(Walk->SuperName);
  }
  return {};
}

const ClassDecl *declaringClassOf(const ClassTable &Table,
                                  const std::string &ClassName,
                                  const MethodDecl *Method) {
  const ClassDecl *Walk = Table.lookup(ClassName);
  while (Walk) {
    for (const MethodDecl &M : Walk->Methods)
      if (&M == Method)
        return Walk;
    Walk = Table.lookup(Walk->SuperName);
  }
  return nullptr;
}

/// "C.m", disambiguating the receiver-marked `_APPROX` variants that
/// share a source name.
std::string methodBase(const ClassDecl *Cls, const MethodDecl *M) {
  std::string Base = Cls->Name + "." + M->Name;
  if (M->ReceiverPrecision == Qual::Precise)
    Base += "#precise";
  else if (M->ReceiverPrecision == Qual::Approx)
    Base += "#approx";
  return Base;
}

/// The instance qualifiers a receiver of (substituted) qualifier \p Q may
/// actually have at run time: top/lost hide it, so both.
std::vector<Qual> instanceQuals(Qual Q) {
  if (Q == Qual::Precise || Q == Qual::Approx)
    return {Q};
  return {Qual::Precise, Qual::Approx};
}

} // namespace

//===----------------------------------------------------------------------===//
// Builder
//===----------------------------------------------------------------------===//

class ConstraintBuilder {
public:
  ConstraintBuilder(const Program &Prog, const ClassTable &Table,
                    const CallGraph &Graph)
      : Prog(Prog), Table(Table), Graph(Graph) {}

  ConstraintSystem run() {
    declareInstances();
    for (unsigned Inst = 0; Inst < Graph.instanceCount(); ++Inst)
      walkInstance(Inst);
    for (Declaration &D : CS.Decls) {
      D.Uses = 0;
      for (unsigned S : D.Slots)
        D.Uses += CS.Slots[S].Uses;
    }
    return std::move(CS);
  }

private:
  static constexpr unsigned NoSlot = ConstraintSystem::NoSlot;

  /// A value in flight: its context-free static type plus the slot it was
  /// last at rest in (NoSlot for literal-only values).
  struct FlowVal {
    Type Ty;
    unsigned Slot = NoSlot;
  };

  const Program &Prog;
  const ClassTable &Table;
  const CallGraph &Graph;
  ConstraintSystem CS;

  /// Declaration ids keyed by the declaring AST node (FieldDeclAst,
  /// ParamDecl, MethodDecl for returns, BlockExpr::Item for locals,
  /// NewArrayExpr for allocation sites). Lookup only — never iterated.
  std::map<const void *, unsigned> DeclIds;
  /// Field slots keyed by (field, instance qualifier).
  std::map<std::pair<const FieldDeclAst *, int>, unsigned> FieldSlots;
  std::vector<std::vector<unsigned>> ParamSlotsByInst;
  std::vector<unsigned> ReturnSlotByInst;
  /// Alloc slots keyed by (site, owning instance).
  std::map<std::pair<const NewArrayExpr *, unsigned>, unsigned> AllocSlots;

  // Per-instance walk state.
  unsigned CurInst = 0;
  const ClassDecl *CurCls = nullptr;
  Qual Ctx = Qual::Precise;
  std::string CurBase;
  std::vector<std::map<std::string, FlowVal>> Scopes;

  unsigned addSlot(SlotKind K, Type Ty, SourceLoc Loc, std::string Display,
                   unsigned Decl = ~0u, unsigned Inst = ~0u,
                   Qual InstQ = Qual::Precise) {
    unsigned Id = static_cast<unsigned>(CS.Slots.size());
    CS.Slots.push_back(
        {K, Decl, Inst, InstQ, std::move(Ty), Loc, std::move(Display), 0});
    CS.Feeders.emplace_back();
    CS.Consumers.emplace_back();
    CS.GroupParent.push_back(Id);
    if (Decl != ~0u)
      CS.Decls[Decl].Slots.push_back(Id);
    return Id;
  }

  unsigned addDecl(DeclKind K, const void *Key, std::string Name, Type Declared,
                   SourceLoc Loc) {
    auto Found = DeclIds.find(Key);
    if (Found != DeclIds.end())
      return Found->second;
    unsigned Id = static_cast<unsigned>(CS.Decls.size());
    Declaration D;
    D.K = K;
    D.Name = std::move(Name);
    D.DeclaredType = Declared;
    D.Loc = Loc;
    D.InStats = isDataType(Declared);
    D.Candidate = D.InStats && valueQual(Declared) == Qual::Precise;
    CS.Decls.push_back(std::move(D));
    DeclIds.emplace(Key, Id);
    return Id;
  }

  void addEdge(unsigned From, unsigned To) {
    if (From == NoSlot || To == NoSlot || From == To)
      return;
    std::vector<unsigned> &Ins = CS.Feeders[To];
    if (std::find(Ins.begin(), Ins.end(), From) != Ins.end())
      return;
    Ins.push_back(From);
    CS.Consumers[From].push_back(To);
    ++CS.NumEdges;
    // Array element types are invariant: array-to-array flow aliases the
    // element storage, so both ends must share one element qualifier.
    if (CS.Slots[From].Ty.isArray() && CS.Slots[To].Ty.isArray())
      CS.uniteGroups(From, To);
  }

  /// Pre-creates parameter and return slots (and their declarations) for
  /// every instance, so call edges can be wired no matter which side is
  /// walked first (recursion!).
  void declareInstances() {
    ParamSlotsByInst.resize(Graph.instanceCount());
    ReturnSlotByInst.assign(Graph.instanceCount(), NoSlot);
    for (unsigned Inst = 0; Inst < Graph.instanceCount(); ++Inst) {
      const MethodInstance &MI = Graph.instance(Inst);
      if (MI.isMain())
        continue;
      const std::string Base = methodBase(MI.Cls, MI.Method);
      for (const ParamDecl &P : MI.Method->Params) {
        unsigned D = addDecl(DeclKind::Param, &P, Base + "." + P.Name,
                             P.DeclaredType, P.Loc);
        ParamSlotsByInst[Inst].push_back(
            addSlot(SlotKind::Param, CallGraph::substType(P.DeclaredType, MI.Ctx),
                    P.Loc, "parameter '" + Base + "." + P.Name + "'", D, Inst));
      }
      unsigned D = addDecl(DeclKind::Return, MI.Method, Base + ":return",
                           MI.Method->ReturnType, MI.Method->Loc);
      ReturnSlotByInst[Inst] =
          addSlot(SlotKind::Return,
                  CallGraph::substType(MI.Method->ReturnType, MI.Ctx),
                  MI.Method->Loc, "return of '" + Base + "'", D, Inst);
    }
  }

  unsigned fieldSlot(const FieldLookup &F, Qual InstQ) {
    auto Key = std::make_pair(F.Field, static_cast<int>(InstQ));
    auto Found = FieldSlots.find(Key);
    if (Found != FieldSlots.end())
      return Found->second;
    const std::string Name = F.Declaring->Name + "." + F.Field->Name;
    unsigned D = addDecl(DeclKind::Field, F.Field, Name, F.Field->DeclaredType,
                         F.Field->Loc);
    unsigned Id = addSlot(
        SlotKind::Field, CallGraph::substType(F.Field->DeclaredType, InstQ),
        F.Field->Loc,
        "field '" + Name + "' on " +
            (InstQ == Qual::Approx ? "approx" : "precise") + " instances",
        D, ~0u, InstQ);
    FieldSlots.emplace(Key, Id);
    return Id;
  }

  /// The slots a field access with (substituted) receiver qualifier
  /// \p RecvQ touches: one for concrete receivers, both for top/lost.
  std::vector<unsigned> fieldSlots(const FieldLookup &F, Qual RecvQ) {
    std::vector<unsigned> Out;
    for (Qual Q : instanceQuals(RecvQ))
      Out.push_back(fieldSlot(F, Q));
    return Out;
  }

  unsigned sinkSlot(SlotKind K, SourceLoc Loc, const char *What) {
    return addSlot(K, Type::makePrim(Qual::Precise, BaseKind::Int), Loc, What);
  }

  void walkInstance(unsigned Inst) {
    const MethodInstance &MI = Graph.instance(Inst);
    const Expr *Body = MI.isMain() ? Prog.Main.get() : MI.Method->Body.get();
    if (!Body)
      return;
    CurInst = Inst;
    CurCls = MI.Cls;
    Ctx = MI.Ctx;
    CurBase = MI.isMain() ? "main" : methodBase(MI.Cls, MI.Method);
    Scopes.clear();
    Scopes.emplace_back();
    if (!MI.isMain())
      for (unsigned I = 0; I < MI.Method->Params.size(); ++I) {
        const ParamDecl &P = MI.Method->Params[I];
        Scopes.back()[P.Name] = {CallGraph::substType(P.DeclaredType, Ctx),
                                 ParamSlotsByInst[Inst][I]};
      }
    FlowVal Result = visit(*Body);
    if (MI.isMain()) {
      // The program's result is observed precisely (the evaluation harness
      // prints it): a hard sink, exactly like DemandAnalysis treats it.
      if (Result.Slot != NoSlot)
        addEdge(Result.Slot,
                sinkSlot(SlotKind::SinkResult, Body->loc(), "program result"));
    } else {
      addEdge(Result.Slot, ReturnSlotByInst[Inst]);
    }
  }

  FlowVal *resolveLocal(const std::string &Name) {
    for (auto Scope = Scopes.rbegin(); Scope != Scopes.rend(); ++Scope) {
      auto Found = Scope->find(Name);
      if (Found != Scope->end())
        return &Found->second;
    }
    return nullptr;
  }

  FlowVal preciseInt() const {
    return {Type::makePrim(Qual::Precise, BaseKind::Int), NoSlot};
  }

  /// Joins two branch values into one flow: a fresh Temp fed by both when
  /// either carries a slot.
  FlowVal joinFlows(const FlowVal &A, const FlowVal &B, Type Ty,
                    SourceLoc Loc) {
    if (A.Slot == NoSlot && B.Slot == NoSlot)
      return {std::move(Ty), NoSlot};
    if (A.Slot != NoSlot && B.Slot == NoSlot)
      return {std::move(Ty), A.Slot};
    if (A.Slot == NoSlot && B.Slot != NoSlot)
      return {std::move(Ty), B.Slot};
    if (A.Slot == B.Slot)
      return {std::move(Ty), A.Slot};
    unsigned T = addSlot(SlotKind::Temp, Ty, Loc, "join", ~0u, CurInst);
    addEdge(A.Slot, T);
    addEdge(B.Slot, T);
    return {std::move(Ty), T};
  }

  FlowVal visit(const Expr &E) {
    switch (E.kind()) {
    case ExprKind::NullLit:
      return {Type::makeNull(), NoSlot};
    case ExprKind::IntLit:
      return preciseInt();
    case ExprKind::FloatLit:
      return {Type::makePrim(Qual::Precise, BaseKind::Float), NoSlot};
    case ExprKind::BoolLit:
      return {Type::makePrim(Qual::Precise, BaseKind::Bool), NoSlot};

    case ExprKind::VarRef: {
      const auto &Var = static_cast<const VarRefExpr &>(E);
      if (Var.Name == "this" && CurCls)
        return {Type::makeClass(Ctx, CurCls->Name), NoSlot};
      if (FlowVal *V = resolveLocal(Var.Name)) {
        if (V->Slot != NoSlot)
          ++CS.Slots[V->Slot].Uses;
        return *V;
      }
      return preciseInt();
    }

    case ExprKind::New: {
      const auto &New = static_cast<const NewExpr &>(E);
      return {Type::makeClass(CallGraph::substQual(New.Q, Ctx), New.ClassName),
              NoSlot};
    }
    case ExprKind::NewArray: {
      const auto &New = static_cast<const NewArrayExpr &>(E);
      FlowVal Len = visit(*New.Length);
      if (Len.Slot != NoSlot)
        addEdge(Len.Slot,
                sinkSlot(SlotKind::SinkControl, New.Length->loc(),
                         "array length"));
      Type Ty = Type::makeArray(CallGraph::substQual(New.ElemQual, Ctx),
                                New.Elem);
      unsigned D = addDecl(DeclKind::Alloc, &New,
                           CurBase + ":new[" + E.loc().str() + "]",
                           Type::makeArray(New.ElemQual, New.Elem), E.loc());
      auto Key = std::make_pair(&New, CurInst);
      auto Found = AllocSlots.find(Key);
      unsigned Slot =
          Found != AllocSlots.end()
              ? Found->second
              : addSlot(SlotKind::Alloc, Ty, E.loc(), "array allocation", D,
                        CurInst);
      AllocSlots.emplace(Key, Slot);
      return {std::move(Ty), Slot};
    }

    case ExprKind::FieldRead: {
      const auto &Read = static_cast<const FieldReadExpr &>(E);
      FlowVal Recv = visit(*Read.Receiver);
      if (!Recv.Ty.isClass())
        return preciseInt();
      FieldLookup F = findFieldDecl(Table, Recv.Ty.ClassName, Read.Field);
      if (!F.Field)
        return preciseInt();
      Type Ty = adaptType(Recv.Ty.Q, F.Field->DeclaredType);
      std::vector<unsigned> Slots = fieldSlots(F, Recv.Ty.Q);
      for (unsigned S : Slots)
        ++CS.Slots[S].Uses;
      if (Slots.size() == 1)
        return {std::move(Ty), Slots[0]};
      FlowVal A{Ty, Slots[0]}, B{Ty, Slots[1]};
      return joinFlows(A, B, std::move(Ty), E.loc());
    }
    case ExprKind::FieldWrite: {
      const auto &Write = static_cast<const FieldWriteExpr &>(E);
      FlowVal Recv = visit(*Write.Receiver);
      FlowVal Value = visit(*Write.Value);
      if (!Recv.Ty.isClass())
        return preciseInt();
      FieldLookup F = findFieldDecl(Table, Recv.Ty.ClassName, Write.Field);
      if (!F.Field)
        return preciseInt();
      Type Ty = adaptType(Recv.Ty.Q, F.Field->DeclaredType);
      std::vector<unsigned> Slots = fieldSlots(F, Recv.Ty.Q);
      for (unsigned S : Slots)
        addEdge(Value.Slot, S);
      return {std::move(Ty), Slots[0]};
    }

    case ExprKind::ArrayRead: {
      const auto &Read = static_cast<const ArrayReadExpr &>(E);
      FlowVal Array = visit(*Read.Array);
      FlowVal Index = visit(*Read.Index);
      if (Index.Slot != NoSlot)
        addEdge(Index.Slot,
                sinkSlot(SlotKind::SinkControl, Read.Index->loc(),
                         "array index"));
      if (!Array.Ty.isArray())
        return preciseInt();
      if (Array.Slot != NoSlot)
        ++CS.Slots[Array.Slot].Uses;
      // Elements are conflated with their array: the element value flows
      // from (and to) the array's slot.
      return {Type::makePrim(Array.Ty.ElemQual, Array.Ty.Elem), Array.Slot};
    }
    case ExprKind::ArrayWrite: {
      const auto &Write = static_cast<const ArrayWriteExpr &>(E);
      FlowVal Array = visit(*Write.Array);
      FlowVal Index = visit(*Write.Index);
      FlowVal Value = visit(*Write.Value);
      if (Index.Slot != NoSlot)
        addEdge(Index.Slot,
                sinkSlot(SlotKind::SinkControl, Write.Index->loc(),
                         "array index"));
      if (!Array.Ty.isArray())
        return preciseInt();
      addEdge(Value.Slot, Array.Slot);
      return {Type::makePrim(Array.Ty.ElemQual, Array.Ty.Elem), Array.Slot};
    }
    case ExprKind::ArrayLength: {
      const auto &Len = static_cast<const ArrayLengthExpr &>(E);
      FlowVal Array = visit(*Len.Array);
      if (Array.Slot != NoSlot)
        ++CS.Slots[Array.Slot].Uses;
      // Lengths are precise metadata, not element data: no flow.
      return preciseInt();
    }

    case ExprKind::MethodCall:
      return visitCall(static_cast<const MethodCallExpr &>(E));

    case ExprKind::Cast: {
      const auto &Cast = static_cast<const CastExpr &>(E);
      FlowVal Value = visit(*Cast.Value);
      Type Target = CallGraph::substType(Cast.Target, Ctx);
      if (Value.Slot != NoSlot && isDataType(Target)) {
        if (valueQual(Target) == Qual::Precise) {
          // cast<@precise ...>(e) requires e provably precise: relaxing
          // anything feeding it would break the cast, so it pins.
          addEdge(Value.Slot,
                  sinkSlot(SlotKind::SinkResult, E.loc(), "precise cast"));
          return {std::move(Target), Value.Slot};
        }
        // The cast value itself is a fresh approximate datum.
        unsigned T = addSlot(SlotKind::Temp, Target, E.loc(), "approx cast",
                             ~0u, CurInst);
        addEdge(Value.Slot, T);
        return {std::move(Target), T};
      }
      return {std::move(Target), Value.Slot};
    }
    case ExprKind::Endorse: {
      const auto &End = static_cast<const EndorseExpr &>(E);
      FlowVal Value = visit(*End.Value);
      Type Ty = Type::makePrim(Qual::Precise, Value.Ty.isPrimitive()
                                                  ? Value.Ty.Base
                                                  : BaseKind::Int);
      if (Value.Slot == NoSlot)
        return {std::move(Ty), NoSlot};
      unsigned S = addSlot(SlotKind::Endorse, Ty, E.loc(), "endorse", ~0u,
                           CurInst);
      addEdge(Value.Slot, S);
      return {std::move(Ty), S};
    }

    case ExprKind::Binary: {
      const auto &Bin = static_cast<const BinaryExpr &>(E);
      FlowVal L = visit(*Bin.Lhs);
      FlowVal R = visit(*Bin.Rhs);
      Qual Q = joinQual(L.Ty.Q, R.Ty.Q);
      bool Arith = Bin.Op == BinaryOp::Add || Bin.Op == BinaryOp::Sub ||
                   Bin.Op == BinaryOp::Mul || Bin.Op == BinaryOp::Div ||
                   Bin.Op == BinaryOp::Mod;
      bool Fp = L.Ty.Base == BaseKind::Float || R.Ty.Base == BaseKind::Float;
      Type Ty = Arith ? Type::makePrim(Q, Fp ? BaseKind::Float : BaseKind::Int)
                      : Type::makePrim(Q, BaseKind::Bool);
      CS.Ops.push_back({Fp, Q == Qual::Approx, {L.Slot, R.Slot}});
      return joinFlows(L, R, std::move(Ty), E.loc());
    }
    case ExprKind::Unary: {
      const auto &Un = static_cast<const UnaryExpr &>(E);
      FlowVal Value = visit(*Un.Value);
      Type Ty = Un.Op == UnaryOp::Not
                    ? Type::makePrim(Value.Ty.Q, BaseKind::Bool)
                    : Value.Ty;
      CS.Ops.push_back({Value.Ty.Base == BaseKind::Float,
                        Value.Ty.Q == Qual::Approx,
                        {Value.Slot, NoSlot}});
      return {std::move(Ty), Value.Slot};
    }

    case ExprKind::If: {
      const auto &If = static_cast<const IfExpr &>(E);
      FlowVal Cond = visit(*If.Cond);
      if (Cond.Slot != NoSlot)
        addEdge(Cond.Slot,
                sinkSlot(SlotKind::SinkControl, If.Cond->loc(), "condition"));
      FlowVal Then = visit(*If.Then);
      FlowVal Else = visit(*If.Else);
      Type Ty = Then.Ty;
      Ty.Q = joinQual(Then.Ty.Q, Else.Ty.Q);
      if (Ty.isArray())
        Ty.ElemQual = joinQual(Then.Ty.ElemQual, Else.Ty.ElemQual);
      return joinFlows(Then, Else, std::move(Ty), E.loc());
    }
    case ExprKind::While: {
      const auto &While = static_cast<const WhileExpr &>(E);
      FlowVal Cond = visit(*While.Cond);
      if (Cond.Slot != NoSlot)
        addEdge(Cond.Slot, sinkSlot(SlotKind::SinkControl, While.Cond->loc(),
                                    "condition"));
      visit(*While.Body);
      return preciseInt();
    }

    case ExprKind::Block: {
      const auto &Block = static_cast<const BlockExpr &>(E);
      Scopes.emplace_back();
      FlowVal Last = preciseInt();
      for (const BlockExpr::Item &Item : Block.Items) {
        FlowVal Value = visit(*Item.Value);
        if (Item.IsLet) {
          Type Declared = CallGraph::substType(Item.LetType, Ctx);
          unsigned D = addDecl(DeclKind::Local, &Item,
                               CurBase + "." + Item.LetName, Item.LetType,
                               Item.LetLoc);
          unsigned Slot =
              addSlot(SlotKind::Local, Declared, Item.LetLoc,
                      "local '" + Item.LetName + "'", D, CurInst);
          addEdge(Value.Slot, Slot);
          Scopes.back()[Item.LetName] = {Declared, Slot};
          Last = {std::move(Declared), Slot};
        } else {
          Last = Value;
        }
      }
      Scopes.pop_back();
      return Last;
    }

    case ExprKind::AssignLocal: {
      const auto &Assign = static_cast<const AssignLocalExpr &>(E);
      FlowVal Value = visit(*Assign.Value);
      if (FlowVal *V = resolveLocal(Assign.Name)) {
        addEdge(Value.Slot, V->Slot);
        return *V;
      }
      return preciseInt();
    }
    }
    return preciseInt();
  }

  FlowVal visitCall(const MethodCallExpr &Call) {
    FlowVal Recv = visit(*Call.Receiver);
    std::vector<FlowVal> Args;
    Args.reserve(Call.Args.size());
    for (const ExprPtr &Arg : Call.Args)
      Args.push_back(visit(*Arg));
    if (!Recv.Ty.isClass())
      return preciseInt();
    const MethodDecl *Callee =
        Table.lookupMethod(Recv.Ty.ClassName, Call.Method, Recv.Ty.Q);
    if (!Callee || !declaringClassOf(Table, Recv.Ty.ClassName, Callee))
      return preciseInt();
    std::vector<unsigned> ReturnSlots;
    for (Qual CalleeCtx : CallGraph::calleeContexts(*Callee, Recv.Ty.Q)) {
      unsigned Inst = Graph.instanceId(Callee, CalleeCtx);
      if (Inst == ~0u)
        continue;
      const std::vector<unsigned> &Params = ParamSlotsByInst[Inst];
      for (unsigned I = 0; I < Args.size() && I < Params.size(); ++I)
        addEdge(Args[I].Slot, Params[I]);
      ReturnSlots.push_back(ReturnSlotByInst[Inst]);
    }
    Type Ty = adaptType(Recv.Ty.Q, Callee->ReturnType);
    if (ReturnSlots.empty())
      return {std::move(Ty), NoSlot};
    if (ReturnSlots.size() == 1)
      return {std::move(Ty), ReturnSlots[0]};
    FlowVal A{Ty, ReturnSlots[0]}, B{Ty, ReturnSlots[1]};
    return joinFlows(A, B, std::move(Ty), Call.loc());
  }
};

ConstraintSystem ConstraintSystem::build(const Program &Prog,
                                         const ClassTable &Table,
                                         const CallGraph &Graph) {
  return ConstraintBuilder(Prog, Table, Graph).run();
}

//===----------------------------------------------------------------------===//
// Union-find over array-invariance groups
//===----------------------------------------------------------------------===//

unsigned ConstraintSystem::findGroup(unsigned SlotId) const {
  unsigned Root = SlotId;
  while (GroupParent[Root] != Root)
    Root = GroupParent[Root];
  while (GroupParent[SlotId] != Root) {
    unsigned Next = GroupParent[SlotId];
    GroupParent[SlotId] = Root;
    SlotId = Next;
  }
  return Root;
}

void ConstraintSystem::uniteGroups(unsigned A, unsigned B) {
  A = findGroup(A);
  B = findGroup(B);
  if (A != B)
    GroupParent[std::max(A, B)] = std::min(A, B);
}

unsigned ConstraintSystem::arrayGroup(unsigned SlotId) const {
  return findGroup(SlotId);
}

//===----------------------------------------------------------------------===//
// Demand fixpoint
//===----------------------------------------------------------------------===//

void ConstraintSystem::solveDemand() {
  if (DemandSolved)
    return;
  DemandSolved = true;

  Demanded.assign(Slots.size(), false);
  std::vector<unsigned> Work;
  auto demand = [&](unsigned S) {
    if (!Demanded[S]) {
      Demanded[S] = true;
      Work.push_back(S);
    }
  };

  for (unsigned S = 0; S < Slots.size(); ++S) {
    const Slot &Sl = Slots[S];
    if (Sl.K == SlotKind::SinkControl || Sl.K == SlotKind::SinkResult) {
      demand(S);
      continue;
    }
    // Declared-precise data that is *not* relaxable by decree — e.g. a
    // @context field or parameter on a precise instance — pins everything
    // feeding it, exactly like a sink.
    bool DeclSlot = Sl.K == SlotKind::Field || Sl.K == SlotKind::Param ||
                    Sl.K == SlotKind::Return || Sl.K == SlotKind::Local;
    if (DeclSlot && isDataType(Sl.Ty) && valueQual(Sl.Ty) == Qual::Precise &&
        !Decls[Sl.Decl].Candidate)
      demand(S);
  }

  while (!Work.empty()) {
    unsigned S = Work.back();
    Work.pop_back();
    // endorse() is the one construct that severs demand: its operand may
    // be approximate no matter how precisely the result is used.
    if (Slots[S].K == SlotKind::Endorse)
      continue;
    for (unsigned From : Feeders[S])
      demand(From);
  }

  // Array-invariance clusters, lifted to declarations: every declaration
  // whose slots share a group must relax (or stay precise) together.
  // Union declarations through shared slot groups, then accept a cluster
  // only when every member is an undemanded candidate.
  std::vector<unsigned> DeclParent(Decls.size());
  for (unsigned D = 0; D < Decls.size(); ++D)
    DeclParent[D] = D;
  auto findDecl = [&](unsigned D) {
    while (DeclParent[D] != D) {
      unsigned Next = DeclParent[D];
      DeclParent[D] = DeclParent[Next];
      D = Next;
    }
    return D;
  };
  auto uniteDecls = [&](unsigned A, unsigned B) {
    A = findDecl(A);
    B = findDecl(B);
    if (A != B)
      DeclParent[std::max(A, B)] = std::min(A, B);
  };
  std::map<unsigned, unsigned> GroupDecl; // group rep -> first decl
  for (unsigned S = 0; S < Slots.size(); ++S) {
    if (!Slots[S].Ty.isArray() || Slots[S].Decl == ~0u)
      continue;
    unsigned G = findGroup(S);
    auto Found = GroupDecl.find(G);
    if (Found == GroupDecl.end())
      GroupDecl.emplace(G, Slots[S].Decl);
    else
      uniteDecls(Found->second, Slots[S].Decl);
  }

  // A declaration relaxes alone only when it is an undemanded candidate;
  // a cluster relaxes only when every member does. (A demanded join temp
  // inside a group needs no special case: backward flow demanded the
  // group's declared slots already.)
  std::vector<bool> SelfOk(Decls.size());
  for (unsigned D = 0; D < Decls.size(); ++D) {
    SelfOk[D] = Decls[D].Candidate;
    for (unsigned S : Decls[D].Slots)
      if (Demanded[S])
        SelfOk[D] = false;
  }
  std::vector<bool> ClusterOk(Decls.size(), true);
  for (unsigned D = 0; D < Decls.size(); ++D)
    if (!SelfOk[D])
      ClusterOk[findDecl(D)] = false;
  RelaxOK.assign(Decls.size(), false);
  for (unsigned D = 0; D < Decls.size(); ++D)
    RelaxOK[D] = SelfOk[D] && ClusterOk[findDecl(D)];
}

bool ConstraintSystem::relaxable(unsigned DeclId) const {
  assert(DemandSolved && "call solveDemand() first");
  return RelaxOK[DeclId];
}

std::vector<bool> ConstraintSystem::inferredApprox() const {
  assert(DemandSolved && "call solveDemand() first");
  std::vector<bool> Approx(Slots.size(), false);
  for (unsigned S = 0; S < Slots.size(); ++S) {
    const Slot &Sl = Slots[S];
    switch (Sl.K) {
    case SlotKind::Field:
    case SlotKind::Param:
    case SlotKind::Return:
    case SlotKind::Local:
    case SlotKind::Alloc:
      Approx[S] = (isDataType(Sl.Ty) && valueQual(Sl.Ty) == Qual::Approx) ||
                  (Sl.Decl != ~0u && RelaxOK[Sl.Decl]);
      break;
    default:
      break;
    }
  }
  // Temporaries become approximate when anything feeding them is.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned S = 0; S < Slots.size(); ++S) {
      if (Slots[S].K != SlotKind::Temp || Approx[S])
        continue;
      for (unsigned From : Feeders[S])
        if (Approx[From]) {
          Approx[S] = true;
          Changed = true;
          break;
        }
    }
  }
  return Approx;
}

//===----------------------------------------------------------------------===//
// Taint fixpoint
//===----------------------------------------------------------------------===//

ConstraintSystem::TaintState ConstraintSystem::solveTaint() const {
  TaintState T;
  T.Raw.assign(Slots.size(), false);
  T.RawContext.assign(Slots.size(), false);
  T.RawFrom.assign(Slots.size(), NoSlot);
  std::vector<bool> EndorseRaw(Slots.size(), false);
  std::vector<bool> EndorseCtx(Slots.size(), false);

  std::vector<unsigned> Work;
  auto taint = [&](unsigned S, bool FromContext, unsigned From) {
    bool News = false;
    if (!T.Raw[S]) {
      T.Raw[S] = true;
      T.RawFrom[S] = From;
      News = true;
    }
    if (FromContext && !T.RawContext[S]) {
      T.RawContext[S] = true;
      News = true;
    }
    if (News)
      Work.push_back(S);
  };

  for (unsigned S = 0; S < Slots.size(); ++S) {
    const Slot &Sl = Slots[S];
    if (Sl.K == SlotKind::Endorse || Sl.K == SlotKind::SinkControl ||
        Sl.K == SlotKind::SinkResult)
      continue;
    if (!isDataType(Sl.Ty) || valueQual(Sl.Ty) != Qual::Approx)
      continue;
    // Approximate storage originates raw taint. The origin is
    // *adaptation* taint when the declaration is @context and only this
    // instantiation made it approximate.
    bool FromContext =
        Sl.Decl != ~0u && valueQual(Decls[Sl.Decl].DeclaredType) == Qual::Context;
    taint(S, FromContext, S);
  }

  while (!Work.empty()) {
    unsigned S = Work.back();
    Work.pop_back();
    for (unsigned To : Consumers[S]) {
      if (Slots[To].K == SlotKind::Endorse) {
        // The gate: raw taint stops here, but record the crossing.
        EndorseRaw[To] = true;
        if (T.RawContext[S])
          EndorseCtx[To] = true;
        continue;
      }
      taint(To, T.RawContext[S], S);
    }
  }

  for (unsigned S = 0; S < Slots.size(); ++S)
    if (EndorseRaw[S])
      T.TaintedEndorses.push_back({S, EndorseCtx[S]});
  return T;
}

std::vector<unsigned> ConstraintSystem::reachableFrom(unsigned From) const {
  std::vector<bool> Seen(Slots.size(), false);
  std::vector<unsigned> Work{From};
  while (!Work.empty()) {
    unsigned S = Work.back();
    Work.pop_back();
    for (unsigned To : Consumers[S])
      if (!Seen[To]) {
        Seen[To] = true;
        Work.push_back(To);
      }
  }
  std::vector<unsigned> Out;
  for (unsigned S = 0; S < Slots.size(); ++S)
    if (Seen[S] && S != From)
      Out.push_back(S);
  return Out;
}

} // namespace analysis
} // namespace enerj
