//===- analysis/infer.cpp - Whole-program qualifier inference -------------===//

#include "analysis/infer.h"

#include "analysis/callgraph.h"
#include "analysis/constraints.h"
#include "energy/model.h"
#include "fault/config.h"

#include <algorithm>
#include <cstdio>

namespace enerj {
namespace analysis {

using namespace enerj::fenerj;

namespace {

Qual valueQual(const Type &T) { return T.isArray() ? T.ElemQual : T.Q; }

const char *qualWord(Qual Q) {
  switch (Q) {
  case Qual::Precise:
    return "precise";
  case Qual::Approx:
    return "approx";
  case Qual::Top:
    return "top";
  case Qual::Context:
    return "context";
  case Qual::Lost:
    return "lost";
  }
  return "unknown";
}

const char *kindWord(DeclKind K) {
  switch (K) {
  case DeclKind::Field:
    return "field";
  case DeclKind::Param:
    return "param";
  case DeclKind::Return:
    return "return";
  case DeclKind::Local:
    return "local";
  case DeclKind::Alloc:
    return "alloc";
  }
  return "unknown";
}

std::string fixed(double Value) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.6f", Value);
  return Buffer;
}

/// Static whole-system energy factor under the Section 5.4 split: the
/// instruction mix is priced per recorded op; storage is priced by the
/// fraction of storage declarations (fields, arrays, allocation sites)
/// that hold approximate data. Mirrors computeEnergy()'s composition
/// (65/35 logic/SRAM inside the CPU, 55/45 CPU/DRAM for a server) but
/// over static counts — a planning estimate, not a measurement.
double staticEnergyFactor(const ConstraintSystem &CS,
                          const std::vector<bool> &SlotApprox,
                          bool UseInferred, const FaultConfig &Config) {
  EnergyConstants Constants;
  double Units = 0.0, Energy = 0.0;
  for (const StaticOp &Op : CS.ops()) {
    bool Approx = Op.AnnotatedApprox;
    if (UseInferred && !Approx)
      for (unsigned S : Op.OperandSlots)
        if (S != ConstraintSystem::NoSlot && SlotApprox[S])
          Approx = true;
    double OpUnits = Op.IsFp ? Constants.FpOpUnits : Constants.IntOpUnits;
    Units += OpUnits;
    Energy += OpUnits * instructionEnergyFactor(Op.IsFp, Approx, Config);
  }
  double InstrFactor = Units > 0.0 ? Energy / Units : 1.0;

  unsigned Storage = 0, StorageApprox = 0;
  for (const Declaration &D : CS.decls()) {
    bool IsStorage = D.K == DeclKind::Field || D.K == DeclKind::Alloc ||
                     D.DeclaredType.isArray();
    if (!D.InStats || !IsStorage)
      continue;
    ++Storage;
    bool Approx = false;
    for (unsigned S : D.Slots)
      if (UseInferred ? SlotApprox[S]
                      : valueQual(CS.slots()[S].Ty) == Qual::Approx)
        Approx = true;
    if (Approx)
      ++StorageApprox;
  }
  double Frac = Storage ? static_cast<double>(StorageApprox) / Storage : 0.0;
  double SramFactor = 1.0 - Frac * Config.sramPowerSaved();
  double DramFactor = 1.0 - Frac * Config.dramPowerSaved();
  double CpuFactor = (1.0 - Constants.SramShareOfCpu) * InstrFactor +
                     Constants.SramShareOfCpu * SramFactor;
  return 0.55 * CpuFactor + 0.45 * DramFactor;
}

} // namespace

InferResult inferProgram(const Program &Prog, const ClassTable &Table,
                         std::string FileName) {
  InferResult R;
  R.File = std::move(FileName);

  CallGraph Graph = CallGraph::build(Prog, Table);
  ConstraintSystem CS = ConstraintSystem::build(Prog, Table, Graph);
  CS.solveDemand();
  std::vector<bool> SlotApprox = CS.inferredApprox();

  R.Instances = Graph.instanceCount();
  R.Edges = static_cast<unsigned>(Graph.edges().size());
  R.Slots = static_cast<unsigned>(CS.slots().size());
  R.Sccs = Graph.sccCount();
  for (unsigned S = 0; S < Graph.sccCount(); ++S)
    if (Graph.sccIsRecursive(S))
      ++R.RecursiveSccs;
  for (const UnreachableMethod &U : Graph.unreachable())
    R.UnreachableMethods.push_back(U.name());

  for (unsigned D = 0; D < CS.decls().size(); ++D) {
    const Declaration &Decl = CS.decls()[D];
    if (!Decl.InStats)
      continue;
    InferredDecl Out;
    Out.Name = Decl.Name;
    Out.Kind = kindWord(Decl.K);
    Qual DeclaredQ = valueQual(Decl.DeclaredType);
    Out.Declared = qualWord(DeclaredQ);
    Out.Relaxed = CS.relaxable(D);
    Out.Inferred = Out.Relaxed ? "approx" : Out.Declared;
    Out.Loc = Decl.Loc;
    Out.Uses = Decl.Uses;
    ++R.TotalDecls;
    // @context counts as annotated approximability: on approximate
    // instances the data is approximate by the programmer's choice.
    if (DeclaredQ == Qual::Approx || DeclaredQ == Qual::Context)
      ++R.AnnotatedApprox;
    if (DeclaredQ == Qual::Approx || DeclaredQ == Qual::Context ||
        Out.Relaxed)
      ++R.InferredApprox;
    R.Decls.push_back(std::move(Out));
  }
  std::sort(R.Decls.begin(), R.Decls.end(),
            [](const InferredDecl &A, const InferredDecl &B) {
              if (A.Loc.Line != B.Loc.Line)
                return A.Loc.Line < B.Loc.Line;
              if (A.Loc.Column != B.Loc.Column)
                return A.Loc.Column < B.Loc.Column;
              return A.Name < B.Name;
            });

  if (R.TotalDecls) {
    R.AnnotatedApproxPct = 100.0 * R.AnnotatedApprox / R.TotalDecls;
    R.InferredApproxPct = 100.0 * R.InferredApprox / R.TotalDecls;
  }

  FaultConfig Config = FaultConfig::preset(ApproxLevel::Medium);
  R.AnnotatedEnergyFactor =
      staticEnergyFactor(CS, SlotApprox, /*UseInferred=*/false, Config);
  R.InferredEnergyFactor =
      staticEnergyFactor(CS, SlotApprox, /*UseInferred=*/true, Config);
  R.AnnotatedSavedPct = 100.0 * (1.0 - R.AnnotatedEnergyFactor);
  R.InferredSavedPct = 100.0 * (1.0 - R.InferredEnergyFactor);
  return R;
}

std::string renderInferTable(const std::vector<InferResult> &Results) {
  std::string Out;
  char Line[256];
  std::snprintf(Line, sizeof(Line), "%-16s %6s %11s %11s %12s %12s\n", "app",
                "decls", "annotated%", "inferred%", "saved%(ann)",
                "saved%(inf)");
  Out += Line;
  Out += std::string(72, '-') + "\n";
  for (const InferResult &R : Results) {
    // Strip the directory for the row label.
    std::string Name = R.File;
    size_t Slash = Name.find_last_of('/');
    if (Slash != std::string::npos)
      Name = Name.substr(Slash + 1);
    size_t Dot = Name.rfind(".fej");
    if (Dot != std::string::npos)
      Name = Name.substr(0, Dot);
    std::snprintf(Line, sizeof(Line), "%-16s %6u %10.1f%% %10.1f%% %11.1f%% %11.1f%%\n",
                  Name.c_str(), R.TotalDecls, R.AnnotatedApproxPct,
                  R.InferredApproxPct, R.AnnotatedSavedPct, R.InferredSavedPct);
    Out += Line;
  }
  return Out;
}

std::string renderInferSuggestions(const InferResult &Result) {
  std::string Out;
  for (const InferredDecl &D : Result.Decls) {
    if (!D.Relaxed)
      continue;
    Out += Result.File + ":" + std::to_string(D.Loc.Line) + ":" +
           std::to_string(D.Loc.Column) + ": relax " + D.Kind + " '" +
           D.Name + "' from @precise to @approx (" +
           std::to_string(D.Uses) + " use(s), no new endorsement needed)\n";
  }
  if (Out.empty())
    Out = Result.File + ": no relaxable declarations\n";
  return Out;
}

namespace {

void jsonEscape(std::string &Out, const std::string &Text) {
  static const char Hex[] = "0123456789abcdef";
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        Out += "\\u00";
        Out += Hex[(C >> 4) & 0xF];
        Out += Hex[C & 0xF];
      } else {
        Out += C;
      }
    }
  }
}

} // namespace

std::string renderInferJson(const std::vector<InferResult> &Results) {
  std::string Json = "{\"tool\":\"enerj-infer\",\"version\":1,\"apps\":[";
  bool FirstApp = true;
  for (const InferResult &R : Results) {
    if (!FirstApp)
      Json += ',';
    FirstApp = false;
    Json += "{\"file\":\"";
    jsonEscape(Json, R.File);
    Json += "\",\"decls\":{\"total\":" + std::to_string(R.TotalDecls);
    Json += ",\"annotatedApprox\":" + std::to_string(R.AnnotatedApprox);
    Json += ",\"inferredApprox\":" + std::to_string(R.InferredApprox);
    Json += ",\"annotatedPct\":" + fixed(R.AnnotatedApproxPct);
    Json += ",\"inferredPct\":" + fixed(R.InferredApproxPct);
    Json += "},\"energy\":{\"annotatedFactor\":" +
            fixed(R.AnnotatedEnergyFactor);
    Json += ",\"inferredFactor\":" + fixed(R.InferredEnergyFactor);
    Json += ",\"annotatedSavedPct\":" + fixed(R.AnnotatedSavedPct);
    Json += ",\"inferredSavedPct\":" + fixed(R.InferredSavedPct);
    Json += "},\"callGraph\":{\"instances\":" + std::to_string(R.Instances);
    Json += ",\"edges\":" + std::to_string(R.Edges);
    Json += ",\"slots\":" + std::to_string(R.Slots);
    Json += ",\"sccs\":" + std::to_string(R.Sccs);
    Json += ",\"recursiveSccs\":" + std::to_string(R.RecursiveSccs);
    Json += ",\"unreachable\":[";
    for (size_t I = 0; I < R.UnreachableMethods.size(); ++I) {
      if (I)
        Json += ',';
      Json += '"';
      jsonEscape(Json, R.UnreachableMethods[I]);
      Json += '"';
    }
    Json += "]},\"declarations\":[";
    bool FirstDecl = true;
    for (const InferredDecl &D : R.Decls) {
      if (!FirstDecl)
        Json += ',';
      FirstDecl = false;
      Json += "{\"name\":\"";
      jsonEscape(Json, D.Name);
      Json += "\",\"kind\":\"" + D.Kind;
      Json += "\",\"declared\":\"" + D.Declared;
      Json += "\",\"inferred\":\"" + D.Inferred;
      Json += "\",\"line\":" + std::to_string(D.Loc.Line);
      Json += ",\"column\":" + std::to_string(D.Loc.Column);
      Json += ",\"relaxed\":";
      Json += D.Relaxed ? "true" : "false";
      Json += ",\"uses\":" + std::to_string(D.Uses) + "}";
    }
    Json += "]}";
  }
  Json += "]}";
  return Json;
}

} // namespace analysis
} // namespace enerj
