//===- analysis/fenerj_cfg.h - CFG over FEnerJ method bodies ----*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic-block CFG construction over FEnerJ expression bodies (a method
/// body or the main expression). FEnerJ is expression-oriented, so the
/// CFG's "instructions" are *events* in evaluation order: definitions of
/// and references to local variables, endorsements, and the remaining
/// expression evaluations. `if` produces the usual diamond, `while` the
/// usual loop with a back edge; `&&`/`||` evaluate both operands (FEnerJ
/// is non-short-circuiting, matching the interpreter and code
/// generator).
///
/// Variables are resolved to dense indices during construction, so
/// shadowed names in nested blocks become distinct variables, and every
/// Def/Use event names its variable by index — exactly what the
/// set-based dataflow domains want.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_ANALYSIS_FENERJ_CFG_H
#define ENERJ_ANALYSIS_FENERJ_CFG_H

#include "fenerj/ast.h"

#include <vector>

namespace enerj {
namespace analysis {

struct FjVariable {
  std::string Name;
  fenerj::Type DeclType;
  fenerj::SourceLoc Loc; ///< Declaration site.
  bool IsParam = false;
};

struct FjEvent {
  enum class Kind {
    Def,     ///< let initializer or assignment writing Var.
    Use,     ///< read of Var.
    Endorse, ///< an endorse() evaluation.
    Eval,    ///< any other side-effecting evaluation.
  };
  Kind K = Kind::Eval;
  const fenerj::Expr *E = nullptr;
  unsigned Var = ~0u; ///< For Def/Use.
  fenerj::SourceLoc Loc;
};

struct FjBlock {
  std::vector<FjEvent> Events;
  std::vector<unsigned> Succs;
  std::vector<unsigned> Preds;
};

/// The CFG of one FEnerJ body. Block 0 is the entry (it carries the
/// parameter definitions); blocks without successors are exits.
class FenerjCfg {
public:
  /// Builds the CFG of \p Body. \p Params (may be null) contribute Def
  /// events in the entry block.
  static FenerjCfg build(const fenerj::Expr &Body,
                         const std::vector<fenerj::ParamDecl> *Params);

  unsigned blockCount() const {
    return static_cast<unsigned>(Blocks.size());
  }
  const FjBlock &block(unsigned Block) const { return Blocks[Block]; }
  const std::vector<unsigned> &succs(unsigned Block) const {
    return Blocks[Block].Succs;
  }
  const std::vector<unsigned> &preds(unsigned Block) const {
    return Blocks[Block].Preds;
  }
  const std::vector<FjVariable> &vars() const { return Vars; }

private:
  friend class FenerjCfgBuilder;

  std::vector<FjBlock> Blocks;
  std::vector<FjVariable> Vars;
};

} // namespace analysis
} // namespace enerj

#endif // ENERJ_ANALYSIS_FENERJ_CFG_H
