//===- analysis/opt/ir.h - Block-structured optimizer IR -------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimizer's program representation: the same instructions as an
/// assembled IsaProgram, regrouped into basic blocks with explicit edges
/// so passes can rewrite bodies without recomputing branch offsets. The
/// CFG *skeleton* is immutable by design — every pass edits block bodies
/// only, never splits, merges, or retargets blocks — which is what lets
/// the translation validator (analysis/validate.h) pair original and
/// optimized blocks one-to-one.
///
/// Branch targets are stored as block ids. The synthetic block id
/// `exitId()` (== Blocks.size()) stands for the architected
/// fall-off-the-end clean halt (a branch to Instructions.size(); see
/// docs/ISA.md). The Graph concept of analysis/dataflow.h is satisfied
/// with that synthetic exit as a real node, so backward analyses see a
/// single all-registers-live exit boundary regardless of whether a block
/// leaves via `halt`, a branch to the end, or plain fall-through.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_ANALYSIS_OPT_IR_H
#define ENERJ_ANALYSIS_OPT_IR_H

#include "isa/isa.h"

#include <optional>
#include <vector>

namespace enerj {
namespace analysis {
namespace opt {

struct OptBlock {
  /// Straight-line instructions, terminator excluded.
  std::vector<isa::Instruction> Body;
  /// The control transfer ending the block, if any; a block without a
  /// terminator falls through to the next block (or off the end).
  std::optional<isa::Instruction> Term;
  /// Branch/jump target as a block id (may equal exitId()); unused for
  /// halt or fall-through blocks. The Imm of Term is rewritten from this
  /// at emission time.
  unsigned Target = 0;
  /// Successor block ids, including the synthetic exit id. For a
  /// conditional branch: taken target first, then fall-through.
  std::vector<unsigned> Succs;
  std::vector<unsigned> Preds;
};

struct OptProgram {
  uint64_t PreciseWords = 0;
  uint64_t ApproxWords = 0;
  std::vector<OptBlock> Blocks;

  /// The synthetic exit node's id.
  [[nodiscard]] unsigned exitId() const {
    return static_cast<unsigned>(Blocks.size());
  }

  /// Total instruction count (bodies + terminators).
  [[nodiscard]] size_t opCount() const;

  // --- Graph concept (analysis/dataflow.h); block 0 is the entry and
  // --- the synthetic exit participates as node exitId().
  [[nodiscard]] unsigned blockCount() const {
    return static_cast<unsigned>(Blocks.size()) + 1;
  }
  [[nodiscard]] const std::vector<unsigned> &succs(unsigned Block) const {
    return Block == exitId() ? Empty : Blocks[Block].Succs;
  }
  [[nodiscard]] const std::vector<unsigned> &preds(unsigned Block) const {
    return Block == exitId() ? ExitPreds : Blocks[Block].Preds;
  }

  /// Rebuilds Preds (and the exit node's pred list) from Succs.
  void recomputePreds();

  std::vector<unsigned> ExitPreds;

private:
  static const std::vector<unsigned> Empty;
};

/// Regroups \p Program into blocks. The program must already satisfy the
/// verifier's branch-range rule (targets in [0, Instructions.size()]).
OptProgram buildOptProgram(const isa::IsaProgram &Program);

/// Re-linearizes \p Program, recomputing branch immediates from block
/// offsets. Building then emitting without running any pass reproduces
/// the input program exactly.
isa::IsaProgram emitProgram(const OptProgram &Program);

/// True when \p Op writes a register and has no other effect — no trap,
/// no memory access, no control transfer. Precise div/rem can trap and
/// are excluded; their approximate variants return 0 on a zero divisor
/// and qualify.
bool isPureOp(const isa::Instruction &I);

/// True when the opcode's result register lives in the FP file.
bool isFpDest(isa::Opcode Op);

} // namespace opt
} // namespace analysis
} // namespace enerj

#endif // ENERJ_ANALYSIS_OPT_IR_H
