//===- analysis/opt/pipeline.h - Validated pass pipeline -------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimizer driver: runs a pass list over an assembled program,
/// translation-validating after *every* pass and reverting any rewrite
/// the validator cannot prove (a buggy pass degrades to a no-op, never a
/// miscompile). The final program is additionally re-checked by the
/// instruction-local verifier (isa::verify) and the flow-sensitive
/// verifier (analysis::verifyFlow); if either rejects, the whole
/// optimization is discarded and the input program is left untouched.
///
/// Reports carry a static Table-2 energy estimate: each counted
/// operation priced at its instructionEnergyFactor under the chosen
/// level. It is a *static* proxy (instruction text, not dynamic
/// counts) — the opt_pipeline bench measures the dynamic counterpart.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_ANALYSIS_OPT_PIPELINE_H
#define ENERJ_ANALYSIS_OPT_PIPELINE_H

#include "analysis/opt/passes.h"
#include "fault/config.h"

namespace enerj {
namespace analysis {
namespace opt {

struct OptOptions {
  std::vector<PassKind> Passes = defaultPasses();
  /// Hardware level used to price the static energy estimate.
  ApproxLevel EnergyLevel = ApproxLevel::Medium;
};

/// A static Table-2 energy estimate of a program's text: every counted
/// operation (ALU, FP, branch comparisons — the same set the machine
/// ticks in OperationStats) priced at its per-op factor.
struct StaticEnergyEstimate {
  size_t CountedOps = 0;  ///< Instructions that tick OperationStats.
  double Units = 0.0;     ///< Abstract energy units after approximation.
  double PreciseUnits = 0.0; ///< The same text priced fully precisely.

  /// Normalized factor (1.0 = no approximate savings in the text).
  [[nodiscard]] double factor() const {
    return PreciseUnits > 0 ? Units / PreciseUnits : 1.0;
  }
};

StaticEnergyEstimate staticEnergyEstimate(const isa::IsaProgram &Program,
                                          const FaultConfig &Config);

struct PassReport {
  PassKind Kind = PassKind::Dce;
  bool Changed = false;  ///< The pass rewrote something.
  bool Accepted = false; ///< The validator proved it (vacuously if !Changed).
  unsigned Rewritten = 0;
  unsigned Removed = 0;
  std::string RejectReason; ///< Validator message when !Accepted.
  size_t OpsAfter = 0;      ///< Instruction count after this pass.
  StaticEnergyEstimate EnergyAfter;
};

struct OptReport {
  bool Ok = false;
  std::string Error; ///< Set when the input was rejected up front.
  size_t OpsBefore = 0, OpsAfter = 0;
  StaticEnergyEstimate EnergyBefore, EnergyAfter;
  std::vector<PassReport> Passes;

  [[nodiscard]] unsigned totalRewritten() const {
    unsigned Count = 0;
    for (const PassReport &Pass : Passes)
      if (Pass.Accepted)
        Count += Pass.Rewritten;
    return Count;
  }
  [[nodiscard]] unsigned totalRemoved() const {
    unsigned Count = 0;
    for (const PassReport &Pass : Passes)
      if (Pass.Accepted)
        Count += Pass.Removed;
    return Count;
  }
};

/// Optimizes \p Program in place (only when everything validates; on any
/// front-door rejection the program is left exactly as it was).
OptReport optimizeProgram(isa::IsaProgram &Program,
                          const OptOptions &Options = {});

} // namespace opt
} // namespace analysis
} // namespace enerj

#endif // ENERJ_ANALYSIS_OPT_PIPELINE_H
