//===- analysis/opt/passes.h - Qualifier-aware optimizer passes -*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimizer's pass catalog. Every pass edits block bodies in place —
/// never the CFG skeleton — and returns the block-entry invariants it
/// relied on, so the translation validator (analysis/validate.h) can
/// re-prove the rewrite. The passes share one non-negotiable policy:
///
///  * an approximate (`.a`) operation is never folded, merged with
///    another `.a` operation, or moved across an `endorse`/`fendorse` —
///    the validator's uninterpreted-function modeling of `.a` ops would
///    reject it anyway, but the passes don't try;
///  * precise-state semantics at ApproxLevel::None are preserved
///    exactly: no store is dropped or reordered and no trap obligation
///    (precise div/rem, any load) disappears unless a duplicate already
///    discharged it earlier in the same block.
///
/// See docs/OPTIMIZER.md for the full catalog and the per-pass
/// soundness arguments.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_ANALYSIS_OPT_PASSES_H
#define ENERJ_ANALYSIS_OPT_PASSES_H

#include "analysis/opt/ir.h"
#include "analysis/validate.h"

#include <string>

namespace enerj {
namespace analysis {
namespace opt {

enum class PassKind {
  ConstProp,   ///< Sparse SSA constant propagation + strength reduction.
  CopyProp,    ///< Precise copy propagation through mv/fmv chains.
  Cse,         ///< Per-block value numbering over precise computations.
  EndorseElim, ///< Duplicate endorsements of the same value become mv.
  Dce,         ///< Dead pure instructions (global backward liveness).
};

const char *passName(PassKind Kind);

/// Parses a comma-separated pass list ("constprop,dce"). Returns false
/// and sets \p Error on an unknown name.
bool parsePassList(const std::string &Spec, std::vector<PassKind> &Out,
                   std::string &Error);

/// The default pipeline, in order.
std::vector<PassKind> defaultPasses();

struct PassOutcome {
  bool Changed = false;
  unsigned Rewritten = 0; ///< Instructions replaced with cheaper forms.
  unsigned Removed = 0;   ///< Instructions deleted outright.
  /// Block-entry invariants the rewrite relied on (constants and
  /// register equalities over precise registers only).
  BlockFacts Facts;
};

/// Runs one pass over \p Program in place. The caller is responsible for
/// validating the rewrite against a snapshot and reverting on failure.
PassOutcome runPass(OptProgram &Program, PassKind Kind);

} // namespace opt
} // namespace analysis
} // namespace enerj

#endif // ENERJ_ANALYSIS_OPT_PASSES_H
