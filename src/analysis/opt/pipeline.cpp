//===- analysis/opt/pipeline.cpp - Validated pass pipeline ----------------===//

#include "analysis/opt/pipeline.h"

#include "analysis/isa_flow.h"
#include "energy/model.h"
#include "isa/verifier.h"

using namespace enerj;
using namespace enerj::analysis;
using namespace enerj::analysis::opt;
using isa::Opcode;

namespace {

/// Whether \p Op ticks OperationStats when executed, and in which file.
/// Branches tick one precise comparison; immediates, moves, endorsements
/// and memory accesses tick nothing (they are priced into storage and
/// fetch elsewhere in the model).
bool countsAsOp(Opcode Op, bool &IsFp) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::Addi:
  case Opcode::Seq:
  case Opcode::Sne:
  case Opcode::Slt:
  case Opcode::Sle:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Cvti:
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Ble:
    IsFp = false;
    return true;
  case Opcode::Fadd:
  case Opcode::Fsub:
  case Opcode::Fmul:
  case Opcode::Fdiv:
  case Opcode::Cvt:
  case Opcode::Fbeq:
  case Opcode::Fbne:
  case Opcode::Fblt:
  case Opcode::Fble:
    IsFp = true;
    return true;
  default:
    return false;
  }
}

} // namespace

StaticEnergyEstimate
enerj::analysis::opt::staticEnergyEstimate(const isa::IsaProgram &Program,
                                           const FaultConfig &Config) {
  StaticEnergyEstimate Est;
  EnergyConstants Constants;
  for (const isa::Instruction &I : Program.Instructions) {
    bool IsFp = false;
    if (!countsAsOp(I.Op, IsFp))
      continue;
    ++Est.CountedOps;
    double Units = IsFp ? Constants.FpOpUnits : Constants.IntOpUnits;
    Est.PreciseUnits += Units;
    Est.Units +=
        Units * instructionEnergyFactor(IsFp, I.Approx, Config, Constants);
  }
  return Est;
}

OptReport enerj::analysis::opt::optimizeProgram(isa::IsaProgram &Program,
                                                const OptOptions &Options) {
  OptReport Report;
  FaultConfig Config = FaultConfig::preset(Options.EnergyLevel);

  if (!isa::verify(Program).empty()) {
    Report.Error = "input rejected by the ISA verifier; not optimizing";
    return Report;
  }

  OptProgram Current = buildOptProgram(Program);
  Report.OpsBefore = Current.opCount();
  Report.EnergyBefore = staticEnergyEstimate(Program, Config);

  for (PassKind Kind : Options.Passes) {
    PassReport PR;
    PR.Kind = Kind;
    OptProgram Snapshot = Current;
    PassOutcome Outcome = runPass(Current, Kind);
    PR.Changed = Outcome.Changed;
    PR.Rewritten = Outcome.Rewritten;
    PR.Removed = Outcome.Removed;
    if (!Outcome.Changed) {
      Current = std::move(Snapshot); // Discard any incidental churn.
      PR.Accepted = true;
    } else {
      ValidationResult Result =
          validateRewrite(Snapshot, Current, Outcome.Facts);
      if (Result.Ok) {
        PR.Accepted = true;
      } else {
        PR.Accepted = false;
        PR.RejectReason = Result.Error;
        PR.Rewritten = 0;
        PR.Removed = 0;
        Current = std::move(Snapshot);
      }
    }
    PR.OpsAfter = Current.opCount();
    PR.EnergyAfter = staticEnergyEstimate(emitProgram(Current), Config);
    Report.Passes.push_back(std::move(PR));
  }

  isa::IsaProgram Optimized = emitProgram(Current);
  // Belt and braces: the optimized output must still satisfy both the
  // instruction-local discipline and the flow-sensitive verifier. Any
  // failure here discards the entire optimization.
  if (!isa::verify(Optimized).empty() || !verifyFlow(Optimized).ok()) {
    Report.Error = "optimized program failed re-verification; discarded";
    Report.OpsAfter = Report.OpsBefore;
    Report.EnergyAfter = Report.EnergyBefore;
    return Report;
  }

  Report.Ok = true;
  Report.OpsAfter = Optimized.Instructions.size();
  Report.EnergyAfter = staticEnergyEstimate(Optimized, Config);
  Program = std::move(Optimized);
  return Report;
}
