//===- analysis/opt/passes.cpp - Qualifier-aware optimizer passes ---------===//

#include "analysis/opt/passes.h"

#include "analysis/opt/ssa.h"
#include "support/bits.h"

#include <cassert>
#include <map>

using namespace enerj;
using namespace enerj::analysis;
using namespace enerj::analysis::opt;
using isa::Opcode;

namespace {

bool isPreciseFlat(unsigned Flat) {
  return (Flat % isa::NumIntRegs) < isa::FirstApproxReg;
}

/// Writes register operand \p UseIdx of \p I (indexed as
/// registerOperands() reports uses) to \p NewIndex.
void setUseReg(isa::Instruction &I, size_t UseIdx, unsigned NewIndex) {
  switch (I.Op) {
  case Opcode::Sw:
  case Opcode::Fsw:
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Ble:
  case Opcode::Fbeq:
  case Opcode::Fbne:
  case Opcode::Fblt:
  case Opcode::Fble:
    // These read Rd (value/left operand) then Ra.
    (UseIdx == 0 ? I.Rd : I.Ra) = NewIndex;
    break;
  default:
    (UseIdx == 0 ? I.Ra : I.Rb) = NewIndex;
    break;
  }
}

isa::Instruction makeMove(bool Fp, unsigned DestIndex, unsigned SrcIndex,
                          int Line) {
  isa::Instruction I;
  I.Op = Fp ? Opcode::Fmv : Opcode::Mv;
  I.Rd = DestIndex;
  I.Ra = SrcIndex;
  I.Line = Line;
  return I;
}

struct SsaContext {
  OptLiveness Live;
  DomTree Tree;
  SsaForm Ssa;

  // Unpruned SSA: the passes' block-entry invariants describe *every*
  // precise register, so EntryDef must be the true reaching definition
  // even for registers dead at the block (see buildSsa).
  explicit SsaContext(const OptProgram &P)
      : Live(computeLiveness(P)), Tree(computeDomTree(P)),
        Ssa(buildSsa(P, Tree, Live, /*Pruned=*/false)) {}
};

//===----------------------------------------------------------------------===//
// Constant propagation (sparse, over the SSA overlay)
//===----------------------------------------------------------------------===//

struct Lat {
  enum K : uint8_t { Top, Const, Nac } Kind = Top;
  uint64_t Bits = 0;

  static Lat nac() { return {Nac, 0}; }
  static Lat constant(uint64_t Bits) { return {Const, Bits}; }
  bool operator==(const Lat &O) const {
    return Kind == O.Kind && (Kind != Const || Bits == O.Bits);
  }
};

Lat join(Lat A, Lat B) {
  if (A.Kind == Lat::Top)
    return B;
  if (B.Kind == Lat::Top)
    return A;
  if (A.Kind == Lat::Nac || B.Kind == Lat::Nac || A.Bits != B.Bits)
    return Lat::nac();
  return A;
}

PassOutcome runConstProp(OptProgram &P) {
  PassOutcome Out;
  SsaContext C(P);
  const SsaForm &S = C.Ssa;

  std::vector<Lat> Val(S.Defs.size());
  // Entry defs: both files are zero-initialized, but only precise
  // registers participate (tracking approximate values would tempt the
  // pass into folding `.a` dataflow, which the policy forbids).
  for (unsigned Reg = 0; Reg < NumFlatRegs; ++Reg)
    Val[Reg] = isPreciseFlat(Reg) ? Lat::constant(0) : Lat::nac();

  auto Eval = [&](unsigned Id) -> Lat {
    const SsaForm::DefSite &Site = S.Defs[Id];
    if (Site.K == SsaForm::DefSite::Phi) {
      Lat Merged;
      for (unsigned Arg : S.PhiArgs[Id])
        if (Arg != InvalidId)
          Merged = join(Merged, Val[Arg]);
      return Merged;
    }
    assert(Site.K == SsaForm::DefSite::Instr);
    const isa::Instruction &I = P.Blocks[Site.Block].Body[Site.Index];
    if (I.Approx || !isPreciseFlat(Site.Reg))
      return Lat::nac();
    const std::array<unsigned, 2> &Uses = S.InstrUses[Site.Block][Site.Index];
    auto Use = [&](unsigned Which) { return Val[Uses[Which]]; };
    switch (I.Op) {
    case Opcode::Li:
      return Lat::constant(toBits(I.Imm));
    case Opcode::Lfi:
      return Lat::constant(toBits(I.FpImm));
    case Opcode::Mv:
    case Opcode::Fmv:
      return Use(0);
    case Opcode::Addi: {
      Lat A = Use(0);
      if (A.Kind != Lat::Const)
        return A;
      return Lat::constant(*foldPreciseOp(
          Opcode::Add, {A.Bits, toBits(I.Imm)}));
    }
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::Seq:
    case Opcode::Sne:
    case Opcode::Slt:
    case Opcode::Sle:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Fadd:
    case Opcode::Fsub:
    case Opcode::Fmul:
    case Opcode::Fdiv: {
      Lat A = Use(0), B = Use(1);
      if (A.Kind == Lat::Nac || B.Kind == Lat::Nac)
        return Lat::nac();
      if (A.Kind == Lat::Top || B.Kind == Lat::Top)
        return {};
      auto Folded = foldPreciseOp(I.Op, {A.Bits, B.Bits});
      return Folded ? Lat::constant(*Folded) : Lat::nac();
    }
    case Opcode::Cvt:
    case Opcode::Cvti: {
      Lat A = Use(0);
      if (A.Kind != Lat::Const)
        return A;
      return Lat::constant(*foldPreciseOp(I.Op, {A.Bits}));
    }
    default: // Loads, endorsements of approximate values.
      return Lat::nac();
    }
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned Id = NumFlatRegs; Id < S.Defs.size(); ++Id) {
      Lat New = Eval(Id);
      if (!(New == Val[Id])) {
        Val[Id] = New;
        Changed = true;
      }
    }
  }

  // Rewrite constant definitions to immediates and strength-reduce
  // add/sub with one constant operand to addi.
  for (unsigned Block = 0; Block < P.Blocks.size(); ++Block) {
    if (!C.Tree.reachable(Block))
      continue;
    for (size_t Index = 0; Index < P.Blocks[Block].Body.size(); ++Index) {
      unsigned Id = S.InstrDef[Block][Index];
      if (Id == InvalidId)
        continue;
      isa::Instruction &I = P.Blocks[Block].Body[Index];
      if (I.Op == Opcode::Lw || I.Op == Opcode::Flw)
        continue; // Loads keep their trap obligation.
      if (Val[Id].Kind == Lat::Const) {
        uint64_t Bits = Val[Id].Bits;
        if (isFpDest(I.Op)) {
          if (I.Op == Opcode::Lfi && toBits(I.FpImm) == Bits)
            continue;
          isa::Instruction New;
          New.Op = Opcode::Lfi;
          New.Rd = I.Rd;
          New.FpImm = fromBits<double>(Bits);
          New.Line = I.Line;
          I = New;
        } else {
          if (I.Op == Opcode::Li && toBits(I.Imm) == Bits)
            continue;
          isa::Instruction New;
          New.Op = Opcode::Li;
          New.Rd = I.Rd;
          New.Imm = fromBits<int64_t>(Bits);
          New.Line = I.Line;
          I = New;
        }
        ++Out.Rewritten;
        continue;
      }
      // Strength reduction (precise integer add/sub only).
      if (I.Approx || (I.Op != Opcode::Add && I.Op != Opcode::Sub))
        continue;
      const std::array<unsigned, 2> &Uses = S.InstrUses[Block][Index];
      Lat A = Val[Uses[0]], B = Val[Uses[1]];
      if (I.Op == Opcode::Add && A.Kind == Lat::Const) {
        I.Op = Opcode::Addi;
        I.Ra = I.Rb;
        I.Rb = 0;
        I.Imm = fromBits<int64_t>(A.Bits);
        ++Out.Rewritten;
      } else if (B.Kind == Lat::Const) {
        int64_t Imm = fromBits<int64_t>(B.Bits);
        I.Imm = I.Op == Opcode::Sub ? wrapNeg(Imm) : Imm;
        I.Op = Opcode::Addi;
        I.Rb = 0;
        ++Out.Rewritten;
      }
    }
  }

  // The invariants the rewrites relied on: every precise register that is
  // a known constant at a reachable block's entry.
  Out.Facts.resize(P.Blocks.size());
  for (unsigned Block = 0; Block < P.Blocks.size(); ++Block) {
    if (!C.Tree.reachable(Block))
      continue;
    for (unsigned Reg = 0; Reg < NumFlatRegs; ++Reg) {
      if (!isPreciseFlat(Reg))
        continue;
      unsigned Id = S.EntryDef[Block][Reg];
      if (Id != InvalidId && Val[Id].Kind == Lat::Const)
        Out.Facts[Block].push_back({Reg, true, Val[Id].Bits, 0});
    }
  }
  Out.Changed = Out.Rewritten > 0;
  return Out;
}

//===----------------------------------------------------------------------===//
// Copy propagation (precise mv/fmv chains)
//===----------------------------------------------------------------------===//

PassOutcome runCopyProp(OptProgram &P) {
  PassOutcome Out;
  SsaContext C(P);
  const SsaForm &S = C.Ssa;

  // Chase each def through precise same-file copies to its root value.
  // A use's def id is always smaller than the using instruction's def id
  // (definitions dominate uses), so one forward sweep suffices.
  std::vector<unsigned> Root(S.Defs.size());
  for (unsigned Id = 0; Id < S.Defs.size(); ++Id) {
    Root[Id] = Id;
    const SsaForm::DefSite &Site = S.Defs[Id];
    if (Site.K != SsaForm::DefSite::Instr)
      continue;
    const isa::Instruction &I = P.Blocks[Site.Block].Body[Site.Index];
    if ((I.Op != Opcode::Mv && I.Op != Opcode::Fmv) || I.Approx)
      continue;
    unsigned SrcFlat = (I.Op == Opcode::Fmv ? isa::NumIntRegs : 0) + I.Ra;
    if (!isPreciseFlat(Site.Reg) || !isPreciseFlat(SrcFlat))
      continue;
    unsigned Src = S.InstrUses[Site.Block][Site.Index][0];
    assert(Src < Id && "SSA use does not precede its def");
    Root[Id] = Root[Src];
  }

  std::optional<RegRef> Def;
  std::vector<RegRef> Uses;
  for (unsigned Block = 0; Block < P.Blocks.size(); ++Block) {
    if (!C.Tree.reachable(Block))
      continue;
    std::array<unsigned, NumFlatRegs> CurDef = S.EntryDef[Block];
    auto RewriteUse = [&](isa::Instruction &I, size_t UseIdx, unsigned UseId,
                          const RegRef &Use) {
      unsigned RootId = Root[UseId];
      if (RootId == UseId)
        return;
      unsigned Source = S.Defs[RootId].Reg;
      if (!isPreciseFlat(Source) || !isPreciseFlat(Use.flat()))
        return;
      if ((Source >= isa::NumIntRegs) != Use.IsFp)
        return;
      if (Source == Use.flat() || CurDef[Source] != RootId)
        return; // The root's register no longer holds the root value.
      setUseReg(I, UseIdx, Source % isa::NumIntRegs);
      ++Out.Rewritten;
    };
    OptBlock &B = P.Blocks[Block];
    for (size_t Index = 0; Index < B.Body.size(); ++Index) {
      registerOperands(B.Body[Index], Def, Uses);
      for (size_t UseIdx = 0; UseIdx < Uses.size(); ++UseIdx)
        RewriteUse(B.Body[Index], UseIdx,
                   S.InstrUses[Block][Index][UseIdx], Uses[UseIdx]);
      unsigned Id = S.InstrDef[Block][Index];
      if (Id != InvalidId)
        CurDef[S.Defs[Id].Reg] = Id;
    }
    if (B.Term) {
      registerOperands(*B.Term, Def, Uses);
      for (size_t UseIdx = 0; UseIdx < Uses.size(); ++UseIdx)
        RewriteUse(*B.Term, UseIdx, S.TermUses[Block][UseIdx],
                   Uses[UseIdx]);
    }
  }

  // Invariants: precise registers whose block-entry defs share a root
  // hold the same value there.
  Out.Facts.resize(P.Blocks.size());
  for (unsigned Block = 0; Block < P.Blocks.size(); ++Block) {
    if (!C.Tree.reachable(Block))
      continue;
    std::map<unsigned, unsigned> Rep; // root id -> representative reg
    for (unsigned Reg = 0; Reg < NumFlatRegs; ++Reg) {
      if (!isPreciseFlat(Reg) || S.EntryDef[Block][Reg] == InvalidId)
        continue;
      unsigned RootId = Root[S.EntryDef[Block][Reg]];
      auto [It, Inserted] = Rep.emplace(RootId, Reg);
      if (!Inserted)
        Out.Facts[Block].push_back({Reg, false, 0, It->second});
    }
  }
  Out.Changed = Out.Rewritten > 0;
  return Out;
}

//===----------------------------------------------------------------------===//
// Local value numbering (CSE) and redundant-endorse elimination
//===----------------------------------------------------------------------===//

/// Shared local walk: per reachable block, executes the body through the
/// validator's own symbolic semantics and replaces an instruction whose
/// value some precise register already holds with a register move.
/// \p EndorseOnly restricts the rewrite to endorse/fendorse (the
/// redundant-endorse pass); otherwise any precise pure computation,
/// precise load, or precise div/rem qualifies — for the trapping ones,
/// the dropped obligation is a duplicate of the first occurrence's,
/// which the validator's event matcher accepts.
PassOutcome runLocalValueNumbering(OptProgram &P, bool EndorseOnly) {
  PassOutcome Out;
  DomTree Tree = computeDomTree(P);

  for (unsigned Block = 0; Block < P.Blocks.size(); ++Block) {
    if (!Tree.reachable(Block))
      continue;
    TermTable Terms;
    SymState St;
    for (unsigned Reg = 0; Reg < NumFlatRegs; ++Reg)
      St.Reg[Reg] = Terms.mkVar();
    St.PreciseMem = Terms.mkVar();
    St.ApproxMem = Terms.mkVar();

    std::map<unsigned, unsigned> Avail; // value term -> flat register
    std::optional<RegRef> Def;
    std::vector<RegRef> Uses;
    for (isa::Instruction &I : P.Blocks[Block].Body) {
      registerOperands(I, Def, Uses);
      stepSymbolic(Terms, St, I, nullptr);
      if (!Def || !isPreciseFlat(Def->flat()))
        continue;
      unsigned DestFlat = Def->flat();
      unsigned Term = St.Reg[DestFlat];

      bool IsEndorse = I.Op == Opcode::Endorse || I.Op == Opcode::Fendorse;
      bool Eligible;
      if (EndorseOnly) {
        Eligible = IsEndorse;
      } else {
        bool Materialization = I.Op == Opcode::Li || I.Op == Opcode::Lfi ||
                               I.Op == Opcode::Mv || I.Op == Opcode::Fmv;
        // Endorsements are left to the dedicated redundant-endorse
        // pass so the per-pass report attributes them correctly.
        Eligible = !I.Approx && !Materialization && !IsEndorse &&
                   (isPureOp(I) || I.Op == Opcode::Lw ||
                    I.Op == Opcode::Flw || I.Op == Opcode::Div ||
                    I.Op == Opcode::Rem);
      }

      auto It = Avail.find(Term);
      bool Hit = It != Avail.end() && It->second != DestFlat &&
                 St.Reg[It->second] == Term &&
                 (It->second >= isa::NumIntRegs) == Def->IsFp;
      if (Eligible && Hit) {
        I = makeMove(Def->IsFp, DestFlat % isa::NumIntRegs,
                     It->second % isa::NumIntRegs, I.Line);
        ++Out.Rewritten;
      } else if (It == Avail.end()) {
        Avail.emplace(Term, DestFlat);
      } else if (St.Reg[It->second] != Term) {
        It->second = DestFlat; // Stale entry: this register is the live copy.
      }
    }
  }
  Out.Changed = Out.Rewritten > 0;
  return Out;
}

//===----------------------------------------------------------------------===//
// Dead-code elimination
//===----------------------------------------------------------------------===//

PassOutcome runDce(OptProgram &P) {
  PassOutcome Out;
  bool Any = true;
  while (Any) {
    Any = false;
    OptLiveness Live = computeLiveness(P);
    std::optional<RegRef> Def;
    std::vector<RegRef> Uses;
    for (unsigned Block = 0; Block < P.Blocks.size(); ++Block) {
      OptBlock &B = P.Blocks[Block];
      BitVec Live_ = Live.LiveOut[Block];
      if (B.Term) {
        registerOperands(*B.Term, Def, Uses);
        for (const RegRef &Use : Uses)
          Live_.set(Use.flat());
      }
      std::vector<bool> Keep(B.Body.size(), true);
      unsigned RemovedHere = 0;
      for (size_t Index = B.Body.size(); Index-- > 0;) {
        registerOperands(B.Body[Index], Def, Uses);
        if (Def && !Live_.test(Def->flat()) && isPureOp(B.Body[Index])) {
          Keep[Index] = false;
          ++RemovedHere;
          ++Out.Removed;
          Any = true;
          continue; // Its uses generate no liveness.
        }
        if (Def)
          Live_.clear(Def->flat());
        for (const RegRef &Use : Uses)
          Live_.set(Use.flat());
      }
      if (RemovedHere) {
        std::vector<isa::Instruction> NewBody;
        NewBody.reserve(B.Body.size());
        for (size_t Index = 0; Index < B.Body.size(); ++Index)
          if (Keep[Index])
            NewBody.push_back(B.Body[Index]);
        B.Body = std::move(NewBody);
      }
    }
  }
  Out.Changed = Out.Removed > 0;
  return Out;
}

} // namespace

const char *enerj::analysis::opt::passName(PassKind Kind) {
  switch (Kind) {
  case PassKind::ConstProp:
    return "constprop";
  case PassKind::CopyProp:
    return "copyprop";
  case PassKind::Cse:
    return "cse";
  case PassKind::EndorseElim:
    return "endorse-elim";
  case PassKind::Dce:
    return "dce";
  }
  return "?";
}

std::vector<PassKind> enerj::analysis::opt::defaultPasses() {
  return {PassKind::ConstProp, PassKind::CopyProp, PassKind::Cse,
          PassKind::EndorseElim, PassKind::Dce};
}

bool enerj::analysis::opt::parsePassList(const std::string &Spec,
                                         std::vector<PassKind> &Out,
                                         std::string &Error) {
  Out.clear();
  size_t Begin = 0;
  while (Begin <= Spec.size()) {
    size_t End = Spec.find(',', Begin);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Name = Spec.substr(Begin, End - Begin);
    bool Found = false;
    for (PassKind Kind :
         {PassKind::ConstProp, PassKind::CopyProp, PassKind::Cse,
          PassKind::EndorseElim, PassKind::Dce})
      if (Name == passName(Kind)) {
        Out.push_back(Kind);
        Found = true;
      }
    if (!Found) {
      Error = "unknown pass '" + Name + "'";
      return false;
    }
    Begin = End + 1;
  }
  return true;
}

PassOutcome enerj::analysis::opt::runPass(OptProgram &Program,
                                          PassKind Kind) {
  switch (Kind) {
  case PassKind::ConstProp:
    return runConstProp(Program);
  case PassKind::CopyProp:
    return runCopyProp(Program);
  case PassKind::Cse:
    return runLocalValueNumbering(Program, /*EndorseOnly=*/false);
  case PassKind::EndorseElim:
    return runLocalValueNumbering(Program, /*EndorseOnly=*/true);
  case PassKind::Dce:
    return runDce(Program);
  }
  return {};
}
