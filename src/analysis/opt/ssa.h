//===- analysis/opt/ssa.h - Dominators, phi placement, SSA -----*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SSA construction over block CFGs: an iterative dominator tree
/// (Cooper/Harvey/Kennedy), dominance frontiers, liveness-pruned phi
/// placement, and a renaming pass producing a use/def-indexed SSA view
/// of an OptProgram. The dominator-tree and phi-placement pieces are
/// templates over the Graph concept of analysis/dataflow.h, so they run
/// unchanged on the existing IsaCfg (how the unit tests exercise them)
/// and on the optimizer's OptProgram.
///
/// SSA here is an *analysis* overlay: phi nodes are never materialized
/// as instructions. The sparse passes (constant and copy propagation)
/// read the overlay and rewrite the underlying instructions in place.
///
/// Virtual entry definitions: the machine zero-initializes both register
/// files, so every register has an entry definition whose value is an
/// architected constant 0 — which is also why the conventional zero
/// register r0 participates in constant propagation.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_ANALYSIS_OPT_SSA_H
#define ENERJ_ANALYSIS_OPT_SSA_H

#include "analysis/dataflow.h"
#include "analysis/isa_flow.h"
#include "analysis/opt/ir.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace enerj {
namespace analysis {
namespace opt {

inline constexpr unsigned NumFlatRegs = isa::NumIntRegs + isa::NumFpRegs;
inline constexpr unsigned InvalidId = std::numeric_limits<unsigned>::max();

/// Immediate dominators over a Graph (entry = block 0). Unreachable
/// blocks have Idom == InvalidId and are excluded from the tree.
struct DomTree {
  std::vector<unsigned> Idom;     ///< Idom[entry] == entry.
  std::vector<unsigned> RpoIndex; ///< Reverse-postorder number.
  std::vector<unsigned> RpoOrder; ///< Reachable blocks in RPO.
  std::vector<std::vector<unsigned>> Children;

  [[nodiscard]] bool reachable(unsigned Block) const {
    return Idom[Block] != InvalidId;
  }
  /// True when \p A dominates \p B (reflexive).
  [[nodiscard]] bool dominates(unsigned A, unsigned B) const {
    while (B != A && B != Idom[B])
      B = Idom[B];
    return B == A;
  }
};

template <typename Graph> DomTree computeDomTree(const Graph &G) {
  unsigned N = G.blockCount();
  DomTree T;
  T.Idom.assign(N, InvalidId);
  T.RpoIndex.assign(N, InvalidId);
  T.Children.resize(N);
  if (N == 0)
    return T;

  // Iterative DFS postorder from the entry, then reverse.
  std::vector<unsigned> Post;
  {
    std::vector<uint8_t> State(N, 0);
    std::vector<std::pair<unsigned, size_t>> Stack{{0u, 0}};
    State[0] = 1;
    while (!Stack.empty()) {
      auto &[Block, Next] = Stack.back();
      if (Next < G.succs(Block).size()) {
        unsigned Succ = G.succs(Block)[Next++];
        if (!State[Succ]) {
          State[Succ] = 1;
          Stack.push_back({Succ, 0});
        }
      } else {
        Post.push_back(Block);
        Stack.pop_back();
      }
    }
  }
  T.RpoOrder.assign(Post.rbegin(), Post.rend());
  for (unsigned Index = 0; Index < T.RpoOrder.size(); ++Index)
    T.RpoIndex[T.RpoOrder[Index]] = Index;

  auto Intersect = [&](unsigned A, unsigned B) {
    while (A != B) {
      while (T.RpoIndex[A] > T.RpoIndex[B])
        A = T.Idom[A];
      while (T.RpoIndex[B] > T.RpoIndex[A])
        B = T.Idom[B];
    }
    return A;
  };

  T.Idom[0] = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned Block : T.RpoOrder) {
      if (Block == 0)
        continue;
      unsigned NewIdom = InvalidId;
      for (unsigned Pred : G.preds(Block)) {
        if (T.Idom[Pred] == InvalidId)
          continue; // Unreachable or not yet processed.
        NewIdom = NewIdom == InvalidId ? Pred : Intersect(NewIdom, Pred);
      }
      if (NewIdom != InvalidId && T.Idom[Block] != NewIdom) {
        T.Idom[Block] = NewIdom;
        Changed = true;
      }
    }
  }
  for (unsigned Block = 0; Block < N; ++Block)
    if (Block != 0 && T.Idom[Block] != InvalidId)
      T.Children[T.Idom[Block]].push_back(Block);
  return T;
}

/// Dominance frontiers (Cooper/Harvey/Kennedy's runner walk).
template <typename Graph>
std::vector<std::vector<unsigned>> dominanceFrontiers(const Graph &G,
                                                      const DomTree &T) {
  std::vector<std::vector<unsigned>> Df(G.blockCount());
  for (unsigned Block = 0; Block < G.blockCount(); ++Block) {
    if (!T.reachable(Block) || G.preds(Block).size() < 2)
      continue;
    for (unsigned Pred : G.preds(Block)) {
      if (!T.reachable(Pred))
        continue;
      unsigned Runner = Pred;
      while (Runner != T.Idom[Block]) {
        auto &Row = Df[Runner];
        if (std::find(Row.begin(), Row.end(), Block) == Row.end())
          Row.push_back(Block);
        Runner = T.Idom[Runner];
      }
    }
  }
  return Df;
}

/// Pruned phi placement for one variable: blocks needing a phi given the
/// variable's definition blocks and its block-entry liveness. \p LiveIn
/// may be empty to request unpruned (minimal-SSA) placement.
template <typename Graph>
std::vector<unsigned>
placePhis(const Graph &G, const DomTree &T,
          const std::vector<std::vector<unsigned>> &Df,
          std::vector<unsigned> DefBlocks,
          const std::vector<bool> &LiveIn) {
  std::vector<bool> HasPhi(G.blockCount(), false);
  std::vector<bool> InWork(G.blockCount(), false);
  std::vector<unsigned> Work;
  for (unsigned Block : DefBlocks)
    if (T.reachable(Block) && !InWork[Block]) {
      InWork[Block] = true;
      Work.push_back(Block);
    }
  std::vector<unsigned> Out;
  while (!Work.empty()) {
    unsigned Block = Work.back();
    Work.pop_back();
    for (unsigned Frontier : Df[Block]) {
      if (HasPhi[Frontier])
        continue;
      if (!LiveIn.empty() && !LiveIn[Frontier])
        continue; // Pruned: dead at the merge, no phi needed.
      HasPhi[Frontier] = true;
      Out.push_back(Frontier);
      if (!InWork[Frontier]) {
        InWork[Frontier] = true;
        Work.push_back(Frontier);
      }
    }
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

/// Backward register liveness over an OptProgram (boundary: everything
/// is live at the synthetic exit — the machine state is observable).
struct OptLiveness {
  std::vector<BitVec> LiveIn;  ///< At block entry.
  std::vector<BitVec> LiveOut; ///< After the terminator.
};

OptLiveness computeLiveness(const OptProgram &Program);

/// The SSA overlay of an OptProgram.
struct SsaForm {
  struct DefSite {
    enum Kind { Entry, Instr, Phi } K = Entry;
    unsigned Block = 0;
    unsigned Index = 0; ///< Body index for Instr defs.
    unsigned Reg = 0;   ///< Flattened register (RegRef::flat()).
  };

  std::vector<DefSite> Defs; ///< Ids 0..NumFlatRegs-1 are entry defs.
  /// Per def id: phi arguments aligned with preds(Block); empty for
  /// non-phi defs. An InvalidId argument marks an unreachable pred edge.
  std::vector<std::vector<unsigned>> PhiArgs;
  /// Per block: (flat reg, phi def id) pairs.
  std::vector<std::vector<std::pair<unsigned, unsigned>>> BlockPhis;
  /// Per block: reaching def per flat register at block entry, *after*
  /// the block's phis. InvalidId in unreachable blocks.
  std::vector<std::array<unsigned, NumFlatRegs>> EntryDef;
  /// Per block, per body instruction: def id (InvalidId if no def).
  std::vector<std::vector<unsigned>> InstrDef;
  /// Per block, per body instruction: def ids of the uses, aligned with
  /// registerOperands() order.
  std::vector<std::vector<std::array<unsigned, 2>>> InstrUses;
  /// Per block: def ids of the terminator's uses.
  std::vector<std::array<unsigned, 2>> TermUses;
};

/// Builds the SSA overlay. With \p Pruned, phi placement is restricted
/// to live-in registers (smaller, but EntryDef is only meaningful for
/// live registers); unpruned (minimal) SSA makes EntryDef the true
/// reaching definition of *every* register at *every* reachable block —
/// which is what the optimizer passes need to emit correct block-entry
/// invariants for the validator.
SsaForm buildSsa(const OptProgram &Program, const DomTree &T,
                 const OptLiveness &Live, bool Pruned = true);

} // namespace opt
} // namespace analysis
} // namespace enerj

#endif // ENERJ_ANALYSIS_OPT_SSA_H
