//===- analysis/opt/ssa.cpp - Liveness and SSA renaming -------------------===//

#include "analysis/opt/ssa.h"

#include <cassert>

using namespace enerj;
using namespace enerj::analysis;
using namespace enerj::analysis::opt;

namespace {

struct OptLivenessDomain {
  using Value = BitVec;

  const OptProgram &P;

  Value init() const { return BitVec(NumFlatRegs); }
  Value boundary() const {
    BitVec All(NumFlatRegs);
    All.setAll();
    return All;
  }
  bool join(Value &Into, const Value &From) const {
    return Into.uniteWith(From);
  }
  Value transfer(unsigned Block, const Value &LiveOut) const {
    BitVec Live = LiveOut;
    if (Block == P.exitId())
      return Live;
    const OptBlock &B = P.Blocks[Block];
    std::optional<RegRef> Def;
    std::vector<RegRef> Uses;
    auto Step = [&](const isa::Instruction &I) {
      registerOperands(I, Def, Uses);
      if (Def)
        Live.clear(Def->flat());
      for (const RegRef &Use : Uses)
        Live.set(Use.flat());
    };
    if (B.Term)
      Step(*B.Term);
    for (size_t Index = B.Body.size(); Index-- > 0;)
      Step(B.Body[Index]);
    return Live;
  }
};

} // namespace

OptLiveness enerj::analysis::opt::computeLiveness(const OptProgram &Program) {
  OptLivenessDomain Dom{Program};
  DataflowResult<OptLivenessDomain> R =
      solveDataflow(Program, Direction::Backward, Dom);
  OptLiveness Out;
  Out.LiveIn = std::move(R.In);
  Out.LiveOut = std::move(R.Out);
  return Out;
}

SsaForm enerj::analysis::opt::buildSsa(const OptProgram &Program,
                                       const DomTree &T,
                                       const OptLiveness &Live,
                                       bool Pruned) {
  unsigned N = Program.blockCount();
  SsaForm S;
  S.BlockPhis.resize(N);
  S.EntryDef.resize(N);
  for (auto &Row : S.EntryDef)
    Row.fill(InvalidId);
  S.InstrDef.resize(N);
  S.InstrUses.resize(N);
  S.TermUses.assign(N, {InvalidId, InvalidId});

  // Entry defs: the machine zero-initializes both register files, so
  // every register carries an architected def at the virtual entry.
  for (unsigned Reg = 0; Reg < NumFlatRegs; ++Reg) {
    S.Defs.push_back({SsaForm::DefSite::Entry, 0, 0, Reg});
    S.PhiArgs.emplace_back();
  }

  // Definition blocks per register; block 0 counts for every register
  // (the virtual entry def lives there).
  std::vector<std::vector<unsigned>> DefBlocks(NumFlatRegs);
  for (unsigned Reg = 0; Reg < NumFlatRegs; ++Reg)
    DefBlocks[Reg].push_back(0);
  std::optional<RegRef> Def;
  std::vector<RegRef> Uses;
  for (unsigned Block = 0; Block < Program.Blocks.size(); ++Block)
    for (const isa::Instruction &I : Program.Blocks[Block].Body) {
      registerOperands(I, Def, Uses);
      if (Def)
        DefBlocks[Def->flat()].push_back(Block);
    }

  // Pruned phi placement.
  std::vector<std::vector<unsigned>> Df = dominanceFrontiers(Program, T);
  for (unsigned Reg = 0; Reg < NumFlatRegs; ++Reg) {
    std::vector<bool> LiveIn;
    if (Pruned) {
      LiveIn.assign(N, false);
      for (unsigned Block = 0; Block < N; ++Block)
        LiveIn[Block] = Live.LiveIn[Block].test(Reg);
    }
    for (unsigned Block :
         placePhis(Program, T, Df, DefBlocks[Reg], LiveIn)) {
      unsigned Id = static_cast<unsigned>(S.Defs.size());
      S.Defs.push_back({SsaForm::DefSite::Phi, Block, 0, Reg});
      S.PhiArgs.emplace_back(Program.preds(Block).size(), InvalidId);
      S.BlockPhis[Block].push_back({Reg, Id});
    }
  }

  // Renaming: DFS over the dominator tree with per-register def stacks.
  std::vector<std::vector<unsigned>> Stack(NumFlatRegs);
  for (unsigned Reg = 0; Reg < NumFlatRegs; ++Reg)
    Stack[Reg].push_back(Reg); // The entry def.

  struct Frame {
    unsigned Block;
    size_t NextChild = 0;
    std::vector<unsigned> Pushed; ///< Registers pushed, for unwinding.
  };

  auto PredIndex = [&](unsigned Succ, unsigned Pred) -> unsigned {
    const std::vector<unsigned> &Preds = Program.preds(Succ);
    for (unsigned Index = 0; Index < Preds.size(); ++Index)
      if (Preds[Index] == Pred)
        return Index;
    assert(false && "pred edge missing");
    return InvalidId;
  };

  std::vector<Frame> Dfs;
  auto Enter = [&](unsigned Block) {
    Frame F{Block};
    if (Block != Program.exitId()) {
      const OptBlock &B = Program.Blocks[Block];
      for (auto &[Reg, Id] : S.BlockPhis[Block]) {
        Stack[Reg].push_back(Id);
        F.Pushed.push_back(Reg);
      }
      for (unsigned Reg = 0; Reg < NumFlatRegs; ++Reg)
        S.EntryDef[Block][Reg] = Stack[Reg].back();
      S.InstrDef[Block].assign(B.Body.size(), InvalidId);
      S.InstrUses[Block].assign(B.Body.size(), {InvalidId, InvalidId});
      for (size_t Index = 0; Index < B.Body.size(); ++Index) {
        registerOperands(B.Body[Index], Def, Uses);
        for (size_t Use = 0; Use < Uses.size() && Use < 2; ++Use)
          S.InstrUses[Block][Index][Use] = Stack[Uses[Use].flat()].back();
        if (Def) {
          unsigned Id = static_cast<unsigned>(S.Defs.size());
          S.Defs.push_back({SsaForm::DefSite::Instr, Block,
                            static_cast<unsigned>(Index), Def->flat()});
          S.PhiArgs.emplace_back();
          Stack[Def->flat()].push_back(Id);
          F.Pushed.push_back(Def->flat());
          S.InstrDef[Block][Index] = Id;
        }
      }
      if (B.Term) {
        registerOperands(*B.Term, Def, Uses);
        for (size_t Use = 0; Use < Uses.size() && Use < 2; ++Use)
          S.TermUses[Block][Use] = Stack[Uses[Use].flat()].back();
      }
      // Feed this block's exit values into successors' phis.
      for (unsigned Succ : Program.Blocks[Block].Succs) {
        if (Succ == Program.exitId())
          continue;
        unsigned Slot = PredIndex(Succ, Block);
        for (auto &[Reg, Id] : S.BlockPhis[Succ])
          S.PhiArgs[Id][Slot] = Stack[Reg].back();
      }
    }
    Dfs.push_back(std::move(F));
  };

  Enter(0);
  while (!Dfs.empty()) {
    Frame &F = Dfs.back();
    if (F.NextChild < T.Children[F.Block].size()) {
      Enter(T.Children[F.Block][F.NextChild++]);
      continue;
    }
    for (auto Reg = F.Pushed.rbegin(); Reg != F.Pushed.rend(); ++Reg)
      Stack[*Reg].pop_back();
    Dfs.pop_back();
  }
  return S;
}
