//===- analysis/opt/ir.cpp - Block-structured optimizer IR ----------------===//

#include "analysis/opt/ir.h"

#include "analysis/isa_cfg.h"

#include <algorithm>
#include <cassert>

using namespace enerj;
using namespace enerj::analysis;
using namespace enerj::analysis::opt;

const std::vector<unsigned> OptProgram::Empty;

size_t OptProgram::opCount() const {
  size_t Count = 0;
  for (const OptBlock &B : Blocks)
    Count += B.Body.size() + (B.Term ? 1 : 0);
  return Count;
}

void OptProgram::recomputePreds() {
  for (OptBlock &B : Blocks)
    B.Preds.clear();
  ExitPreds.clear();
  for (unsigned Id = 0; Id < Blocks.size(); ++Id)
    for (unsigned Succ : Blocks[Id].Succs) {
      if (Succ == exitId())
        ExitPreds.push_back(Id);
      else
        Blocks[Succ].Preds.push_back(Id);
    }
}

bool enerj::analysis::opt::isPureOp(const isa::Instruction &I) {
  using isa::Opcode;
  switch (I.Op) {
  case Opcode::Li:
  case Opcode::Lfi:
  case Opcode::Mv:
  case Opcode::Fmv:
  case Opcode::Endorse:
  case Opcode::Fendorse:
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Addi:
  case Opcode::Seq:
  case Opcode::Sne:
  case Opcode::Slt:
  case Opcode::Sle:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Fadd:
  case Opcode::Fsub:
  case Opcode::Fmul:
  case Opcode::Fdiv: // Precise FP division by zero is IEEE, not a trap.
  case Opcode::Cvt:
  case Opcode::Cvti:
    return true;
  case Opcode::Div:
  case Opcode::Rem:
    // The precise variants trap on a zero divisor; the approximate ones
    // return 0 (Section 5.2) and are side-effect-free.
    return I.Approx;
  default:
    return false;
  }
}

bool enerj::analysis::opt::isFpDest(isa::Opcode Op) {
  using isa::Opcode;
  switch (Op) {
  case Opcode::Lfi:
  case Opcode::Fmv:
  case Opcode::Fendorse:
  case Opcode::Fadd:
  case Opcode::Fsub:
  case Opcode::Fmul:
  case Opcode::Fdiv:
  case Opcode::Cvt:
  case Opcode::Flw:
    return true;
  default:
    return false;
  }
}

OptProgram enerj::analysis::opt::buildOptProgram(
    const isa::IsaProgram &Program) {
  OptProgram Out;
  Out.PreciseWords = Program.PreciseWords;
  Out.ApproxWords = Program.ApproxWords;

  IsaCfg Cfg(Program);
  size_t End = Program.Instructions.size();
  Out.Blocks.resize(Cfg.blockCount());
  unsigned Exit = Out.exitId();

  auto TargetBlock = [&](int64_t Imm) -> unsigned {
    assert(Imm >= 0 && static_cast<size_t>(Imm) <= End &&
           "optimizer requires a verified program");
    if (static_cast<size_t>(Imm) == End)
      return Exit;
    return Cfg.blockContaining(static_cast<size_t>(Imm));
  };

  for (unsigned Id = 0; Id < Cfg.blockCount(); ++Id) {
    const IsaBlock &In = Cfg.block(Id);
    OptBlock &B = Out.Blocks[Id];
    size_t BodyEnd = In.End;
    bool HasTerm =
        In.End > In.Begin && endsBlock(Program.Instructions[In.End - 1].Op);
    if (HasTerm)
      --BodyEnd;
    B.Body.assign(Program.Instructions.begin() + In.Begin,
                  Program.Instructions.begin() + BodyEnd);

    unsigned Fall = Id + 1 < Cfg.blockCount() ? Id + 1 : Exit;
    if (!HasTerm) {
      B.Succs.push_back(Fall);
      continue;
    }
    const isa::Instruction &T = Program.Instructions[In.End - 1];
    B.Term = T;
    if (T.Op == isa::Opcode::Halt) {
      B.Succs.push_back(Exit);
    } else if (T.Op == isa::Opcode::Jmp) {
      B.Target = TargetBlock(T.Imm);
      B.Succs.push_back(B.Target);
    } else { // Conditional branch: taken target, then fall-through.
      B.Target = TargetBlock(T.Imm);
      B.Succs.push_back(B.Target);
      if (Fall != B.Target)
        B.Succs.push_back(Fall);
    }
  }
  Out.recomputePreds();
  return Out;
}

isa::IsaProgram enerj::analysis::opt::emitProgram(const OptProgram &Program) {
  isa::IsaProgram Out;
  Out.PreciseWords = Program.PreciseWords;
  Out.ApproxWords = Program.ApproxWords;

  // First pass: block offsets in the linearized program.
  std::vector<size_t> Offset(Program.Blocks.size() + 1, 0);
  size_t Cursor = 0;
  for (size_t Id = 0; Id < Program.Blocks.size(); ++Id) {
    Offset[Id] = Cursor;
    Cursor += Program.Blocks[Id].Body.size() +
              (Program.Blocks[Id].Term ? 1 : 0);
  }
  Offset[Program.Blocks.size()] = Cursor; // The architected exit.

  for (size_t Id = 0; Id < Program.Blocks.size(); ++Id) {
    const OptBlock &B = Program.Blocks[Id];
    Out.Instructions.insert(Out.Instructions.end(), B.Body.begin(),
                            B.Body.end());
    if (!B.Term)
      continue;
    isa::Instruction T = *B.Term;
    if (T.Op != isa::Opcode::Halt)
      T.Imm = static_cast<int64_t>(Offset[B.Target]);
    Out.Instructions.push_back(T);
  }
  return Out;
}
