//===- analysis/lint.h - The enerj-lint pass pipeline -----------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// enerj-lint: whole-program audits of how a well-typed FEnerJ program
/// *uses* approximation. The type checker guarantees safety; these passes
/// answer the paper's economy questions — where approximation is wasted,
/// over-gated, or under-used (the Table 3 annotation-effort discussion):
///
///  * **endorsement** — endorse() calls that gate nothing: the operand is
///    provably precise, the result is discarded, or the result never
///    reaches a precise use;
///  * **precision-slack** — precise locals, parameters, fields, and array
///    element types whose values never flow into a precise sink
///    (condition, subscript, precise store/argument/return). Each is a
///    suggestion to relax to @approx; suggestions form one consistent
///    set: applying all of them at once preserves well-typedness;
///  * **dead-value** — never-used locals and assignments whose value is
///    never read (liveness over the CFG of fenerj_cfg.h);
///  * **isa-flow** — the program is compiled with fenerj/codegen.h and the
///    binary is checked by the flow-sensitive ISA verifier (isa_flow.h);
///    its errors and warnings are surfaced here. Line numbers of this
///    pass refer to the generated assembly, not the FEnerJ source;
///  * **interproc-flow** — the interprocedural taint audit of
///    interproc_flow.h, run over the instantiated call graph: it
///    re-derives the non-interference guarantee as a whole-program
///    witness (errors) and flags endorse() calls that launder
///    @context-adapted approximate state into control-flow decisions
///    (warnings) — flows no per-method audit can see.
///
/// All passes run to completion and report everything they find; nothing
/// mutates the program.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_ANALYSIS_LINT_H
#define ENERJ_ANALYSIS_LINT_H

#include "fenerj/ast.h"
#include "fenerj/program.h"

#include <string>
#include <string_view>
#include <vector>

namespace enerj {
namespace analysis {

enum class LintPass {
  Endorsement,
  PrecisionSlack,
  DeadValue,
  IsaFlow,
  InterprocFlow,
};
enum class LintSeverity { Error, Warning, Suggestion };

/// Stable names used in both renderings ("endorsement", "precision-slack",
/// "dead-value", "isa-flow", "interproc-flow" / "error", "warning",
/// "suggestion").
const char *lintPassName(LintPass Pass);
const char *lintSeverityName(LintSeverity Severity);

struct LintFinding {
  LintPass Pass;
  LintSeverity Severity;
  /// FEnerJ source location; for the isa-flow pass, Line is the line of
  /// the *generated assembly* and Column is 0.
  fenerj::SourceLoc Loc;
  std::string Message;
};

/// The total order findings are reported in: (pass, line, column,
/// severity, message). The trailing severity/message tiebreak makes the
/// order — and therefore the --json rendering — bytewise deterministic
/// even when two findings share a source position.
bool lintFindingLess(const LintFinding &A, const LintFinding &B);

struct LintResult {
  std::vector<LintFinding> Findings;
  /// Whether the isa-flow pass ran (codegen handles class-free programs).
  bool IsaChecked = false;
  std::string IsaSkipReason;

  [[nodiscard]] unsigned count(LintPass Pass) const;
  [[nodiscard]] unsigned errorCount() const;
  [[nodiscard]] bool hasErrors() const { return errorCount() != 0; }
};

struct LintOptions {
  bool CheckIsa = true;
};

/// Runs every lint pass over \p Prog (which must be well typed against
/// \p Table). Findings are ordered by pass, then source position.
LintResult runLint(const fenerj::Program &Prog,
                   const fenerj::ClassTable &Table,
                   const LintOptions &Options = {});

/// Human-readable rendering, one finding per line:
///   <file>:<line>:<col>: <severity>: [<pass>] <message>
std::string renderLintText(const LintResult &Result,
                           std::string_view FileName);

/// Machine-readable rendering for CI. The schema is stable (asserted by
/// tests/analysis_lint_test.cpp):
///   {"tool":"enerj-lint","version":1,"file":...,
///    "findings":[{"pass":...,"severity":...,"line":N,"column":N,
///                 "message":...}, ...],
///    "counts":{"endorsement":N,"precision-slack":N,"dead-value":N,
///              "isa-flow":N,"interproc-flow":N},
///    "isa":{"checked":B,"skipReason":...,"errors":N}}
std::string renderLintJson(const LintResult &Result,
                           std::string_view FileName);

} // namespace analysis
} // namespace enerj

#endif // ENERJ_ANALYSIS_LINT_H
