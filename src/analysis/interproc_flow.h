//===- analysis/interproc_flow.h - Interproc non-interference audit -*-C++-*-//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interproc-flow lint pass: a whole-program taint audit over the
/// instantiated call graph (callgraph.h) and the constraint system
/// (constraints.h). It reports two things the per-method passes cannot:
///
///  * **Errors** — un-endorsed approximate data reaching a precise sink
///    (a condition, a subscript, an allocation length, a precise cast,
///    the program result) or coming to rest in declared-precise storage.
///    The type checker's non-interference guarantee (Theorem 1) says this
///    set is empty for well-typed programs; the pass re-derives that
///    emptiness as a machine-checked whole-program witness, so an error
///    here means either a checker bug or a deliberately broken input.
///
///  * **Warnings** — endorse() calls whose operand's raw taint originates
///    in @context-adapted state on an *approximate* instance and whose
///    endorsed result then steers control flow (reaches a SinkControl).
///    Each method involved type-checks in isolation: the field is
///    @context, the endorse is local, the index is precise. Only the
///    instantiated call graph shows that on an @approx receiver the
///    adapted state is approximate, and the endorsement launders it into
///    a control decision. Plain declared-@approx data that is endorsed
///    before a branch — the paper's ordinary idiom — is deliberately NOT
///    flagged; only adaptation-laundered flows are.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_ANALYSIS_INTERPROC_FLOW_H
#define ENERJ_ANALYSIS_INTERPROC_FLOW_H

#include "analysis/lint.h"
#include "fenerj/ast.h"
#include "fenerj/program.h"

#include <vector>

namespace enerj {
namespace analysis {

/// Runs the interprocedural taint audit over \p Prog (well typed against
/// \p Table) and appends its findings to \p Out. Findings are produced in
/// a deterministic order; the caller re-sorts with lintFindingLess.
void interprocFlowPass(const fenerj::Program &Prog,
                       const fenerj::ClassTable &Table,
                       std::vector<LintFinding> &Out);

} // namespace analysis
} // namespace enerj

#endif // ENERJ_ANALYSIS_INTERPROC_FLOW_H
