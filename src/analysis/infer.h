//===- analysis/infer.h - Whole-program qualifier inference -----*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Qualifier inference: given a well-typed FEnerJ program, compute the
/// maximal set of declared-@precise data declarations (fields, locals,
/// parameters, returns, array allocation sites) that can be relaxed to
/// @approx *without introducing a single new endorse()*, and estimate the
/// energy the relaxation buys under the Section 5.4 model.
///
/// The engine is the constraint system of constraints.h solved over the
/// instantiated call graph of callgraph.h: demand propagates backward
/// from precise sinks through every call edge (with `_APPROX` dispatch
/// and @Context adaptation resolved per instantiation), and a candidate
/// relaxes when nothing it feeds demands precision. The answer is a
/// consistent set — applying every suggestion at once preserves
/// well-typedness — and is the tool-side counterpart of the paper's
/// hand-annotation numbers (Figure 3): "inferred vs annotated"
/// approximability per app.
///
/// Output is deterministic to the byte: declarations are reported in
/// source order, numbers with fixed %.6f formatting, JSON with a fixed
/// key order (schema version 1, validated by tests/validate_infer_json.py).
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_ANALYSIS_INFER_H
#define ENERJ_ANALYSIS_INFER_H

#include "fenerj/ast.h"
#include "fenerj/program.h"

#include <string>
#include <vector>

namespace enerj {
namespace analysis {

/// One data declaration (primitive or primitive-array), with its declared
/// and inferred qualifiers.
struct InferredDecl {
  std::string Name;     ///< "C.f", "C.m.x", "C.m:return", "main:new[l:c]".
  std::string Kind;     ///< "field" | "param" | "return" | "local" | "alloc".
  std::string Declared; ///< "precise" | "approx" | "context" | "top".
  std::string Inferred; ///< Declared, or "approx" when relaxed.
  fenerj::SourceLoc Loc;
  bool Relaxed = false;
  unsigned Uses = 0;
};

/// Whole-program inference result for one file.
struct InferResult {
  std::string File;

  /// Data declarations in reachable code, source order (line, column,
  /// name).
  std::vector<InferredDecl> Decls;
  unsigned TotalDecls = 0;
  unsigned AnnotatedApprox = 0; ///< Declared @approx (or @context) already.
  unsigned InferredApprox = 0;  ///< Approx after relaxation.
  double AnnotatedApproxPct = 0.0;
  double InferredApproxPct = 0.0;

  /// Static energy estimate at ApproxLevel::Medium (Section 5.4):
  /// normalized whole-system energy factor, annotated vs inferred, and
  /// the saving each implies.
  double AnnotatedEnergyFactor = 1.0;
  double InferredEnergyFactor = 1.0;
  double AnnotatedSavedPct = 0.0;
  double InferredSavedPct = 0.0;

  /// Call-graph shape, for reports and the bench.
  unsigned Instances = 0;
  unsigned Edges = 0;
  unsigned Slots = 0;
  unsigned Sccs = 0;
  unsigned RecursiveSccs = 0;
  std::vector<std::string> UnreachableMethods;
};

/// Runs inference over \p Prog, which must be well typed against
/// \p Table.
InferResult inferProgram(const fenerj::Program &Prog,
                         const fenerj::ClassTable &Table,
                         std::string FileName);

/// The Figure-3-style table over several apps: one row per file with
/// "% approximable" annotated vs inferred and the energy estimates.
std::string renderInferTable(const std::vector<InferResult> &Results);

/// Per-declaration relaxation suggestions for one file
/// (--suggest-annotations): "file:line:col: relax ..." lines.
std::string renderInferSuggestions(const InferResult &Result);

/// Machine-readable rendering, schema version 1:
///   {"tool":"enerj-infer","version":1,"apps":[
///     {"file":...,"decls":{"total":N,"annotatedApprox":N,
///       "inferredApprox":N,"annotatedPct":F,"inferredPct":F},
///      "energy":{"annotatedFactor":F,"inferredFactor":F,
///        "annotatedSavedPct":F,"inferredSavedPct":F},
///      "callGraph":{"instances":N,"edges":N,"slots":N,"sccs":N,
///        "recursiveSccs":N,"unreachable":[...]},
///      "declarations":[{"name":...,"kind":...,"declared":...,
///        "inferred":...,"line":N,"column":N,"relaxed":B,"uses":N},...]}
///   ]}
/// All floats use %.6f, so the output is bytewise deterministic.
std::string renderInferJson(const std::vector<InferResult> &Results);

} // namespace analysis
} // namespace enerj

#endif // ENERJ_ANALYSIS_INFER_H
