//===- analysis/interproc_flow.cpp - Interproc non-interference audit -----===//

#include "analysis/interproc_flow.h"

#include "analysis/callgraph.h"
#include "analysis/constraints.h"

#include <string>

namespace enerj {
namespace analysis {

using namespace enerj::fenerj;

namespace {

constexpr unsigned NoSlot = ConstraintSystem::NoSlot;

/// Walks the raw-taint witness chain back to its seed.
unsigned taintSeed(const ConstraintSystem::TaintState &T, unsigned SlotId) {
  unsigned Guard = 0;
  while (T.RawFrom[SlotId] != NoSlot && T.RawFrom[SlotId] != SlotId &&
         Guard++ < 1u << 20)
    SlotId = T.RawFrom[SlotId];
  return SlotId;
}

Qual slotValueQual(const Slot &S) {
  return S.Ty.isArray() ? S.Ty.ElemQual : S.Ty.Q;
}

} // namespace

void interprocFlowPass(const Program &Prog, const ClassTable &Table,
                       std::vector<LintFinding> &Out) {
  CallGraph Graph = CallGraph::build(Prog, Table);
  ConstraintSystem CS = ConstraintSystem::build(Prog, Table, Graph);
  ConstraintSystem::TaintState Taint = CS.solveTaint();

  const std::vector<Slot> &Slots = CS.slots();

  // Errors: raw taint resting where only precise data may rest. For a
  // well-typed program this loop finds nothing (Theorem 1); its silence
  // is the whole-program witness.
  for (unsigned S = 0; S < Slots.size(); ++S) {
    if (!Taint.Raw[S])
      continue;
    const Slot &Sl = Slots[S];
    bool IsSink = Sl.K == SlotKind::SinkControl || Sl.K == SlotKind::SinkResult;
    bool IsPrecisePin =
        (Sl.K == SlotKind::Field || Sl.K == SlotKind::Param ||
         Sl.K == SlotKind::Return || Sl.K == SlotKind::Local) &&
        (Sl.Ty.isPrimitive() || Sl.Ty.isArray()) &&
        slotValueQual(Sl) == Qual::Precise;
    if (!IsSink && !IsPrecisePin)
      continue;
    const Slot &Seed = Slots[taintSeed(Taint, S)];
    Out.push_back({LintPass::InterprocFlow, LintSeverity::Error, Sl.Loc,
                   "approximate data (from " + Seed.Display + " at " +
                       Seed.Loc.str() + ") reaches " + Sl.Display +
                       " without an endorsement: the non-interference "
                       "guarantee is violated"});
  }

  // Warnings: adaptation-laundered control flows. An endorse whose raw
  // taint includes @context-adapted state on an approximate instance,
  // whose result then reaches a control sink. Only the instantiated call
  // graph can see this; every method involved is locally clean.
  for (const ConstraintSystem::TaintedEndorse &E : Taint.TaintedEndorses) {
    if (!E.ContextOrigin)
      continue;
    const Slot *ControlSink = nullptr;
    for (unsigned S : CS.reachableFrom(E.Slot))
      if (Slots[S].K == SlotKind::SinkControl) {
        ControlSink = &Slots[S];
        break;
      }
    if (!ControlSink)
      continue;
    const Slot &Seed = Slots[taintSeed(Taint, CS.feeders()[E.Slot].empty()
                                                  ? E.Slot
                                                  : CS.feeders()[E.Slot][0])];
    Out.push_back(
        {LintPass::InterprocFlow, LintSeverity::Warning, Slots[E.Slot].Loc,
         "this endorse() launders @context-adapted approximate state (" +
             Seed.Display + " at " + Seed.Loc.str() +
             ", approximate on @approx instances) into the " +
             ControlSink->Display + " at " + ControlSink->Loc.str() +
             "; no per-method audit can see this flow — verify the "
             "control decision tolerates perturbed data"});
  }
}

} // namespace analysis
} // namespace enerj
