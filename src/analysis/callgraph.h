//===- analysis/callgraph.h - FEnerJ whole-program call graph ---*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A context-instantiated call graph for FEnerJ programs: the foundation
/// of every interprocedural analysis in this repository (qualifier
/// inference, interprocedural non-interference checking).
///
/// The paper's @Context qualifier makes a context-polymorphic method
/// behave as *two* monomorphic methods — one checked with `this` precise,
/// one with `this` approximate — and the `_APPROX` overloading convention
/// (Section 2.5.2) dispatches to a different body depending on the
/// receiver's qualifier. An analysis that conflates the two instantiations
/// cannot see which body runs or what a @context field adapts to, which is
/// exactly where the non-interference theorem does its real work. So a
/// call-graph node is a MethodInstance: a method declaration *plus* the
/// qualifier of `this` (Precise or Approx). Receiver-marked methods
/// (`... precise { }` / `... approx { }`) have exactly one instantiation;
/// context-polymorphic methods have up to two, discovered on demand.
///
/// Edges are resolved per instantiation: the receiver expression's static
/// qualifier is first *substituted* (context := the caller's instantiation
/// qualifier), then the `_APPROX` overload is selected exactly as the type
/// checker and interpreter do (ClassTable::lookupMethod). Receivers whose
/// substituted qualifier is top or lost dispatch only to the polymorphic
/// variant, whose body must then be analyzed under *both* instantiations.
///
/// Recursion is summarized by Tarjan SCC condensation; the condensation's
/// reverse topological order (callees before callers) is exposed for
/// solvers that want a fast seeding order. Methods never instantiated are
/// unreachable from main and are reported for pruning.
///
/// Everything about the graph is deterministic: instances are numbered in
/// discovery order (a worklist seeded at main, visiting call sites in
/// program order), and all containers are vectors.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_ANALYSIS_CALLGRAPH_H
#define ENERJ_ANALYSIS_CALLGRAPH_H

#include "fenerj/ast.h"
#include "fenerj/program.h"

#include <string>
#include <vector>

namespace enerj {
namespace analysis {

/// One node of the call graph: a method body together with the qualifier
/// of `this` it is analyzed under. Instance 0 is always the program's
/// main expression (null Cls/Method, Ctx = Precise: main has no receiver
/// and its result is observed precisely).
struct MethodInstance {
  const fenerj::ClassDecl *Cls = nullptr;
  const fenerj::MethodDecl *Method = nullptr;
  fenerj::Qual Ctx = fenerj::Qual::Precise; ///< Precise or Approx.

  bool isMain() const { return Method == nullptr; }
  /// "main", "FloatSet.mean@approx", ...
  std::string name() const;
};

/// One resolved call edge. A single syntactic call site can produce two
/// edges from one caller instance when the substituted receiver qualifier
/// is top or lost (the callee body must be analyzed both ways).
struct CallEdge {
  unsigned Caller = 0;
  unsigned Callee = 0;
  const fenerj::MethodCallExpr *Site = nullptr;
  /// The receiver's qualifier after context substitution — what dispatch
  /// actually saw.
  fenerj::Qual ReceiverQual = fenerj::Qual::Precise;
};

/// A method of the program that no instantiation reaches from main.
struct UnreachableMethod {
  const fenerj::ClassDecl *Cls = nullptr;
  const fenerj::MethodDecl *Method = nullptr;
  std::string name() const;
};

class CallGraph {
public:
  /// Builds the instantiated call graph of \p Prog, which must be well
  /// typed against \p Table (run the type checker first; the builder is
  /// tolerant of unresolvable calls but makes no promises about them).
  static CallGraph build(const fenerj::Program &Prog,
                         const fenerj::ClassTable &Table);

  unsigned instanceCount() const {
    return static_cast<unsigned>(Instances.size());
  }
  const MethodInstance &instance(unsigned Id) const { return Instances[Id]; }

  /// The instance id of (\p Method, \p Ctx), or ~0u when that
  /// instantiation is unreachable.
  unsigned instanceId(const fenerj::MethodDecl *Method,
                      fenerj::Qual Ctx) const;

  const std::vector<CallEdge> &edges() const { return Edges; }
  /// Outgoing edge indices of one instance, in call-site program order.
  const std::vector<unsigned> &calleeEdges(unsigned Inst) const {
    return OutEdges[Inst];
  }

  /// --- SCC condensation (recursion summary). ---

  unsigned sccCount() const {
    return static_cast<unsigned>(SccMembers.size());
  }
  unsigned sccOf(unsigned Inst) const { return SccIndex[Inst]; }
  const std::vector<unsigned> &sccMembers(unsigned Scc) const {
    return SccMembers[Scc];
  }
  /// True when the SCC contains a cycle (more than one member, or one
  /// member with a self edge) — i.e. the methods in it recurse.
  bool sccIsRecursive(unsigned Scc) const { return SccRecursive[Scc]; }
  /// Instance ids ordered callees-first (reverse topological order of the
  /// condensation): a fixpoint solver seeded in this order converges in
  /// one pass on recursion-free programs.
  const std::vector<unsigned> &calleeFirstOrder() const {
    return CalleeFirst;
  }

  /// Methods with no reachable instantiation, in declaration order.
  const std::vector<UnreachableMethod> &unreachable() const {
    return Unreachable;
  }

  /// --- Shared qualifier machinery (used by the constraint builder so
  /// --- dispatch and adaptation are decided in exactly one place). ---

  /// Substitutes the instantiation qualifier for 'context'.
  static fenerj::Qual substQual(fenerj::Qual Q, fenerj::Qual Ctx);
  /// substQual over every qualifier in a type.
  static fenerj::Type substType(fenerj::Type T, fenerj::Qual Ctx);
  /// The instantiation qualifiers a callee body must be analyzed under
  /// for a receiver of (substituted) qualifier \p ReceiverQual: one
  /// concrete qualifier for precise/approx receivers, both for top/lost.
  static std::vector<fenerj::Qual> calleeContexts(const fenerj::MethodDecl &M,
                                                  fenerj::Qual ReceiverQual);

private:
  std::vector<MethodInstance> Instances;
  std::vector<CallEdge> Edges;
  std::vector<std::vector<unsigned>> OutEdges;
  std::vector<unsigned> SccIndex;
  std::vector<std::vector<unsigned>> SccMembers;
  std::vector<bool> SccRecursive;
  std::vector<unsigned> CalleeFirst;
  std::vector<UnreachableMethod> Unreachable;
};

} // namespace analysis
} // namespace enerj

#endif // ENERJ_ANALYSIS_CALLGRAPH_H
