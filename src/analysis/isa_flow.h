//===- analysis/isa_flow.h - Flow-sensitive ISA verifier --------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flow-sensitive rewrite of the ISA verifier. It layers CFG-based
/// dataflow analyses on top of the instruction-local discipline rules of
/// isa/verifier.h:
///
///  * **per-path reachability** — discipline violations inside provably
///    unreachable code are demoted to warnings (they can never execute),
///    and every unreachable block is itself reported;
///  * **branch targets against block boundaries** — any in-range target
///    is a block leader by construction; a target of exactly
///    Instructions.size() is the architected fall-off-the-end clean halt
///    (see docs/ISA.md); anything beyond stays a hard error;
///  * **dead stores** — a register write whose value is overwritten on
///    every path before being read (backward liveness; all registers are
///    considered live at program exit because the machine state is
///    observable there);
///  * **maybe-uninitialized reads** — a register read before any write on
///    some path from entry (forward may-analysis; r0/f0 are exempt, they
///    are the conventional zero registers).
///
/// Errors reject a program; warnings are lint findings (the enerj-lint
/// `isa-flow` pass surfaces both).
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_ANALYSIS_ISA_FLOW_H
#define ENERJ_ANALYSIS_ISA_FLOW_H

#include "isa/isa.h"
#include "isa/verifier.h"

#include <optional>
#include <string>
#include <vector>

namespace enerj {
namespace analysis {

enum class IsaWarningKind {
  UnreachableCode,
  UnreachableViolation, ///< A local discipline violation in dead code.
  DeadStore,
  UninitializedRead,
};

const char *isaWarningKindName(IsaWarningKind Kind);

struct IsaFlowWarning {
  IsaWarningKind Kind;
  size_t InstrIndex = 0;
  int Line = 0; ///< Assembly line of the instruction.
  std::string Message;

  [[nodiscard]] std::string str() const {
    return "line " + std::to_string(Line) + ": " + Message;
  }
};

struct IsaFlowResult {
  /// Discipline violations on some executable path; non-empty = rejected.
  std::vector<isa::VerifyError> Errors;
  std::vector<IsaFlowWarning> Warnings;

  [[nodiscard]] bool ok() const { return Errors.empty(); }
};

/// A register operand, in either file, flattened for bit-set analyses:
/// integer registers are bits [0, 32), FP registers bits [32, 64).
struct RegRef {
  bool IsFp = false;
  unsigned Index = 0;

  [[nodiscard]] unsigned flat() const {
    return (IsFp ? isa::NumIntRegs : 0) + Index;
  }
  [[nodiscard]] std::string str() const {
    return (IsFp ? "f" : "r") + std::to_string(Index);
  }
};

/// Decodes the register operands of \p I: which registers it reads
/// (\p Uses, up to two) and which it writes (\p Def). Branches and
/// stores read Rd; they define nothing.
void registerOperands(const isa::Instruction &I, std::optional<RegRef> &Def,
                      std::vector<RegRef> &Uses);

/// Runs the full flow-sensitive verification of \p Program.
IsaFlowResult verifyFlow(const isa::IsaProgram &Program);

} // namespace analysis
} // namespace enerj

#endif // ENERJ_ANALYSIS_ISA_FLOW_H
