//===- analysis/validate.h - Translation validation ------------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The translation validator for the ISA optimizer (analysis/opt/): a
/// per-block symbolic bisimulation of the original and the optimized
/// program, run after every pass. A rewrite is accepted only if the
/// validator can *prove* it preserves the machine semantics at
/// ApproxLevel::None and the approximate dataflow structure; any failure
/// rejects the rewrite, so a buggy pass degrades to a no-op instead of a
/// miscompile.
///
/// The proof obligation, per block pair (passes never change the CFG
/// skeleton, so blocks pair one-to-one):
///
///  * starting from a shared symbolic entry state, both bodies must
///    produce equal symbolic values for every register live out of the
///    block (liveness is the union over both programs; every register is
///    live at program exit);
///  * the terminators must be identical and read equal symbolic values;
///  * the sequences of memory stores must match exactly (address, value,
///    and `.a` hint), and every potentially-trapping operation of the
///    original (precise div/rem, loads, stores) must reappear in the
///    optimized block unless it is provably trap-free — a constant
///    nonzero divisor — or a duplicate of an earlier identical
///    operation in the same block (which already trapped or didn't);
///  * block-entry *invariants* claimed by a pass ("r5 holds constant 48
///    here", "r4 and r5 are equal here") are themselves verified: each
///    claim must hold in the symbolic exit state of every reachable
///    predecessor, in both programs, and against the machine's
///    zero-initialized registers at the entry block. This is what lets
///    global (SSA-based) constant and copy propagation validate with a
///    per-block checker.
///
/// Approximate operations are modeled as *uninterpreted functions*:
/// they are never constant-folded, so any rewrite that alters the
/// approximate dataflow graph — most importantly, moving an `.a` op
/// across an `endorse` — changes a symbolic value and is rejected.
/// `endorse` itself is a copy at level None; the qualifier discipline of
/// optimized output is re-checked separately by isa::verify and
/// analysis::verifyFlow in the pass pipeline.
///
/// What this does and does not prove: at ApproxLevel::None the accepted
/// program is bisimilar to the original (same traps, same stores, same
/// final register file and memory). Under approximation, deleting or
/// deduplicating instructions legitimately changes how many RNG draws
/// the fault models make, so *bit* identity cannot be promised — see
/// docs/OPTIMIZER.md for the full argument.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_ANALYSIS_VALIDATE_H
#define ENERJ_ANALYSIS_VALIDATE_H

#include "analysis/opt/ir.h"

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace enerj {
namespace analysis {

/// A hash-consed term graph over instruction semantics. Precise pure
/// ops with constant operands fold to constants using the exact machine
/// semantics (wrapping integer arithmetic, IEEE doubles, the saturating
/// cvti); approximate ops never fold. Commutative precise *integer* ops
/// canonicalize their operand order (FP is left alone: NaN payload
/// propagation is operand-order dependent on real hardware).
class TermTable {
public:
  enum class Kind { Const, Var, Op };

  struct Node {
    Kind K = Kind::Var;
    isa::Opcode Op = isa::Opcode::Halt;
    bool Approx = false;
    uint64_t Bits = 0; ///< Constant bits, or the variable's unique id.
    std::vector<unsigned> Args;
  };

  unsigned mkConst(uint64_t Bits);
  unsigned mkVar(); ///< A fresh, never-deduplicated unknown.
  /// Builds (and possibly folds) an operation node. \p Imm is folded
  /// into an extra constant argument for addi/memory offsets.
  unsigned mkOp(isa::Opcode Op, bool Approx, std::vector<unsigned> Args);

  const Node &node(unsigned Id) const { return Nodes[Id]; }
  bool isConst(unsigned Id) const {
    return Nodes[Id].K == Kind::Const;
  }
  std::optional<uint64_t> constBits(unsigned Id) const {
    if (!isConst(Id))
      return std::nullopt;
    return Nodes[Id].Bits;
  }

private:
  unsigned intern(Node N);

  std::vector<Node> Nodes;
  std::map<std::tuple<isa::Opcode, bool, uint64_t, std::vector<unsigned>>,
           unsigned>
      Interned;
  uint64_t NextVar = 0;
};

/// Symbolic machine state: one term per flattened register plus the two
/// memory versions (precise region, approximate region). Precise loads
/// depend only on the precise version — a successful approximate store
/// cannot touch the precise region — while approximate loads depend on
/// both (precise <: approx lets them read either region).
struct SymState {
  std::array<unsigned, isa::NumIntRegs + isa::NumFpRegs> Reg{};
  unsigned PreciseMem = 0;
  unsigned ApproxMem = 0;
};

/// One observable event of a block body, in order: a store, or a trap
/// obligation (an operation that can trap whose presence must be
/// preserved).
struct SymEvent {
  enum class Type { Store, TrapDiv, TrapMem };
  Type T = Type::Store;
  isa::Opcode Op = isa::Opcode::Sw;
  bool Approx = false;
  unsigned Addr = 0;  ///< Address term (Store/TrapMem).
  unsigned Value = 0; ///< Value term (Store) or divisor term (TrapDiv).

  bool operator==(const SymEvent &O) const {
    return T == O.T && Op == O.Op && Approx == O.Approx &&
           Addr == O.Addr && Value == O.Value;
  }
};

/// Folds one precise pure operation on constant bit patterns using the
/// exact machine semantics (the same folder TermTable uses); nullopt
/// when the op is not foldable or would trap (div/rem by zero). Shared
/// with the constant-propagation pass so its lattice and the validator
/// can never disagree about arithmetic.
std::optional<uint64_t> foldPreciseOp(isa::Opcode Op,
                                      const std::vector<uint64_t> &Args);

/// Executes one non-terminator instruction symbolically, updating
/// \p State and appending observable events. Shared by the validator
/// and the local value-numbering passes (CSE, endorse elimination).
void stepSymbolic(TermTable &Terms, SymState &State,
                  const isa::Instruction &I, std::vector<SymEvent> *Events);

/// A block-entry invariant claimed by a pass, in terms of the concrete
/// machine state at block entry. Only precise registers may appear.
struct EntryFact {
  unsigned Reg = 0; ///< Flattened register.
  bool IsConst = false;
  uint64_t Bits = 0;  ///< Constant value (bit pattern) when IsConst.
  unsigned Other = 0; ///< Flattened register this one equals otherwise.
};

/// Per-block invariant lists, indexed like OptProgram::Blocks.
using BlockFacts = std::vector<std::vector<EntryFact>>;

struct ValidationResult {
  bool Ok = true;
  std::string Error; ///< First obligation that failed, human-readable.
};

/// Checks that \p Optimized simulates \p Original (see file comment).
/// \p Facts are the block-entry invariants the rewrite relied on; pass
/// an empty BlockFacts when none were used.
ValidationResult validateRewrite(const opt::OptProgram &Original,
                                 const opt::OptProgram &Optimized,
                                 const BlockFacts &Facts);

} // namespace analysis
} // namespace enerj

#endif // ENERJ_ANALYSIS_VALIDATE_H
