//===- analysis/reliability/bounds.cpp - Static reliability bounds --------===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Abstract interpretation over the optimizer's block CFG. Soundness rests
// on three facts, each local enough to check here:
//
//  1. Every fault event in the machine (SRAM read upset, SRAM write
//     failure, ALU/FPU timing error, DRAM cell decay) is an independent
//     Bernoulli draw. The probability that a set of events all come out
//     clean is the product of their per-event clean probabilities, and a
//     product over a *superset* of the events that actually matter — with
//     double counting — can only be smaller. So multiplying a clean
//     factor into a value's bound at every read/op/write along its
//     dependence cone yields a lower bound on P(value bitwise-exact).
//
//  2. If every event on the reference path comes out clean, the execution
//     *is* the reference execution (induction over instructions: same
//     values in, same deterministic op, same values out). Divergence —
//     including a corrupted loop counter spinning extra iterations — thus
//     requires at least one unclean event already priced into Path or a
//     value bound.
//
//  3. The dyadic window (v ∈ 2^Lo·Z and |v| ≤ 2^Hi; Lo > Hi encodes
//     exactly {0}) describes the value in the *reference* execution, so
//     it is unaffected by fault probabilities. Its one job: prove that
//     mantissa truncation of an approximate FP op's operand is the
//     identity, in which case narrowing cannot diverge the faulty run
//     from the (never-narrowed) reference.
//
// Loops: a pass-per-iteration unrolling indexed by header entries. Each
// pass's escape states are collected (min-joined), so exits after k
// iterations are covered by pass k. Branches whose operands fold to
// reference constants have a known reference direction and flow one way;
// counted loops therefore terminate the unrolling concretely. Otherwise,
// after a grace of WidenAfter passes, widening snaps every field that
// changed between consecutive passes to its bottom (bound → 0, window →
// Top, const → unknown) — the limit of geometric decay, since a
// per-iteration factor < 1 compounds to 0 — and the loop exits through
// the fixpoint check. The check demands covering equality per field, so
// at level None (all factors exactly 1.0, bounds never change) every
// bound survives widening at exactly 1.0 with no special casing.
//
//===----------------------------------------------------------------------===//

#include "analysis/reliability/bounds.h"

#include "analysis/dataflow.h"
#include "analysis/opt/ir.h"
#include "analysis/opt/ssa.h"
#include "support/bits.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <utility>
#include <vector>

using namespace enerj;
using namespace enerj::analysis;
using namespace enerj::analysis::reliability;

namespace {

using isa::Instruction;
using isa::Opcode;
using opt::InvalidId;
using opt::NumFlatRegs;

/// Window encoding constants. A window with Lo > Hi contains only 0
/// (the grid 2^Lo·Z meets |v| ≤ 2^Hi < 2^Lo only at 0); the canonical
/// zero window uses sentinels far outside any reachable exponent so that
/// it acts as the identity under (min Lo, max Hi) joins.
constexpr int WZeroLo = 1100;
constexpr int WZeroHi = -1100;
/// FP windows outside ±2^900 degrade to Top: keeping |v| ≤ 2^901 well
/// under the overflow threshold makes every magnitude argument below
/// immune to rounding-to-infinity.
constexpr int WRange = 900;

/// The abstract value: a lower bound on P(bitwise-exact), plus the
/// dyadic window / folded constant describing the reference value.
/// Invariant for non-Top windows: v ∈ 2^Lo·Z and |v| ≤ 2^Hi.
struct ValueInfo {
  enum ConstKind : uint8_t { NotConst, ConstInt, ConstFp };
  double Bound = 1.0;
  bool Top = true; ///< Window unknown (constants may still be folded).
  int Lo = 0;
  int Hi = 0;
  ConstKind Const = NotConst;
  int64_t IVal = 0;
  double FVal = 0.0;
};

void setZeroWindow(ValueInfo &V) {
  V.Top = false;
  V.Lo = WZeroLo;
  V.Hi = WZeroHi;
}

/// Window of a nonzero integer: Lo = trailing zeros, Hi = bit length,
/// so |X| ≤ 2^Hi (in fact < 2^Hi; ≤ is all the invariant needs).
void setIntWindow(ValueInfo &V, int64_t X) {
  if (X == 0) {
    setZeroWindow(V);
    return;
  }
  uint64_t U = X < 0 ? 0ULL - static_cast<uint64_t>(X)
                     : static_cast<uint64_t>(X);
  V.Top = false;
  V.Lo = std::countr_zero(U);
  V.Hi = 64 - std::countl_zero(U);
}

/// Window of a finite double: X = ±M·2^(E-53) with M an integer in
/// [2^52, 2^53) (exact for subnormals too — scaling by a power of two
/// up to integer range is exact), so Lo = (E-53) + trailing zeros of M
/// and |X| < 2^E.
void setFpWindow(ValueInfo &V, double X) {
  if (X == 0.0) {
    setZeroWindow(V);
    return;
  }
  if (!std::isfinite(X)) {
    V.Top = true;
    return;
  }
  int E = 0;
  std::frexp(X, &E);
  auto M = static_cast<uint64_t>(std::ldexp(std::fabs(X), 53 - E));
  V.Top = false;
  V.Lo = (E - 53) + std::countr_zero(M);
  V.Hi = E;
  if (V.Lo < -WRange || V.Hi > WRange)
    V.Top = true;
}

ValueInfo constIntVal(int64_t X) {
  ValueInfo V;
  V.Const = ValueInfo::ConstInt;
  V.IVal = X;
  setIntWindow(V, X);
  return V;
}

ValueInfo constFpVal(double X) {
  ValueInfo V;
  V.Const = ValueInfo::ConstFp;
  V.FVal = X;
  setFpWindow(V, X);
  return V;
}

/// Integer-result window; normalizes any empty (Lo > Hi) window to the
/// canonical zero encoding so repeated arithmetic on zeros converges.
ValueInfo winInt(int Lo, int Hi) {
  ValueInfo V;
  if (Lo > Hi) {
    setZeroWindow(V);
    return V;
  }
  V.Top = false;
  V.Lo = Lo;
  V.Hi = Hi;
  return V;
}

/// FP-result window with the ±2^900 range guard.
ValueInfo winFp(int Lo, int Hi) {
  ValueInfo V;
  if (Lo > Hi) {
    setZeroWindow(V);
    return V;
  }
  if (Lo < -WRange || Hi > WRange)
    return V; // Top.
  V.Top = false;
  V.Lo = Lo;
  V.Hi = Hi;
  return V;
}

bool sameConst(const ValueInfo &A, const ValueInfo &B) {
  if (A.Const != B.Const)
    return false;
  switch (A.Const) {
  case ValueInfo::NotConst:
    return true;
  case ValueInfo::ConstInt:
    return A.IVal == B.IVal;
  case ValueInfo::ConstFp:
    return toBits(A.FVal) == toBits(B.FVal); // NaN-safe.
  }
  return false;
}

bool sameWindow(const ValueInfo &A, const ValueInfo &B) {
  if (A.Top != B.Top)
    return false;
  return A.Top || (A.Lo == B.Lo && A.Hi == B.Hi);
}

bool sameValue(const ValueInfo &A, const ValueInfo &B) {
  return A.Bound == B.Bound && sameWindow(A, B) && sameConst(A, B);
}

/// Lattice join: weakest bound, union window, constants only if equal.
ValueInfo joinValue(const ValueInfo &A, const ValueInfo &B) {
  ValueInfo R;
  R.Bound = std::min(A.Bound, B.Bound);
  if (sameConst(A, B) && A.Const != ValueInfo::NotConst) {
    R.Const = A.Const;
    R.IVal = A.IVal;
    R.FVal = A.FVal;
  }
  if (A.Top || B.Top)
    return R; // Window Top.
  R.Top = false;
  R.Lo = std::min(A.Lo, B.Lo);
  R.Hi = std::max(A.Hi, B.Hi);
  return R;
}

/// Per-field widening: keep what reproduced itself, bottom what changed.
/// Field granularity (bound separate from window/const) is what keeps a
/// level-None analysis of a data-dependent loop at exactly 1.0: the
/// windows churn and go Top, but the bounds never change and survive.
ValueInfo widenValue(const ValueInfo &H, const ValueInfo &L) {
  ValueInfo N = H;
  if (H.Bound != L.Bound)
    N.Bound = 0.0;
  if (!sameWindow(H, L) || !sameConst(H, L)) {
    N.Top = true;
    N.Const = ValueInfo::NotConst;
  }
  return N;
}

/// True when |X| is exactly 2^K (division by it is an exact scaling).
bool isPowerOfTwoAbs(double X, int &K) {
  if (X == 0.0 || !std::isfinite(X))
    return false;
  int E = 0;
  if (std::frexp(std::fabs(X), &E) != 0.5)
    return false;
  K = E - 1;
  return true;
}

/// Integer transfer (window/const only; the caller composes bounds).
/// Every fold replicates machine arithmetic exactly: wrapAdd & friends
/// are the machine's own helpers, and the approximate div/rem by a
/// constant zero folds to the machine's deterministic 0. A *precise*
/// div/rem whose reference divisor is zero traps the reference run,
/// making every bound vacuous (see bounds.h), so Top is fine there.
ValueInfo intArith(Opcode Op, bool Approx, const ValueInfo &A,
                   const ValueInfo &B) {
  bool CA = A.Const == ValueInfo::ConstInt;
  bool CB = B.Const == ValueInfo::ConstInt;
  bool Win = !A.Top && !B.Top;
  switch (Op) {
  case Opcode::Add:
  case Opcode::Addi:
    if (CA && CB)
      return constIntVal(wrapAdd(A.IVal, B.IVal));
    // |a+b| ≤ 2^(max+1); max+1 ≤ 62 rules out two's-complement wrap.
    if (Win && std::max(A.Hi, B.Hi) + 1 <= 62)
      return winInt(std::min(A.Lo, B.Lo), std::max(A.Hi, B.Hi) + 1);
    return {};
  case Opcode::Sub:
    if (CA && CB)
      return constIntVal(wrapSub(A.IVal, B.IVal));
    if (Win && std::max(A.Hi, B.Hi) + 1 <= 62)
      return winInt(std::min(A.Lo, B.Lo), std::max(A.Hi, B.Hi) + 1);
    return {};
  case Opcode::Mul:
    if (CA && CB)
      return constIntVal(wrapMul(A.IVal, B.IVal));
    if (Win && A.Hi + B.Hi <= 62)
      return winInt(A.Lo + B.Lo, A.Hi + B.Hi);
    return {};
  case Opcode::Div:
    if (CB && B.IVal == 0)
      return Approx ? constIntVal(0) : ValueInfo{};
    if (CA && CB)
      return constIntVal(wrapDiv(A.IVal, B.IVal));
    // |a/b| ≤ |a| (wrapDiv's MIN/-1 → MIN included: Ha ≥ 64 then), and
    // an approximate zero divisor yields 0, inside any (0, Hi) window.
    if (!A.Top)
      return winInt(0, A.Hi);
    return {};
  case Opcode::Rem:
    if (CB && B.IVal == 0)
      return Approx ? constIntVal(0) : ValueInfo{};
    if (CA && CB)
      return constIntVal(wrapRem(A.IVal, B.IVal));
    if (!B.Top)
      return winInt(0, B.Hi); // |a%b| < |b|; MIN%-1 is 0.
    if (!A.Top)
      return winInt(0, A.Hi);
    return {};
  case Opcode::Seq:
    if (CA && CB)
      return constIntVal(A.IVal == B.IVal ? 1 : 0);
    return winInt(0, 1);
  case Opcode::Sne:
    if (CA && CB)
      return constIntVal(A.IVal != B.IVal ? 1 : 0);
    return winInt(0, 1);
  case Opcode::Slt:
    if (CA && CB)
      return constIntVal(A.IVal < B.IVal ? 1 : 0);
    return winInt(0, 1);
  case Opcode::Sle:
    if (CA && CB)
      return constIntVal(A.IVal <= B.IVal ? 1 : 0);
    return winInt(0, 1);
  case Opcode::And:
    if (CA && CB)
      return constIntVal(A.IVal & B.IVal);
    return {};
  case Opcode::Or:
    if (CA && CB)
      return constIntVal(A.IVal | B.IVal);
    return {};
  default:
    return {};
  }
}

/// FP transfer. Constant folds are exact because the machine computes
/// with the same C++ doubles (and a proven-harmless narrow is the
/// identity). Window rules lean on two IEEE facts: rounding a value on
/// grid 2^g·Z lands on 2^min(g, ulp-grid)·Z ⊆ 2^g'·Z for the claimed
/// g' ≤ g, and monotone rounding keeps |round(x)| ≤ 2^Hi whenever
/// |x| ≤ 2^Hi and 2^Hi is representable (guaranteed by WRange).
ValueInfo fpArith(Opcode Op, bool Approx, const ValueInfo &A,
                  const ValueInfo &B) {
  bool CA = A.Const == ValueInfo::ConstFp;
  bool CB = B.Const == ValueInfo::ConstFp;
  bool Win = !A.Top && !B.Top;
  switch (Op) {
  case Opcode::Fadd:
    if (CA && CB)
      return constFpVal(A.FVal + B.FVal);
    if (Win)
      return winFp(std::min(A.Lo, B.Lo), std::max(A.Hi, B.Hi) + 1);
    return {};
  case Opcode::Fsub:
    if (CA && CB)
      return constFpVal(A.FVal - B.FVal);
    if (Win)
      return winFp(std::min(A.Lo, B.Lo), std::max(A.Hi, B.Hi) + 1);
    return {};
  case Opcode::Fmul:
    if (CA && CB)
      return constFpVal(A.FVal * B.FVal);
    if (Win)
      return winFp(A.Lo + B.Lo, A.Hi + B.Hi);
    return {};
  case Opcode::Fdiv: {
    // The machine's approximate divide-by-zero is a deterministic NaN at
    // every level (the check is on the instruction hint, not the level).
    if (CB && B.FVal == 0.0 && Approx)
      return constFpVal(std::numeric_limits<double>::quiet_NaN());
    if (CA && CB)
      return constFpVal(A.FVal / B.FVal);
    int K = 0;
    if (CB && isPowerOfTwoAbs(B.FVal, K) && !A.Top)
      return winFp(A.Lo - K, A.Hi - K); // Exact scaling under the guard.
    return {};
  }
  default:
    return {};
  }
}

/// The whole abstract machine state at one program point.
struct AbsState {
  bool Reach = false;
  /// P(control flow has followed the reference path to this point).
  double Path = 1.0;
  std::array<ValueInfo, NumFlatRegs> Regs;
  /// P(every cell of the region is bitwise-exact). The approximate
  /// region starts below 1.0: the whole-run DRAM residency factor is
  /// folded in once up front (the decay law composes multiplicatively
  /// over access gaps, so per-load draws telescope under it).
  double MemP = 1.0;
  double MemA = 1.0;
  /// Reference-value summaries of region contents, one per view type:
  /// a store of the *other* type poisons a view (type-punned reloads
  /// must not inherit a window). Bounds inside these are unused (pinned
  /// to 1.0); MemP/MemA carry the probability mass.
  ValueInfo PInt, PFp, AInt, AFp;
};

void joinState(AbsState &A, const AbsState &B) {
  if (!B.Reach)
    return;
  if (!A.Reach) {
    A = B;
    return;
  }
  A.Path = std::min(A.Path, B.Path);
  for (unsigned Reg = 0; Reg < NumFlatRegs; ++Reg)
    A.Regs[Reg] = joinValue(A.Regs[Reg], B.Regs[Reg]);
  A.MemP = std::min(A.MemP, B.MemP);
  A.MemA = std::min(A.MemA, B.MemA);
  A.PInt = joinValue(A.PInt, B.PInt);
  A.PFp = joinValue(A.PFp, B.PFp);
  A.AInt = joinValue(A.AInt, B.AInt);
  A.AFp = joinValue(A.AFp, B.AFp);
}

struct Analyzer {
  const FaultRates &R;
  const BoundOptions &Opt;
  opt::OptProgram P;
  opt::DomTree Tree;
  opt::OptLiveness Live; ///< PR-1 worklist engine under the hood.

  /// One natural loop (latches merged per header).
  struct LoopInfo {
    unsigned Header = 0;
    std::vector<uint8_t> Body; ///< Membership bitmap over blockCount().
    unsigned Parent = InvalidId;
    /// Blocks this loop evaluates directly, RPO-sorted: its own blocks
    /// (header included) plus the headers of its immediate children.
    std::vector<unsigned> Region;
  };
  std::vector<LoopInfo> Loops;
  std::vector<unsigned> LoopOf; ///< Innermost loop per block.
  std::vector<unsigned> TopRegion;
  /// Final disposition per loop: 0 untouched, 1 unrolled, 2 widened.
  std::vector<uint8_t> Disposition;

  bool Irreducible = false;
  bool Bail = false;
  uint64_t Evals = 0;
  std::map<std::pair<unsigned, unsigned>, SiteBound> SiteMap;

  Analyzer(const isa::IsaProgram &Program, const FaultRates &Rates,
           const BoundOptions &Options)
      : R(Rates), Opt(Options), P(opt::buildOptProgram(Program)),
        Tree(opt::computeDomTree(P)), Live(opt::computeLiveness(P)) {
    discoverLoops();
  }

  // --- Structure discovery -----------------------------------------------

  void discoverLoops() {
    unsigned N = P.blockCount();
    LoopOf.assign(N, InvalidId);

    // Back edges; any retreating edge without header domination means an
    // irreducible region, where iteration-indexed unrolling is unsound.
    std::map<unsigned, std::vector<unsigned>> Latches;
    for (unsigned U : Tree.RpoOrder)
      for (unsigned S : P.succs(U))
        if (Tree.RpoIndex[S] <= Tree.RpoIndex[U]) {
          if (!Tree.dominates(S, U)) {
            Irreducible = true;
            return;
          }
          Latches[S].push_back(U);
        }

    for (const auto &[Header, Tails] : Latches) {
      LoopInfo L;
      L.Header = Header;
      L.Body.assign(N, 0);
      L.Body[Header] = 1;
      std::vector<unsigned> Work;
      for (unsigned Tail : Tails)
        if (!L.Body[Tail]) {
          L.Body[Tail] = 1;
          Work.push_back(Tail);
        }
      while (!Work.empty()) {
        unsigned Block = Work.back();
        Work.pop_back();
        for (unsigned Pred : P.preds(Block))
          if (Tree.reachable(Pred) && !L.Body[Pred]) {
            L.Body[Pred] = 1;
            Work.push_back(Pred);
          }
      }
      Loops.push_back(std::move(L));
    }
    Disposition.assign(Loops.size(), 0);

    auto BodySize = [&](unsigned Id) {
      return std::count(Loops[Id].Body.begin(), Loops[Id].Body.end(), 1);
    };

    // Innermost containing loop per block; loops nest properly in a
    // reducible CFG, so "smallest containing body" is well defined.
    for (unsigned Block : Tree.RpoOrder)
      for (unsigned Id = 0; Id < Loops.size(); ++Id)
        if (Loops[Id].Body[Block] &&
            (LoopOf[Block] == InvalidId ||
             BodySize(Id) < BodySize(LoopOf[Block])))
          LoopOf[Block] = Id;

    for (unsigned Id = 0; Id < Loops.size(); ++Id) {
      unsigned Best = InvalidId;
      for (unsigned Other = 0; Other < Loops.size(); ++Other)
        if (Other != Id && Loops[Other].Body[Loops[Id].Header] &&
            (Best == InvalidId || BodySize(Other) < BodySize(Best)))
          Best = Other;
      Loops[Id].Parent = Best;
    }

    // Region lists in RPO: the evaluation order within one unroll pass.
    for (unsigned Block : Tree.RpoOrder) {
      unsigned Inner = LoopOf[Block];
      if (Inner == InvalidId) {
        TopRegion.push_back(Block);
        continue;
      }
      if (Loops[Inner].Header == Block) {
        unsigned Up = Loops[Inner].Parent;
        if (Up == InvalidId)
          TopRegion.push_back(Block);
        else
          Loops[Up].Region.push_back(Block);
      }
      Loops[Inner].Region.push_back(Block);
    }
  }

  // --- Per-value helpers -------------------------------------------------

  ValueInfo useInt(const AbsState &S, unsigned Index) const {
    ValueInfo V = S.Regs[Index];
    if (isa::isApproxReg(Index))
      V.Bound *= R.regReadExact();
    return V;
  }

  ValueInfo useFp(const AbsState &S, unsigned Index) const {
    ValueInfo V = S.Regs[isa::NumIntRegs + Index];
    if (isa::isApproxReg(Index))
      V.Bound *= R.regReadExact();
    return V;
  }

  void defInt(AbsState &S, unsigned Index, ValueInfo V) const {
    if (isa::isApproxReg(Index))
      V.Bound *= R.regWriteExact();
    S.Regs[Index] = V;
  }

  void defFp(AbsState &S, unsigned Index, ValueInfo V) const {
    if (isa::isApproxReg(Index))
      V.Bound *= R.regWriteExact();
    S.Regs[isa::NumIntRegs + Index] = V;
  }

  /// P(mantissa truncation of an approximate op's operand is the
  /// identity). Proven three ways: the folded constant survives the
  /// actual truncation bit test; the value is exactly 0; or the window
  /// needs at most the kept significand (Hi - Lo ≤ kept bits, with the
  /// exponent ≥ -1022 so no significand bits hide below the subnormal
  /// threshold). Anything unproven prices in a full divergence (0).
  double narrowFactor(const ValueInfo &V) const {
    if (!R.narrowsDouble())
      return 1.0;
    unsigned Kept = R.DoubleMantissaBits;
    if (V.Const == ValueInfo::ConstFp) {
      uint64_t Bits = toBits(V.FVal);
      return truncateDoubleMantissa(Bits, Kept) == Bits ? 1.0 : 0.0;
    }
    if (V.Top)
      return 0.0;
    if (V.Lo > V.Hi)
      return 1.0; // Exactly zero; truncation is the identity.
    if (V.Hi - V.Lo <= static_cast<int>(Kept) && V.Lo >= -1022)
      return 1.0;
    return 0.0;
  }

  void noteSite(unsigned Block, unsigned Index, const Instruction &I,
                double Bound, bool Fp) {
    if (!Opt.PerSite)
      return;
    auto [It, New] = SiteMap.try_emplace({Block, Index});
    SiteBound &Site = It->second;
    if (New) {
      Site.Block = Block;
      Site.Index = Index;
      Site.Line = I.Line;
      Site.Fp = Fp;
      Site.SrcReg = I.Ra;
    }
    Site.Bound = New ? Bound : std::min(Site.Bound, Bound);
    ++Site.Visits;
  }

  // --- Instruction transfer ----------------------------------------------

  void applyInstr(AbsState &S, const Instruction &I, unsigned Block,
                  unsigned Index) {
    double Alu = I.Approx ? R.aluExact() : 1.0;
    switch (I.Op) {
    case Opcode::Li:
      defInt(S, I.Rd, constIntVal(I.Imm));
      break;
    case Opcode::Lfi:
      defFp(S, I.Rd, constFpVal(I.FpImm));
      break;
    case Opcode::Mv:
      defInt(S, I.Rd, useInt(S, I.Ra));
      break;
    case Opcode::Fmv:
      defFp(S, I.Rd, useFp(S, I.Ra));
      break;

    case Opcode::Endorse: {
      ValueInfo V = useInt(S, I.Ra);
      noteSite(Block, Index, I, S.Path * V.Bound, /*Fp=*/false);
      defInt(S, I.Rd, V);
      break;
    }
    case Opcode::Fendorse: {
      ValueInfo V = useFp(S, I.Ra);
      noteSite(Block, Index, I, S.Path * V.Bound, /*Fp=*/true);
      defFp(S, I.Rd, V);
      break;
    }

    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::Seq:
    case Opcode::Sne:
    case Opcode::Slt:
    case Opcode::Sle:
    case Opcode::And:
    case Opcode::Or: {
      ValueInfo A = useInt(S, I.Ra);
      ValueInfo B = useInt(S, I.Rb);
      ValueInfo V = intArith(I.Op, I.Approx, A, B);
      V.Bound = A.Bound * B.Bound * Alu;
      defInt(S, I.Rd, V);
      break;
    }
    case Opcode::Addi: {
      ValueInfo A = useInt(S, I.Ra);
      ValueInfo V = intArith(I.Op, I.Approx, A, constIntVal(I.Imm));
      V.Bound = A.Bound * Alu;
      defInt(S, I.Rd, V);
      break;
    }

    case Opcode::Fadd:
    case Opcode::Fsub:
    case Opcode::Fmul:
    case Opcode::Fdiv: {
      ValueInfo A = useFp(S, I.Ra);
      ValueInfo B = useFp(S, I.Rb);
      // Operand narrowing happens only on approximate FP ops; an
      // unproven narrow is a divergence from the never-narrowed
      // reference, priced here. Window/const math below still describes
      // the reference (which does not narrow).
      double Narrow = I.Approx ? narrowFactor(A) * narrowFactor(B) : 1.0;
      ValueInfo V = fpArith(I.Op, I.Approx, A, B);
      V.Bound = A.Bound * B.Bound * Narrow * Alu;
      defFp(S, I.Rd, V);
      break;
    }

    case Opcode::Cvt: {
      ValueInfo A = useInt(S, I.Ra);
      ValueInfo V;
      if (A.Const == ValueInfo::ConstInt)
        V = constFpVal(static_cast<double>(A.IVal));
      else if (!A.Top)
        V = winFp(A.Lo, A.Hi); // Rounding keeps grid and magnitude.
      V.Bound = A.Bound * Alu;
      defFp(S, I.Rd, V);
      break;
    }
    case Opcode::Cvti: {
      ValueInfo A = useFp(S, I.Ra);
      double Narrow = I.Approx ? narrowFactor(A) : 1.0;
      ValueInfo V;
      if (A.Const == ValueInfo::ConstFp) {
        // The machine's saturating conversion, replicated bit for bit.
        double F = A.FVal;
        int64_t T = 0;
        if (std::isfinite(F)) {
          if (F >= 9.2233720368547758e18)
            T = std::numeric_limits<int64_t>::max();
          else if (F <= -9.2233720368547758e18)
            T = std::numeric_limits<int64_t>::min();
          else
            T = static_cast<int64_t>(F);
        }
        V = constIntVal(T);
      } else if (!A.Top) {
        if (A.Hi < 0)
          V = constIntVal(0); // |v| ≤ 2^Hi < 1 truncates to 0.
        else if (A.Hi <= 62)
          V = winInt(0, A.Hi); // Under 2^63: no saturation, |r| ≤ |v|.
      }
      V.Bound = A.Bound * Narrow * Alu;
      defInt(S, I.Rd, V);
      break;
    }

    case Opcode::Lw:
    case Opcode::Flw: {
      ValueInfo Addr = useInt(S, I.Ra);
      bool FpView = I.Op == Opcode::Flw;
      ValueInfo V;
      double Region = 0.0;
      if (I.Approx) {
        // An approximate load may legally hit either region.
        Region = std::min(S.MemP, S.MemA);
        V = FpView ? joinValue(S.PFp, S.AFp) : joinValue(S.PInt, S.AInt);
      } else {
        Region = S.MemP; // A precise load of the approximate region traps.
        V = FpView ? S.PFp : S.PInt;
      }
      V.Bound = Region * Addr.Bound;
      if (FpView)
        defFp(S, I.Rd, V);
      else
        defInt(S, I.Rd, V);
      break;
    }
    case Opcode::Sw:
    case Opcode::Fsw: {
      bool FpView = I.Op == Opcode::Fsw;
      ValueInfo Val = FpView ? useFp(S, I.Rd) : useInt(S, I.Rd);
      ValueInfo Addr = useInt(S, I.Ra);
      // Region exactness now requires this store's value *and* address
      // exact (a misdirected store clobbers some other cell).
      double Factor = Val.Bound * Addr.Bound;
      ValueInfo Stored = Val;
      Stored.Bound = 1.0; // Summaries carry reference values only.
      ValueInfo Poison;   // Top window, unknown const.
      if (I.Approx) {     // Approximate stores land in the approximate
        S.MemA *= Factor; // region or trap; never the precise one.
        if (FpView) {
          S.AFp = joinValue(S.AFp, Stored);
          S.AInt = Poison;
        } else {
          S.AInt = joinValue(S.AInt, Stored);
          S.AFp = Poison;
        }
      } else {
        S.MemP *= Factor;
        if (FpView) {
          S.PFp = joinValue(S.PFp, Stored);
          S.PInt = Poison;
        } else {
          S.PInt = joinValue(S.PInt, Stored);
          S.PFp = Poison;
        }
      }
      break;
    }

    default: // Branches/jumps/halt are terminators, never in a body.
      break;
    }
  }

  /// Reference direction of a conditional branch, when both operands
  /// fold: 0 = taken (Succs[0]), 1 = fall-through, -1 = unknown. The
  /// comparisons are the machine's own C++ operators (NaN included:
  /// fbne on NaN *is* taken, exactly as the interpreter computes it).
  static int branchDirection(Opcode Op, const ValueInfo &L,
                             const ValueInfo &Rv) {
    bool Taken = false;
    switch (Op) {
    case Opcode::Beq:
    case Opcode::Bne:
    case Opcode::Blt:
    case Opcode::Ble: {
      if (L.Const != ValueInfo::ConstInt || Rv.Const != ValueInfo::ConstInt)
        return -1;
      int64_t A = L.IVal, B = Rv.IVal;
      Taken = Op == Opcode::Beq   ? A == B
              : Op == Opcode::Bne ? A != B
              : Op == Opcode::Blt ? A < B
                                  : A <= B;
      break;
    }
    default: {
      if (L.Const != ValueInfo::ConstFp || Rv.Const != ValueInfo::ConstFp)
        return -1;
      double A = L.FVal, B = Rv.FVal;
      Taken = Op == Opcode::Fbeq   ? A == B
              : Op == Opcode::Fbne ? A != B
              : Op == Opcode::Fblt ? A < B
                                   : A <= B;
      break;
    }
    }
    return Taken ? 0 : 1;
  }

  /// Evaluates one block: body transfer, then the terminator's flows.
  /// \p NonConst is set when a conditional branch could not be directed
  /// (the enclosing loop is then not reference-counted).
  std::vector<std::pair<unsigned, AbsState>>
  transferBlock(unsigned Id, AbsState S, bool &NonConst) {
    std::vector<std::pair<unsigned, AbsState>> Flows;
    if (++Evals > Opt.EvalBudget) {
      Bail = true;
      return Flows;
    }
    const opt::OptBlock &B = P.Blocks[Id];
    for (unsigned Index = 0; Index < B.Body.size(); ++Index) {
      applyInstr(S, B.Body[Index], Id, Index);
      if (Bail)
        return Flows;
    }
    if (!B.Term || B.Term->Op == Opcode::Jmp || B.Term->Op == Opcode::Halt) {
      Flows.emplace_back(B.Succs[0], std::move(S));
      return Flows;
    }
    const Instruction &T = *B.Term;
    bool Fp = T.Op == Opcode::Fbeq || T.Op == Opcode::Fbne ||
              T.Op == Opcode::Fblt || T.Op == Opcode::Fble;
    ValueInfo L = Fp ? useFp(S, T.Rd) : useInt(S, T.Rd);
    ValueInfo Rv = Fp ? useFp(S, T.Ra) : useInt(S, T.Ra);
    // Any divergence in a branch operand can steer off the reference
    // path; from here on that mass lives in Path, not the value bounds.
    S.Path *= L.Bound * Rv.Bound;
    if (B.Succs.size() == 1) { // Taken target == fall-through.
      Flows.emplace_back(B.Succs[0], std::move(S));
      return Flows;
    }
    int Dir = branchDirection(T.Op, L, Rv);
    if (Dir >= 0) {
      Flows.emplace_back(B.Succs[Dir], std::move(S));
      return Flows;
    }
    NonConst = true;
    Flows.emplace_back(B.Succs[0], S);
    Flows.emplace_back(B.Succs[1], std::move(S));
    return Flows;
  }

  // --- Region evaluation -------------------------------------------------

  /// Runs one pass over a region in RPO. \p Loop == InvalidId means the
  /// top region (then \p ExitOut collects the program exit state and
  /// \p Latch is unused). Flows to the region's own header go to
  /// \p Latch; flows leaving the loop go to \p Escapes. Single-pass RPO
  /// is sound here because in a reducible CFG every non-back edge runs
  /// RPO-forward and every back edge targets a header — this loop's
  /// (the latch) or an ancestor's (an escape).
  void evalRegion(unsigned Loop, const AbsState &Entry,
                  std::map<unsigned, AbsState> &Escapes, AbsState *Latch,
                  bool &NonConst, AbsState *ExitOut) {
    std::map<unsigned, AbsState> In;
    unsigned Head = Loop == InvalidId ? 0 : Loops[Loop].Header;
    In[Head] = Entry;

    auto Route = [&](unsigned Target, AbsState &&S) {
      if (Loop != InvalidId) {
        if (Target == Loops[Loop].Header) {
          joinState(*Latch, S);
          return;
        }
        if (!Loops[Loop].Body[Target]) {
          joinState(Escapes[Target], S);
          return;
        }
      }
      joinState(In[Target], S);
    };

    const std::vector<unsigned> &Region =
        Loop == InvalidId ? TopRegion : Loops[Loop].Region;
    for (unsigned Block : Region) {
      if (Bail)
        return;
      auto It = In.find(Block);
      if (It == In.end() || !It->second.Reach)
        continue;
      AbsState S = std::move(It->second);
      if (Loop == InvalidId && Block == P.exitId()) {
        joinState(*ExitOut, S);
        continue;
      }
      unsigned Inner = LoopOf[Block];
      if (Inner != Loop) {
        // A child loop's header: run the child to its own fixpoint and
        // route whatever escapes it.
        std::map<unsigned, AbsState> ChildEscapes;
        solveLoop(Inner, std::move(S), ChildEscapes);
        for (auto &[Target, Escaped] : ChildEscapes)
          Route(Target, std::move(Escaped));
        continue;
      }
      for (auto &[Target, Flow] : transferBlock(Block, std::move(S), NonConst))
        Route(Target, std::move(Flow));
    }
  }

  /// Header-state equality, dead registers exempt: a register not
  /// live-in at the header is redefined before every use and before the
  /// exit (liveness treats all registers observable there), so its
  /// value cannot affect anything downstream.
  bool sameState(const AbsState &A, const AbsState &B,
                 const BitVec &HeadLive) const {
    if (A.Reach != B.Reach)
      return false;
    if (!A.Reach)
      return true;
    if (A.Path != B.Path || A.MemP != B.MemP || A.MemA != B.MemA)
      return false;
    if (!sameValue(A.PInt, B.PInt) || !sameValue(A.PFp, B.PFp) ||
        !sameValue(A.AInt, B.AInt) || !sameValue(A.AFp, B.AFp))
      return false;
    for (unsigned Reg = 0; Reg < NumFlatRegs; ++Reg)
      if (HeadLive.test(Reg) && !sameValue(A.Regs[Reg], B.Regs[Reg]))
        return false;
    return true;
  }

  AbsState widenState(const AbsState &H, const AbsState &L,
                      const BitVec &HeadLive) const {
    AbsState N = H;
    if (H.Path != L.Path)
      N.Path = 0.0;
    if (H.MemP != L.MemP)
      N.MemP = 0.0;
    if (H.MemA != L.MemA)
      N.MemA = 0.0;
    N.PInt = widenValue(H.PInt, L.PInt);
    N.PFp = widenValue(H.PFp, L.PFp);
    N.AInt = widenValue(H.AInt, L.AInt);
    N.AFp = widenValue(H.AFp, L.AFp);
    for (unsigned Reg = 0; Reg < NumFlatRegs; ++Reg)
      if (HeadLive.test(Reg))
        N.Regs[Reg] = widenValue(H.Regs[Reg], L.Regs[Reg]);
    return N;
  }

  /// Drives one loop to closure. Pass k's header state describes the
  /// reference's k-th arrival at the header, and every pass's escapes
  /// are min-joined into \p Escapes, so exits after any number of
  /// iterations are covered. Termination: a reference-counted loop
  /// exits concretely (latch unreachable), a converging loop hits the
  /// per-field covering fixpoint, and everything else widens — each
  /// non-final widening step bottoms at least one of the finitely many
  /// fields.
  void solveLoop(unsigned Id, AbsState Entry,
                 std::map<unsigned, AbsState> &Escapes) {
    const LoopInfo &L = Loops[Id];
    const BitVec &HeadLive = Live.LiveIn[L.Header];
    AbsState HeaderIn = std::move(Entry);
    bool NonConst = false;
    bool Widened = false;
    for (unsigned Pass = 1; !Bail; ++Pass) {
      AbsState Latch;
      evalRegion(Id, HeaderIn, Escapes, &Latch, NonConst, nullptr);
      if (Bail)
        return;
      if (!Latch.Reach) // Exited concretely on every abstract path.
        break;
      // Covering fixpoint: this pass ran from HeaderIn and its escapes
      // are recorded, so all later iterations are already accounted.
      if (sameState(HeaderIn, Latch, HeadLive))
        break;
      unsigned Cap = NonConst ? Opt.WidenAfter : Opt.UnrollCap;
      if (!Widened && Pass < Cap) {
        HeaderIn = std::move(Latch); // Concrete unroll: next iteration.
        continue;
      }
      AbsState Next = widenState(HeaderIn, Latch, HeadLive);
      if (sameState(Next, HeaderIn, HeadLive)) {
        // Nothing left to bottom: every differing field already sits at
        // bottom in HeaderIn, so HeaderIn covers Latch — a fixpoint.
        Widened = true;
        break;
      }
      HeaderIn = std::move(Next);
      Widened = true;
    }
    Disposition[Id] = Widened ? 2 : 1;
  }

  // --- Entry, bail-out, and assembly -------------------------------------

  AbsState entryState() const {
    AbsState S;
    S.Reach = true;
    for (unsigned Reg = 0; Reg < isa::NumIntRegs; ++Reg)
      S.Regs[Reg] = constIntVal(0); // The machine zero-fills both files.
    for (unsigned Reg = 0; Reg < isa::NumFpRegs; ++Reg)
      S.Regs[isa::NumIntRegs + Reg] = constFpVal(0.0);
    S.MemA = R.dramResidencyExact(Opt.MaxInstructions, P.ApproxWords);
    ValueInfo ZeroInt = constIntVal(0);
    ValueInfo ZeroFp = constFpVal(0.0); // Same bit pattern either view.
    S.PInt = ZeroInt;
    S.AInt = ZeroInt;
    S.PFp = ZeroFp;
    S.AFp = ZeroFp;
    return S;
  }

  ReliabilityReport conservative() const {
    // The trivial sound answer. It is 1.0 exactly when no fault source
    // is live at all (level None): then every run is the reference run.
    bool AllExact =
        R.regReadExact() == 1.0 && R.regWriteExact() == 1.0 &&
        R.aluExact() == 1.0 && !R.narrowsDouble() &&
        R.dramResidencyExact(Opt.MaxInstructions, P.ApproxWords) == 1.0;
    double Bound = AllExact ? 1.0 : 0.0;
    ReliabilityReport Report;
    Report.Conservative = true;
    Report.PathBound = Bound;
    Report.IntOutputBound = Bound;
    Report.FpOutputBound = Bound;
    Report.ProgramBound = Bound;
    Report.ExitRegBounds.fill(Bound);
    Report.PreciseMemBound = Bound;
    Report.ApproxMemBound = Bound;
    Report.LoopCount = static_cast<unsigned>(Loops.size());
    Report.BlockEvals = Evals;
    return Report;
  }

  ReliabilityReport run() {
    if (Irreducible)
      return conservative();

    AbsState Exit;
    std::map<unsigned, AbsState> Escapes; // Stays empty at the top.
    bool NonConst = false;
    evalRegion(InvalidId, entryState(), Escapes, nullptr, NonConst, &Exit);
    if (Bail)
      return conservative();

    ReliabilityReport Report;
    Report.LoopCount = static_cast<unsigned>(Loops.size());
    for (uint8_t D : Disposition) {
      Report.LoopsUnrolled += D == 1;
      Report.LoopsWidened += D == 2;
    }
    Report.BlockEvals = Evals;

    if (!Exit.Reach) {
      // The exit is unreachable: the reference never halts, so nothing
      // positive can be promised about exit-state agreement.
      Report.PathBound = 0.0;
      Report.IntOutputBound = 0.0;
      Report.FpOutputBound = 0.0;
      Report.ProgramBound = 0.0;
      Report.ExitRegBounds.fill(0.0);
      Report.PreciseMemBound = 0.0;
      Report.ApproxMemBound = 0.0;
    } else {
      double IntOut = Exit.Regs[1].Bound;              // r1.
      double FpOut = Exit.Regs[isa::NumIntRegs + 1].Bound; // f1.
      Report.PathBound = Exit.Path;
      Report.IntOutputBound = Exit.Path * IntOut;
      Report.FpOutputBound = Exit.Path * FpOut;
      // Products of dependent lower bounds still lower-bound the joint:
      // each factor only over-counts clean-event probabilities ≤ 1.
      Report.ProgramBound = Exit.Path * IntOut * FpOut;
      for (unsigned Reg = 0; Reg < NumFlatRegs; ++Reg)
        Report.ExitRegBounds[Reg] = Exit.Regs[Reg].Bound;
      Report.PreciseMemBound = Exit.MemP;
      Report.ApproxMemBound = Exit.MemA;
    }

    Report.Sites.reserve(SiteMap.size());
    for (const auto &[Key, Site] : SiteMap)
      Report.Sites.push_back(Site); // Map order == (Block, Index) order.
    return Report;
  }
};

} // namespace

ReliabilityReport
reliability::analyzeProgram(const isa::IsaProgram &Program,
                            const FaultRates &Rates,
                            const BoundOptions &Options) {
  Analyzer A(Program, Rates, Options);
  return A.run();
}
