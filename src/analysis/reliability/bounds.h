//===- analysis/reliability/bounds.h - Static reliability bounds -*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static correctness-probability analysis over the ISA: for a verified
/// program and a FaultRates table, derive a *lower bound* on the
/// probability that each output register is bitwise equal to the
/// fault-free (level None) reference execution. What Monte-Carlo fault
/// injection measures over thousands of trials, this derives from one
/// abstract-interpretation fixpoint — and `reliability_bound_test` holds
/// the two against each other: the static bound must never exceed the
/// measured exact-match rate.
///
/// The abstract state tracks, per flattened register (analysis/isa_flow
/// RegRef numbering) and per memory region:
///
///  * **Bound** — a lower bound on P(value bitwise-exact), the product of
///    per-event clean probabilities (SRAM read/write upsets, ALU/FPU
///    timing errors, whole-run DRAM residency) over the value's
///    dependence cone. Fault events are independent Bernoulli draws, so
///    the product of clean probabilities over any superset of the cone's
///    events — double counting included — lower-bounds the joint.
///  * **a dyadic window** describing the *reference* value: membership in
///    a grid 2^Lo · Z together with a magnitude cap |v| <= 2^Hi, plus
///    exact constants where they fold. The window exists to prove FP
///    operand narrowing harmless: mantissa truncation is deterministic
///    (the None reference does not narrow), so an approximate FP op's
///    operand survives it exactly when its window fits the kept mantissa
///    (Hi - Lo <= kept bits); unproven narrowing is a divergence from the
///    reference and drops the bound to 0.
///  * **Path** — the probability that control flow followed the
///    reference path so far: every conditional branch multiplies in its
///    operands' bounds. Reported bounds are Path * value bound, so runs
///    that leave the reference path (including corrupted loop counters
///    spinning extra iterations) are excluded rather than mis-bounded.
///
/// Loops close via the reference-constant unrolling rule: a branch whose
/// operands are exact reference constants has a *known* reference
/// direction, so counted loops unroll pass by pass (up to a cap) exactly
/// as the reference executes them; loops whose exit condition does not
/// fold widen after a few passes with the sound limit of geometric decay
/// — a per-iteration factor f < 1 compounds to 0 over unbounded trips,
/// so the widened bound is 0 (and Top for windows). At level None every
/// per-event factor is 1.0 and no component ever decreases, so every
/// reported bound is exactly 1.0 with no special casing.
///
/// Reuses the PR 1 worklist engine (liveness via opt::computeLiveness)
/// and the PR 6 dominator tree / block IR (natural-loop discovery over
/// opt::buildOptProgram).
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_ANALYSIS_RELIABILITY_BOUNDS_H
#define ENERJ_ANALYSIS_RELIABILITY_BOUNDS_H

#include "fault/rates.h"
#include "isa/isa.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace enerj {
namespace analysis {
namespace reliability {

/// Analysis knobs. The defaults match the execution paths the soundness
/// differential runs against.
struct BoundOptions {
  /// The run-length cap the DRAM whole-run residency factor assumes;
  /// must be >= the instruction budget of the runs the bounds describe
  /// (isa::Machine and exec::FastMachine default to 10'000'000).
  uint64_t MaxInstructions = 10'000'000;
  /// Most header evaluations a reference-counted loop may unroll; a
  /// counted loop longer than this widens instead (still sound).
  unsigned UnrollCap = 1u << 14;
  /// Header passes granted to a loop whose exit does not fold before
  /// the geometric-decay widening snaps decreasing components to 0.
  unsigned WidenAfter = 4;
  /// Global abstract block-evaluation budget; blowing it degrades the
  /// whole result to the conservative bottom (Conservative = true).
  uint64_t EvalBudget = 1u << 22;
  /// Collect per-endorse-site bounds (the --per-site view).
  bool PerSite = true;
};

/// One endorsement site: where an approximate value crossed into precise
/// accounting, and the weakest bound that crossed there.
struct SiteBound {
  unsigned Block = 0; ///< OptProgram block id.
  unsigned Index = 0; ///< Body index within the block.
  int Line = 0;       ///< Assembly line, for display.
  bool Fp = false;    ///< fendorse vs endorse.
  unsigned SrcReg = 0;///< The endorsed (approximate) register number.
  /// min over loop passes of Path * P(endorsed value exact): the
  /// weakest guarantee any execution of this site endorses.
  double Bound = 1.0;
  /// Header passes that reached the site (its static trip multiplicity).
  uint64_t Visits = 0;
};

/// The analysis result for one program at one FaultRates table.
struct ReliabilityReport {
  /// True when the analysis gave up (irreducible CFG or evaluation
  /// budget blown) and every bound is the trivial sound one.
  bool Conservative = false;

  /// P(control flow followed the reference path to the exit).
  double PathBound = 1.0;
  /// Path * P(r1 exact) — the integer output's reliability bound.
  double IntOutputBound = 1.0;
  /// Path * P(f1 exact) — the FP output's reliability bound.
  double FpOutputBound = 1.0;
  /// Path * P(r1 exact) * P(f1 exact): a lower bound on the probability
  /// that a run scores QosError == 0 on the compiled eval path (both
  /// result registers bitwise equal to the reference).
  double ProgramBound = 1.0;

  /// Per flat register (RegRef::flat()): value bound at program exit,
  /// Path excluded. Registers dead at exit still carry their bound.
  std::array<double, 64> ExitRegBounds{};

  /// Whole-region content bounds at exit (all cells exact).
  double PreciseMemBound = 1.0;
  double ApproxMemBound = 1.0;

  std::vector<SiteBound> Sites; ///< Deterministic (Block, Index) order.

  unsigned LoopCount = 0;   ///< Natural loops discovered.
  unsigned LoopsUnrolled = 0; ///< Closed by reference-constant unrolling.
  unsigned LoopsWidened = 0;  ///< Closed by geometric-decay widening.
  uint64_t BlockEvals = 0;  ///< Abstract block evaluations performed.
};

/// Analyzes \p Program against \p Rates. The program must already pass
/// the verifier and flow checker (analysis happens downstream of them in
/// every tool path); the analysis itself performs no RNG draws and never
/// executes the program.
ReliabilityReport analyzeProgram(const isa::IsaProgram &Program,
                                 const FaultRates &Rates,
                                 const BoundOptions &Options = {});

} // namespace reliability
} // namespace analysis
} // namespace enerj

#endif // ENERJ_ANALYSIS_RELIABILITY_BOUNDS_H
