//===- analysis/lint.cpp - The enerj-lint pass pipeline -------------------===//

#include "analysis/lint.h"

#include "analysis/dataflow.h"
#include "analysis/fenerj_cfg.h"
#include "analysis/interproc_flow.h"
#include "analysis/isa_flow.h"
#include "fenerj/codegen.h"
#include "isa/assembler.h"

#include <algorithm>
#include <unordered_map>

namespace enerj {
namespace analysis {

using namespace enerj::fenerj;

const char *lintPassName(LintPass Pass) {
  switch (Pass) {
  case LintPass::Endorsement:
    return "endorsement";
  case LintPass::PrecisionSlack:
    return "precision-slack";
  case LintPass::DeadValue:
    return "dead-value";
  case LintPass::IsaFlow:
    return "isa-flow";
  case LintPass::InterprocFlow:
    return "interproc-flow";
  }
  return "unknown";
}

bool lintFindingLess(const LintFinding &A, const LintFinding &B) {
  if (A.Pass != B.Pass)
    return static_cast<int>(A.Pass) < static_cast<int>(B.Pass);
  if (A.Loc.Line != B.Loc.Line)
    return A.Loc.Line < B.Loc.Line;
  if (A.Loc.Column != B.Loc.Column)
    return A.Loc.Column < B.Loc.Column;
  if (A.Severity != B.Severity)
    return static_cast<int>(A.Severity) < static_cast<int>(B.Severity);
  return A.Message < B.Message;
}

const char *lintSeverityName(LintSeverity Severity) {
  switch (Severity) {
  case LintSeverity::Error:
    return "error";
  case LintSeverity::Warning:
    return "warning";
  case LintSeverity::Suggestion:
    return "suggestion";
  }
  return "unknown";
}

unsigned LintResult::count(LintPass Pass) const {
  unsigned N = 0;
  for (const LintFinding &F : Findings)
    if (F.Pass == Pass)
      ++N;
  return N;
}

unsigned LintResult::errorCount() const {
  unsigned N = 0;
  for (const LintFinding &F : Findings)
    if (F.Severity == LintSeverity::Error)
      ++N;
  return N;
}

namespace {

/// The qualifier that matters for "is this entity's data precise":
/// the element qualifier for arrays, the top-level qualifier otherwise.
Qual valueQual(const Type &T) { return T.isArray() ? T.ElemQual : T.Q; }

/// Least upper bound good enough for the audits: the result is Precise
/// exactly when both inputs are Precise (anything else is "not provably
/// precise", which is all the endorsement audit distinguishes).
Qual joinQual(Qual A, Qual B) {
  if (A == B)
    return A;
  if (A == Qual::Approx || B == Qual::Approx)
    return Qual::Approx;
  if (A == Qual::Lost || B == Qual::Lost)
    return Qual::Lost;
  return Qual::Top;
}

Type preciseInt() { return Type::makePrim(Qual::Precise, BaseKind::Int); }

//===----------------------------------------------------------------------===//
// Demand analysis: endorsement audit + precision-slack inference.
//===----------------------------------------------------------------------===//
//
// A flow-insensitive constraint analysis over *entities* — the places a
// value can rest: locals, parameters, fields (keyed by declaring class,
// so inherited fields share one entity), method results, plus anonymous
// join/endorse temporaries. Arrays are conflated with their element
// values. Entity 0 is the SINK: the precise world (conditions,
// subscripts, the program result). A flow edge From -> To records that
// From's value can flow into To; *demand* propagates backward over
// edges (demanded(To) => demanded(From)), seeded at the SINK.
//
// endorse() is the one construct that does NOT propagate demand to its
// operand — that is its whole job — so after propagation:
//
//  * an endorse whose own result entity is undemanded gated nothing;
//  * a Precise-qualified local/param/field/return entity that is
//    undemanded (but used) never needed precision: suggest @approx.
//
// The suggestions are consistent as a set: an undemanded entity's value
// reaches only approximate contexts and other undemanded entities, so
// relaxing all of them together preserves well-typedness.

class DemandAnalysis {
public:
  DemandAnalysis(const Program &Prog, const ClassTable &Table)
      : Prog(Prog), Table(Table) {}

  void run(std::vector<LintFinding> &Out);

private:
  static constexpr unsigned NoEnt = ~0u;
  static constexpr unsigned Sink = 0;

  struct Entity {
    enum class Kind { Sink, Local, Param, Field, Return, Temp, EndorseVal };
    Kind K = Kind::Temp;
    std::string Display; ///< e.g. "local 'x'", "field 'C.f'".
    Type DeclType;
    SourceLoc Loc;
    unsigned Uses = 0;
    bool Demanded = false;
    /// The value was linked somewhere (only meaningful for EndorseVal:
    /// distinguishes a discarded endorse from an unprofitable one).
    bool Consumed = false;
  };

  /// An expression's value: its static type plus the entity that tracks
  /// it, if any.
  struct Flow {
    Type Ty;
    unsigned Ent = NoEnt;
  };

  struct EndorseSite {
    SourceLoc Loc;
    Qual SourceQ = Qual::Approx;
    unsigned Ent = NoEnt;
  };

  struct LocalInfo {
    unsigned Ent = NoEnt;
    Type Ty;
  };

  unsigned makeEntity(Entity::Kind K, std::string Display, Type DeclType,
                      SourceLoc Loc) {
    Entities.push_back(
        {K, std::move(Display), std::move(DeclType), Loc, 0, false, false});
    Feeders.emplace_back();
    return static_cast<unsigned>(Entities.size() - 1);
  }

  void addFlow(unsigned From, unsigned To) { Feeders[To].push_back(From); }

  void link(const Flow &F, unsigned To) {
    if (F.Ent == NoEnt)
      return;
    Entities[F.Ent].Consumed = true;
    addFlow(F.Ent, To);
  }
  void consume(const Flow &F) {
    if (F.Ent != NoEnt)
      Entities[F.Ent].Consumed = true;
  }

  /// Merges two flows into one of type \p Ty (binary operands, if
  /// branches). One tracked operand passes through; two get an anonymous
  /// join entity fed by both.
  Flow joinFlows(const Flow &A, const Flow &B, Type Ty, SourceLoc Loc) {
    if (A.Ent == NoEnt && B.Ent == NoEnt)
      return {std::move(Ty), NoEnt};
    if (A.Ent != NoEnt && B.Ent == NoEnt)
      return {std::move(Ty), A.Ent};
    if (A.Ent == NoEnt && B.Ent != NoEnt)
      return {std::move(Ty), B.Ent};
    unsigned Join = makeEntity(Entity::Kind::Temp, "", Ty, Loc);
    link(A, Join);
    link(B, Join);
    return {std::move(Ty), Join};
  }

  LocalInfo *resolve(const std::string &Name) {
    for (auto Scope = Scopes.rbegin(); Scope != Scopes.rend(); ++Scope) {
      auto Found = Scope->find(Name);
      if (Found != Scope->end())
        return &Found->second;
    }
    return nullptr;
  }

  /// The declaring class of \p Field on receivers of \p RecvTy (fields
  /// are keyed by declaring class so inherited accesses share an
  /// entity); NoEnt when unresolvable.
  unsigned fieldEntity(const Type &RecvTy, const std::string &Field) const {
    if (!RecvTy.isClass())
      return NoEnt;
    const ClassDecl *Decl = Table.lookup(RecvTy.ClassName);
    while (Decl) {
      for (const FieldDeclAst &F : Decl->Fields)
        if (F.Name == Field) {
          auto Found = FieldEnts.find(Decl->Name + "." + Field);
          return Found == FieldEnts.end() ? NoEnt : Found->second;
        }
      Decl = Table.lookup(Decl->SuperName);
    }
    return NoEnt;
  }

  Type fieldTypeOf(const Type &RecvTy, const std::string &Field) const {
    if (RecvTy.isClass())
      if (auto FT = Table.fieldType(RecvTy.ClassName, Field))
        return adaptType(RecvTy.Q, *FT);
    return preciseInt();
  }

  Type binaryType(BinaryOp Op, const Type &L, const Type &R) const {
    Qual Q = joinQual(L.Q, R.Q);
    switch (Op) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Mod:
      return Type::makePrim(Q, (L.Base == BaseKind::Float ||
                                R.Base == BaseKind::Float)
                                   ? BaseKind::Float
                                   : BaseKind::Int);
    default:
      return Type::makePrim(Q, BaseKind::Bool);
    }
  }

  Flow visit(const Expr &E);
  void propagate();
  void emitFindings(std::vector<LintFinding> &Out) const;

  const Program &Prog;
  const ClassTable &Table;

  std::vector<Entity> Entities;
  std::vector<std::vector<unsigned>> Feeders;
  std::vector<EndorseSite> Sites;
  std::unordered_map<std::string, unsigned> FieldEnts;
  std::unordered_map<const MethodDecl *, unsigned> RetEnts;
  std::unordered_map<const MethodDecl *, std::vector<unsigned>> ParamEnts;

  std::vector<std::unordered_map<std::string, LocalInfo>> Scopes;
  std::string CurClass;
  Qual ThisQual = Qual::Context;
};

void DemandAnalysis::run(std::vector<LintFinding> &Out) {
  makeEntity(Entity::Kind::Sink, "", preciseInt(), {});

  // Entities for every field and method signature up front, so call and
  // field-access sites in any body can refer to them. A non-precise,
  // non-approx qualifier (context/top) means the precision depends on
  // the receiver, so the entity is conservatively pre-demanded.
  for (const ClassDecl &C : Prog.Classes) {
    for (const FieldDeclAst &F : C.Fields) {
      unsigned Ent =
          makeEntity(Entity::Kind::Field,
                     "field '" + C.Name + "." + F.Name + "'", F.DeclaredType,
                     F.Loc);
      FieldEnts[C.Name + "." + F.Name] = Ent;
      Qual Q = valueQual(F.DeclaredType);
      if (Q != Qual::Precise && Q != Qual::Approx)
        addFlow(Ent, Sink);
    }
    for (const MethodDecl &M : C.Methods) {
      std::string MName = "'" + C.Name + "." + M.Name + "'";
      unsigned Ret = makeEntity(Entity::Kind::Return, "method " + MName,
                                M.ReturnType, M.Loc);
      RetEnts[&M] = Ret;
      Qual RetQ = valueQual(M.ReturnType);
      if (RetQ != Qual::Precise && RetQ != Qual::Approx)
        addFlow(Ret, Sink);
      std::vector<unsigned> Params;
      for (const ParamDecl &P : M.Params) {
        unsigned Ent = makeEntity(
            Entity::Kind::Param, "parameter '" + P.Name + "' of " + MName,
            P.DeclaredType, M.Loc);
        Qual Q = valueQual(P.DeclaredType);
        if (Q != Qual::Precise && Q != Qual::Approx)
          addFlow(Ent, Sink);
        Params.push_back(Ent);
      }
      ParamEnts[&M] = std::move(Params);
    }
  }

  for (const ClassDecl &C : Prog.Classes)
    for (const MethodDecl &M : C.Methods) {
      CurClass = C.Name;
      ThisQual = M.ReceiverPrecision;
      Scopes.clear();
      Scopes.emplace_back();
      const std::vector<unsigned> &Params = ParamEnts[&M];
      for (size_t I = 0; I < M.Params.size(); ++I)
        Scopes.back()[M.Params[I].Name] = {Params[I],
                                           M.Params[I].DeclaredType};
      Flow Result = visit(*M.Body);
      link(Result, RetEnts[&M]);
    }

  CurClass.clear();
  ThisQual = Qual::Precise;
  Scopes.clear();
  Scopes.emplace_back();
  // The program result is observed precisely (the driver prints it), so
  // the main expression is a precise sink — this is what justifies the
  // idiomatic final endorse.
  Flow MainResult = visit(*Prog.Main);
  link(MainResult, Sink);

  propagate();
  emitFindings(Out);
}

DemandAnalysis::Flow DemandAnalysis::visit(const Expr &E) {
  switch (E.kind()) {
  case ExprKind::NullLit:
    return {Type::makeNull(), NoEnt};
  case ExprKind::IntLit:
    return {preciseInt(), NoEnt};
  case ExprKind::FloatLit:
    return {Type::makePrim(Qual::Precise, BaseKind::Float), NoEnt};
  case ExprKind::BoolLit:
    return {Type::makePrim(Qual::Precise, BaseKind::Bool), NoEnt};

  case ExprKind::VarRef: {
    const auto &Var = static_cast<const VarRefExpr &>(E);
    if (Var.Name == "this")
      return {Type::makeClass(ThisQual, CurClass), NoEnt};
    LocalInfo *Local = resolve(Var.Name);
    if (!Local)
      return {preciseInt(), NoEnt};
    ++Entities[Local->Ent].Uses;
    return {Local->Ty, Local->Ent};
  }

  case ExprKind::New: {
    const auto &New = static_cast<const NewExpr &>(E);
    return {Type::makeClass(New.Q, New.ClassName), NoEnt};
  }
  case ExprKind::NewArray: {
    const auto &New = static_cast<const NewArrayExpr &>(E);
    Flow Length = visit(*New.Length);
    link(Length, Sink); // Lengths are precise.
    return {Type::makeArray(New.ElemQual, New.Elem), NoEnt};
  }

  case ExprKind::FieldRead: {
    const auto &Read = static_cast<const FieldReadExpr &>(E);
    Flow Recv = visit(*Read.Receiver);
    consume(Recv);
    unsigned Ent = fieldEntity(Recv.Ty, Read.Field);
    if (Ent != NoEnt)
      ++Entities[Ent].Uses;
    return {fieldTypeOf(Recv.Ty, Read.Field), Ent};
  }
  case ExprKind::FieldWrite: {
    const auto &Write = static_cast<const FieldWriteExpr &>(E);
    Flow Recv = visit(*Write.Receiver);
    consume(Recv);
    unsigned Ent = fieldEntity(Recv.Ty, Write.Field);
    Flow Value = visit(*Write.Value);
    if (Ent != NoEnt)
      link(Value, Ent);
    else
      consume(Value);
    // The write's own value has the field's type; route onward flow
    // through the field entity so a precise use of the write expression
    // keeps the field demanded.
    return {fieldTypeOf(Recv.Ty, Write.Field), Ent};
  }

  case ExprKind::ArrayRead: {
    const auto &Read = static_cast<const ArrayReadExpr &>(E);
    Flow Array = visit(*Read.Array);
    Flow Index = visit(*Read.Index);
    link(Index, Sink); // Subscripts are precise.
    Type Elem = Array.Ty.isArray()
                    ? Type::makePrim(Array.Ty.ElemQual, Array.Ty.Elem)
                    : preciseInt();
    // Element values are tracked by the array's own entity.
    return {Elem, Array.Ent};
  }
  case ExprKind::ArrayWrite: {
    const auto &Write = static_cast<const ArrayWriteExpr &>(E);
    Flow Array = visit(*Write.Array);
    Flow Index = visit(*Write.Index);
    link(Index, Sink);
    Flow Value = visit(*Write.Value);
    if (Array.Ent != NoEnt)
      link(Value, Array.Ent);
    else
      consume(Value);
    Type Elem = Array.Ty.isArray()
                    ? Type::makePrim(Array.Ty.ElemQual, Array.Ty.Elem)
                    : preciseInt();
    return {Elem, Array.Ent};
  }
  case ExprKind::ArrayLength: {
    // a.length reads no element, so it demands nothing of them — the
    // length of an approximate-element array is still precise.
    const auto &Len = static_cast<const ArrayLengthExpr &>(E);
    visit(*Len.Array);
    return {preciseInt(), NoEnt};
  }

  case ExprKind::MethodCall: {
    const auto &Call = static_cast<const MethodCallExpr &>(E);
    Flow Recv = visit(*Call.Receiver);
    const MethodDecl *Method =
        Recv.Ty.isClass()
            ? Table.lookupMethod(Recv.Ty.ClassName, Call.Method, Recv.Ty.Q)
            : nullptr;
    const std::vector<unsigned> *Params = nullptr;
    if (Method) {
      auto Found = ParamEnts.find(Method);
      if (Found != ParamEnts.end())
        Params = &Found->second;
    }
    for (size_t I = 0; I < Call.Args.size(); ++I) {
      Flow Arg = visit(*Call.Args[I]);
      if (Params && I < Params->size())
        link(Arg, (*Params)[I]);
      else
        consume(Arg);
    }
    if (!Method)
      return {preciseInt(), NoEnt};
    unsigned Ret = RetEnts.at(Method);
    ++Entities[Ret].Uses;
    return {adaptType(Recv.Ty.Q, Method->ReturnType), Ret};
  }

  case ExprKind::Cast: {
    // Casts convert the base type but move the value unchanged; demand
    // flows through them.
    const auto &Cast = static_cast<const CastExpr &>(E);
    Flow Value = visit(*Cast.Value);
    return {Cast.Target, Value.Ent};
  }

  case ExprKind::Endorse: {
    const auto &End = static_cast<const EndorseExpr &>(E);
    Flow Value = visit(*End.Value);
    // The gate: the operand is consumed but demand does NOT propagate
    // into it. The result gets its own entity so we can later ask
    // whether the endorsed value ever reached a precise use.
    consume(Value);
    Type Result = Value.Ty;
    Result.Q = Qual::Precise;
    unsigned Ent = makeEntity(Entity::Kind::EndorseVal, "", Result, E.loc());
    Sites.push_back({E.loc(), Value.Ty.Q, Ent});
    return {Result, Ent};
  }

  case ExprKind::Binary: {
    const auto &Bin = static_cast<const BinaryExpr &>(E);
    Flow Lhs = visit(*Bin.Lhs);
    Flow Rhs = visit(*Bin.Rhs);
    return joinFlows(Lhs, Rhs, binaryType(Bin.Op, Lhs.Ty, Rhs.Ty), E.loc());
  }
  case ExprKind::Unary: {
    const auto &Un = static_cast<const UnaryExpr &>(E);
    Flow Value = visit(*Un.Value);
    Type Result = Un.Op == UnaryOp::Not
                      ? Type::makePrim(Value.Ty.Q, BaseKind::Bool)
                      : Value.Ty;
    return {Result, Value.Ent};
  }

  case ExprKind::If: {
    const auto &If = static_cast<const IfExpr &>(E);
    Flow Cond = visit(*If.Cond);
    link(Cond, Sink); // Conditions are precise.
    Flow Then = visit(*If.Then);
    Flow Else = visit(*If.Else);
    Type Result = Then.Ty;
    Result.Q = joinQual(Then.Ty.Q, Else.Ty.Q);
    if (Result.isArray())
      Result.ElemQual = joinQual(Then.Ty.ElemQual, Else.Ty.ElemQual);
    return joinFlows(Then, Else, Result, E.loc());
  }
  case ExprKind::While: {
    const auto &While = static_cast<const WhileExpr &>(E);
    Flow Cond = visit(*While.Cond);
    link(Cond, Sink);
    visit(*While.Body); // The body's value is discarded.
    return {preciseInt(), NoEnt};
  }

  case ExprKind::Block: {
    const auto &Block = static_cast<const BlockExpr &>(E);
    Scopes.emplace_back();
    Flow Last = {preciseInt(), NoEnt};
    for (const BlockExpr::Item &Item : Block.Items) {
      Flow Value = visit(*Item.Value);
      if (Item.IsLet) {
        unsigned Ent =
            makeEntity(Entity::Kind::Local, "local '" + Item.LetName + "'",
                       Item.LetType, Item.Value->loc());
        link(Value, Ent);
        Scopes.back()[Item.LetName] = {Ent, Item.LetType};
        Last = {Item.LetType, Ent};
      } else {
        Last = Value; // Non-final values are simply dropped.
      }
    }
    Scopes.pop_back();
    return Last;
  }

  case ExprKind::AssignLocal: {
    const auto &Assign = static_cast<const AssignLocalExpr &>(E);
    Flow Value = visit(*Assign.Value);
    LocalInfo *Local = resolve(Assign.Name);
    if (!Local) {
      consume(Value);
      return Value;
    }
    link(Value, Local->Ent);
    // Like field writes: route the assignment's own value through the
    // local's entity.
    return {Local->Ty, Local->Ent};
  }
  }
  return {preciseInt(), NoEnt};
}

void DemandAnalysis::propagate() {
  std::vector<unsigned> Work{Sink};
  Entities[Sink].Demanded = true;
  while (!Work.empty()) {
    unsigned To = Work.back();
    Work.pop_back();
    for (unsigned From : Feeders[To])
      if (!Entities[From].Demanded) {
        Entities[From].Demanded = true;
        Work.push_back(From);
      }
  }
}

void DemandAnalysis::emitFindings(std::vector<LintFinding> &Out) const {
  // Endorsement audit, in visitation order.
  for (const EndorseSite &Site : Sites) {
    const Entity &Ent = Entities[Site.Ent];
    if (Site.SourceQ == Qual::Precise)
      Out.push_back({LintPass::Endorsement, LintSeverity::Warning, Site.Loc,
                     "endorse() of an already-precise value is redundant"});
    else if (!Ent.Consumed)
      Out.push_back({LintPass::Endorsement, LintSeverity::Warning, Site.Loc,
                     "the result of endorse() is discarded; the endorsement "
                     "gates nothing"});
    else if (!Ent.Demanded)
      Out.push_back({LintPass::Endorsement, LintSeverity::Warning, Site.Loc,
                     "the endorsed value never reaches a precise use; the "
                     "endorsement is unnecessary (its consumers can stay "
                     "approximate)"});
  }

  // Precision slack, in entity-creation order. Only declared-precise
  // data entities that are actually used qualify; undemanded means no
  // value of theirs ever reaches the precise world.
  for (const Entity &Ent : Entities) {
    if (Ent.Demanded || Ent.Uses == 0)
      continue;
    if (Ent.K != Entity::Kind::Local && Ent.K != Entity::Kind::Param &&
        Ent.K != Entity::Kind::Field && Ent.K != Entity::Kind::Return)
      continue;
    if (valueQual(Ent.DeclType) != Qual::Precise ||
        !(Ent.DeclType.isPrimitive() || Ent.DeclType.isArray()))
      continue;
    std::string Message;
    if (Ent.K == Entity::Kind::Return)
      Message = "the result of " + Ent.Display +
                " is never used precisely; the return type can be @approx";
    else if (Ent.DeclType.isArray())
      Message = "the elements of " + Ent.Display +
                " never flow into a precise sink; the element type can be "
                "@approx";
    else
      Message = "precise " + Ent.Display +
                " never flows into a precise sink; it can be declared "
                "@approx";
    Out.push_back({LintPass::PrecisionSlack, LintSeverity::Suggestion,
                   Ent.Loc, std::move(Message)});
  }
}

//===----------------------------------------------------------------------===//
// Dead-value pass: liveness over the FEnerJ CFG.
//===----------------------------------------------------------------------===//

struct FjLivenessDomain {
  using Value = BitVec;

  const FenerjCfg &Cfg;

  Value init() const { return BitVec(Cfg.vars().size()); }
  Value boundary() const { return BitVec(Cfg.vars().size()); }
  bool join(Value &Into, const Value &From) const {
    return Into.uniteWith(From);
  }
  Value transfer(unsigned Block, const Value &LiveOut) const {
    BitVec Live = LiveOut;
    const std::vector<FjEvent> &Events = Cfg.block(Block).Events;
    for (auto It = Events.rbegin(); It != Events.rend(); ++It) {
      if (It->K == FjEvent::Kind::Def)
        Live.clear(It->Var);
      else if (It->K == FjEvent::Kind::Use)
        Live.set(It->Var);
    }
    return Live;
  }
};

void deadValueBody(const Expr &Body, const std::vector<ParamDecl> *Params,
                   SourceLoc FallbackLoc, std::vector<LintFinding> &Out) {
  FenerjCfg Cfg = FenerjCfg::build(Body, Params);
  size_t NumVars = Cfg.vars().size();
  if (NumVars == 0)
    return;

  std::vector<unsigned> UseCount(NumVars, 0);
  for (unsigned Block = 0; Block < Cfg.blockCount(); ++Block)
    for (const FjEvent &Event : Cfg.block(Block).Events)
      if (Event.K == FjEvent::Kind::Use)
        ++UseCount[Event.Var];

  FjLivenessDomain Domain{Cfg};
  DataflowResult<FjLivenessDomain> Live =
      solveDataflow(Cfg, Direction::Backward, Domain);

  auto locOf = [&](const FjEvent &Event, const FjVariable &Var) {
    if (Event.Loc.Line != 0)
      return Event.Loc;
    if (Var.Loc.Line != 0)
      return Var.Loc;
    return FallbackLoc;
  };

  // A Def whose variable is dead immediately after it stores a value no
  // path ever reads. Skipped for never-used variables, which get one
  // finding at the declaration instead.
  for (unsigned Block = 0; Block < Cfg.blockCount(); ++Block) {
    BitVec LiveNow = Live.Out[Block];
    const std::vector<FjEvent> &Events = Cfg.block(Block).Events;
    for (auto It = Events.rbegin(); It != Events.rend(); ++It) {
      if (It->K == FjEvent::Kind::Def) {
        const FjVariable &Var = Cfg.vars()[It->Var];
        if (!LiveNow.test(It->Var) && UseCount[It->Var] > 0)
          Out.push_back(
              {LintPass::DeadValue, LintSeverity::Warning, locOf(*It, Var),
               Var.IsParam
                   ? "the initial value of parameter '" + Var.Name +
                         "' is always overwritten before it is read"
                   : "the value assigned to '" + Var.Name +
                         "' here is never read"});
        LiveNow.clear(It->Var);
      } else if (It->K == FjEvent::Kind::Use) {
        LiveNow.set(It->Var);
      }
    }
  }

  for (size_t Index = 0; Index < NumVars; ++Index) {
    if (UseCount[Index] != 0)
      continue;
    const FjVariable &Var = Cfg.vars()[Index];
    SourceLoc Loc = Var.Loc.Line != 0 ? Var.Loc : FallbackLoc;
    Out.push_back({LintPass::DeadValue, LintSeverity::Warning, Loc,
                   (Var.IsParam ? "parameter '" : "local '") + Var.Name +
                       "' is never used"});
  }
}

void deadValuePass(const Program &Prog, std::vector<LintFinding> &Out) {
  for (const ClassDecl &C : Prog.Classes)
    for (const MethodDecl &M : C.Methods)
      deadValueBody(*M.Body, &M.Params, M.Loc, Out);
  deadValueBody(*Prog.Main, nullptr, {}, Out);
}

//===----------------------------------------------------------------------===//
// isa-flow pass: compile, assemble, run the flow-sensitive verifier.
//===----------------------------------------------------------------------===//

void isaPass(const Program &Prog, LintResult &Result) {
  CodegenResult Generated = compileToIsa(Prog);
  if (!Generated.Ok) {
    Result.IsaChecked = false;
    Result.IsaSkipReason = Generated.Error;
    return;
  }
  Result.IsaChecked = true;
  std::vector<std::string> AsmErrors;
  std::optional<isa::IsaProgram> Program =
      isa::assemble(Generated.Assembly, AsmErrors);
  if (!Program) {
    for (const std::string &Error : AsmErrors)
      Result.Findings.push_back(
          {LintPass::IsaFlow, LintSeverity::Error, {0, 0},
           "generated assembly does not assemble: " + Error});
    return;
  }
  IsaFlowResult Flow = verifyFlow(*Program);
  for (const isa::VerifyError &Error : Flow.Errors)
    Result.Findings.push_back({LintPass::IsaFlow, LintSeverity::Error,
                               {Error.Line, 0}, Error.Message});
  for (const IsaFlowWarning &Warning : Flow.Warnings)
    Result.Findings.push_back({LintPass::IsaFlow, LintSeverity::Warning,
                               {Warning.Line, 0}, Warning.Message});
}

void jsonEscape(std::string &Out, std::string_view Text) {
  static const char Hex[] = "0123456789abcdef";
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        Out += "\\u00";
        Out += Hex[(C >> 4) & 0xF];
        Out += Hex[C & 0xF];
      } else {
        Out += C;
      }
    }
  }
}

} // namespace

LintResult runLint(const Program &Prog, const ClassTable &Table,
                   const LintOptions &Options) {
  LintResult Result;
  DemandAnalysis(Prog, Table).run(Result.Findings);
  deadValuePass(Prog, Result.Findings);
  if (Options.CheckIsa)
    isaPass(Prog, Result);
  else
    Result.IsaSkipReason = "disabled";
  interprocFlowPass(Prog, Table, Result.Findings);

  std::stable_sort(Result.Findings.begin(), Result.Findings.end(),
                   lintFindingLess);
  return Result;
}

std::string renderLintText(const LintResult &Result,
                           std::string_view FileName) {
  std::string Out;
  for (const LintFinding &F : Result.Findings) {
    Out += FileName;
    Out += ':' + std::to_string(F.Loc.Line) + ':' +
           std::to_string(F.Loc.Column) + ": ";
    Out += lintSeverityName(F.Severity);
    Out += ": [";
    Out += lintPassName(F.Pass);
    Out += "] " + F.Message + '\n';
  }
  if (!Result.IsaChecked && !Result.IsaSkipReason.empty())
    Out += "note: isa-flow pass skipped: " + Result.IsaSkipReason + '\n';
  unsigned Errors = 0, Warnings = 0, Suggestions = 0;
  for (const LintFinding &F : Result.Findings) {
    if (F.Severity == LintSeverity::Error)
      ++Errors;
    else if (F.Severity == LintSeverity::Warning)
      ++Warnings;
    else
      ++Suggestions;
  }
  Out += std::to_string(Result.Findings.size()) + " finding(s): " +
         std::to_string(Errors) + " error(s), " + std::to_string(Warnings) +
         " warning(s), " + std::to_string(Suggestions) + " suggestion(s)\n";
  return Out;
}

std::string renderLintJson(const LintResult &Result,
                           std::string_view FileName) {
  std::string Json = "{\"tool\":\"enerj-lint\",\"version\":1,\"file\":\"";
  jsonEscape(Json, FileName);
  Json += "\",\"findings\":[";
  bool First = true;
  for (const LintFinding &F : Result.Findings) {
    if (!First)
      Json += ',';
    First = false;
    Json += "{\"pass\":\"";
    Json += lintPassName(F.Pass);
    Json += "\",\"severity\":\"";
    Json += lintSeverityName(F.Severity);
    Json += "\",\"line\":" + std::to_string(F.Loc.Line);
    Json += ",\"column\":" + std::to_string(F.Loc.Column);
    Json += ",\"message\":\"";
    jsonEscape(Json, F.Message);
    Json += "\"}";
  }
  Json += "],\"counts\":{";
  const LintPass Passes[] = {LintPass::Endorsement, LintPass::PrecisionSlack,
                             LintPass::DeadValue, LintPass::IsaFlow,
                             LintPass::InterprocFlow};
  for (LintPass Pass : Passes) {
    if (Pass != LintPass::Endorsement)
      Json += ',';
    Json += '"';
    Json += lintPassName(Pass);
    Json += "\":" + std::to_string(Result.count(Pass));
  }
  unsigned IsaErrors = 0;
  for (const LintFinding &F : Result.Findings)
    if (F.Pass == LintPass::IsaFlow && F.Severity == LintSeverity::Error)
      ++IsaErrors;
  Json += "},\"isa\":{\"checked\":";
  Json += Result.IsaChecked ? "true" : "false";
  Json += ",\"skipReason\":\"";
  jsonEscape(Json, Result.IsaSkipReason);
  Json += "\",\"errors\":" + std::to_string(IsaErrors) + "}}";
  return Json;
}

} // namespace analysis
} // namespace enerj
