//===- analysis/dataflow.h - Generic worklist dataflow engine ---*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic iterative dataflow engine shared by every static analysis in
/// the repository: the flow-sensitive ISA verifier, the enerj-lint passes
/// over FEnerJ method bodies, and any future whole-program audit. The
/// engine is deliberately small: a CFG-shaped graph, a direction, and a
/// *domain* describing the lattice.
///
/// Graph concept (satisfied by IsaCfg and FenerjCfg):
///
/// \code
///   unsigned blockCount() const;
///   const std::vector<unsigned> &succs(unsigned Block) const;
///   const std::vector<unsigned> &preds(unsigned Block) const;
/// \endcode
///
/// Block 0 is the entry block. Blocks without successors are exits.
///
/// Domain concept:
///
/// \code
///   using Value = ...;                         // lattice element, with ==
///   Value init() const;                        // optimistic start value
///   Value boundary() const;                    // entry (fwd) / exit (bwd)
///   bool join(Value &Into, const Value &From); // accumulate; return changed
///   Value transfer(unsigned Block, const Value &In) const;
/// \endcode
///
/// For a forward analysis the result's In[b] is the value at block entry
/// and Out[b] = transfer(b, In[b]) the value at block exit; a backward
/// analysis mirrors this (Out[b] at block exit, In[b] = transfer(b,
/// Out[b]) at block entry).
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_ANALYSIS_DATAFLOW_H
#define ENERJ_ANALYSIS_DATAFLOW_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace enerj {
namespace analysis {

/// A dynamically sized bit set used as the lattice element of the
/// set-based analyses (liveness, maybe-uninitialized, reachability).
class BitVec {
public:
  BitVec() = default;
  explicit BitVec(unsigned Bits) : Bits(Bits), Words((Bits + 63) / 64, 0) {}

  [[nodiscard]] unsigned size() const { return Bits; }

  void set(unsigned Index) { Words[Index >> 6] |= One << (Index & 63); }
  void clear(unsigned Index) { Words[Index >> 6] &= ~(One << (Index & 63)); }
  [[nodiscard]] bool test(unsigned Index) const {
    return (Words[Index >> 6] >> (Index & 63)) & 1;
  }

  void setAll() {
    for (uint64_t &Word : Words)
      Word = ~uint64_t(0);
    trim();
  }

  /// Set-union; returns true when this changed.
  bool uniteWith(const BitVec &Other) {
    bool Changed = false;
    for (size_t Word = 0; Word < Words.size(); ++Word) {
      uint64_t Merged = Words[Word] | Other.Words[Word];
      Changed |= Merged != Words[Word];
      Words[Word] = Merged;
    }
    return Changed;
  }

  bool operator==(const BitVec &Other) const { return Words == Other.Words; }

private:
  static constexpr uint64_t One = 1;

  void trim() {
    if (Bits & 63)
      Words.back() &= (One << (Bits & 63)) - 1;
  }

  unsigned Bits = 0;
  std::vector<uint64_t> Words;
};

enum class Direction { Forward, Backward };

template <typename Domain> struct DataflowResult {
  /// Value at each block's entry.
  std::vector<typename Domain::Value> In;
  /// Value at each block's exit.
  std::vector<typename Domain::Value> Out;
};

/// Runs \p Dom to fixpoint over \p Graph with a worklist. Terminates for
/// any monotone domain over a finite-height lattice.
template <typename Domain, typename Graph>
DataflowResult<Domain> solveDataflow(const Graph &G, Direction Dir,
                                     const Domain &Dom) {
  unsigned NumBlocks = G.blockCount();
  DataflowResult<Domain> Result;
  Result.In.assign(NumBlocks, Dom.init());
  Result.Out.assign(NumBlocks, Dom.init());
  if (NumBlocks == 0)
    return Result;

  std::deque<unsigned> Work;
  std::vector<bool> Queued(NumBlocks, true);
  // Seed in roughly the processing order to converge quickly.
  for (unsigned Block = 0; Block < NumBlocks; ++Block)
    Work.push_back(Dir == Direction::Forward ? Block
                                             : NumBlocks - 1 - Block);

  while (!Work.empty()) {
    unsigned Block = Work.front();
    Work.pop_front();
    Queued[Block] = false;

    if (Dir == Direction::Forward) {
      typename Domain::Value In =
          Block == 0 ? Dom.boundary() : Dom.init();
      for (unsigned Pred : G.preds(Block))
        Dom.join(In, Result.Out[Pred]);
      Result.In[Block] = std::move(In);
      typename Domain::Value Out = Dom.transfer(Block, Result.In[Block]);
      if (!(Out == Result.Out[Block])) {
        Result.Out[Block] = std::move(Out);
        for (unsigned Succ : G.succs(Block))
          if (!Queued[Succ]) {
            Queued[Succ] = true;
            Work.push_back(Succ);
          }
      }
    } else {
      typename Domain::Value Out = G.succs(Block).empty()
                                       ? Dom.boundary()
                                       : Dom.init();
      for (unsigned Succ : G.succs(Block))
        Dom.join(Out, Result.In[Succ]);
      Result.Out[Block] = std::move(Out);
      typename Domain::Value In = Dom.transfer(Block, Result.Out[Block]);
      if (!(In == Result.In[Block])) {
        Result.In[Block] = std::move(In);
        for (unsigned Pred : G.preds(Block))
          if (!Queued[Pred]) {
            Queued[Pred] = true;
            Work.push_back(Pred);
          }
      }
    }
  }
  return Result;
}

} // namespace analysis
} // namespace enerj

#endif // ENERJ_ANALYSIS_DATAFLOW_H
