//===- analysis/isa_cfg.cpp - Basic-block CFG over ISA programs -----------===//

#include "analysis/isa_cfg.h"

#include <algorithm>

using namespace enerj;
using namespace enerj::analysis;

bool enerj::analysis::isCondBranch(isa::Opcode Op) {
  switch (Op) {
  case isa::Opcode::Beq:
  case isa::Opcode::Bne:
  case isa::Opcode::Blt:
  case isa::Opcode::Ble:
  case isa::Opcode::Fbeq:
  case isa::Opcode::Fbne:
  case isa::Opcode::Fblt:
  case isa::Opcode::Fble:
    return true;
  default:
    return false;
  }
}

bool enerj::analysis::endsBlock(isa::Opcode Op) {
  return isCondBranch(Op) || Op == isa::Opcode::Jmp ||
         Op == isa::Opcode::Halt;
}

void IsaCfg::addEdge(unsigned From, unsigned To) {
  std::vector<unsigned> &Succs = Blocks[From].Succs;
  if (std::find(Succs.begin(), Succs.end(), To) != Succs.end())
    return; // A branch whose target is its own fallthrough.
  Succs.push_back(To);
  Blocks[To].Preds.push_back(From);
}

IsaCfg::IsaCfg(const isa::IsaProgram &Program) : Program(&Program) {
  const std::vector<isa::Instruction> &Instrs = Program.Instructions;
  size_t Size = Instrs.size();
  BlockOf.assign(Size, 0);
  if (Size == 0)
    return;

  // Pass 1: leaders.
  std::vector<bool> Leader(Size, false);
  Leader[0] = true;
  for (size_t Index = 0; Index < Size; ++Index) {
    const isa::Instruction &I = Instrs[Index];
    if (!endsBlock(I.Op))
      continue;
    if (I.Op != isa::Opcode::Halt && I.Imm >= 0 &&
        static_cast<uint64_t>(I.Imm) < Size)
      Leader[static_cast<size_t>(I.Imm)] = true;
    if (Index + 1 < Size)
      Leader[Index + 1] = true;
  }

  // Pass 2: block ranges.
  for (size_t Index = 0; Index < Size; ++Index) {
    if (Leader[Index]) {
      IsaBlock Block;
      Block.Begin = Index;
      Blocks.push_back(Block);
    }
    Blocks.back().End = Index + 1;
    BlockOf[Index] = static_cast<unsigned>(Blocks.size() - 1);
  }

  // Pass 3: edges. A target of Instructions.size() is the architected
  // clean-halt exit; invalid targets get no edge (the verifier rejects
  // them as errors).
  for (unsigned BlockIdx = 0; BlockIdx < Blocks.size(); ++BlockIdx) {
    const isa::Instruction &Last = Instrs[Blocks[BlockIdx].End - 1];
    bool FallsThrough = true;
    if (isCondBranch(Last.Op) || Last.Op == isa::Opcode::Jmp) {
      if (Last.Imm >= 0 && static_cast<uint64_t>(Last.Imm) < Size)
        addEdge(BlockIdx, BlockOf[static_cast<size_t>(Last.Imm)]);
      FallsThrough = isCondBranch(Last.Op);
    } else if (Last.Op == isa::Opcode::Halt) {
      FallsThrough = false;
    }
    if (FallsThrough && Blocks[BlockIdx].End < Size)
      addEdge(BlockIdx, BlockOf[Blocks[BlockIdx].End]);
  }
}

std::vector<bool> IsaCfg::reachableBlocks() const {
  std::vector<bool> Reachable(Blocks.size(), false);
  if (Blocks.empty())
    return Reachable;
  std::vector<unsigned> Stack{0};
  Reachable[0] = true;
  while (!Stack.empty()) {
    unsigned Block = Stack.back();
    Stack.pop_back();
    for (unsigned Succ : Blocks[Block].Succs)
      if (!Reachable[Succ]) {
        Reachable[Succ] = true;
        Stack.push_back(Succ);
      }
  }
  return Reachable;
}
