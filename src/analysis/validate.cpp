//===- analysis/validate.cpp - Translation validation ---------------------===//

#include "analysis/validate.h"

#include "analysis/isa_cfg.h"
#include "analysis/opt/ssa.h"
#include "support/bits.h"

#include <cassert>
#include <cmath>
#include <cstdint>
#include <queue>

using namespace enerj;
using namespace enerj::analysis;
using namespace enerj::analysis::opt;

namespace {

using isa::Opcode;

bool isCommutativeInt(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Mul:
  case Opcode::Seq:
  case Opcode::Sne:
  case Opcode::And:
  case Opcode::Or:
    return true;
  default:
    return false;
  }
}

bool isFoldable(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::Seq:
  case Opcode::Sne:
  case Opcode::Slt:
  case Opcode::Sle:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Fadd:
  case Opcode::Fsub:
  case Opcode::Fmul:
  case Opcode::Fdiv:
  case Opcode::Cvt:
  case Opcode::Cvti:
    return true;
  default:
    return false;
  }
}

/// Mirrors Machine::run exactly for the precise (non-`.a`) semantics of
/// the pure value ops. Arguments and result are raw bit patterns.
uint64_t foldPrecise(Opcode Op, const std::vector<uint64_t> &A) {
  auto I = [](uint64_t Bits) { return fromBits<int64_t>(Bits); };
  auto F = [](uint64_t Bits) { return fromBits<double>(Bits); };
  switch (Op) {
  case Opcode::Add:
    return toBits(wrapAdd(I(A[0]), I(A[1])));
  case Opcode::Sub:
    return toBits(wrapSub(I(A[0]), I(A[1])));
  case Opcode::Mul:
    return toBits(wrapMul(I(A[0]), I(A[1])));
  case Opcode::Div:
    return toBits(wrapDiv(I(A[0]), I(A[1]))); // Caller rules out 0.
  case Opcode::Rem:
    return toBits(wrapRem(I(A[0]), I(A[1])));
  case Opcode::Seq:
    return toBits<int64_t>(I(A[0]) == I(A[1]) ? 1 : 0);
  case Opcode::Sne:
    return toBits<int64_t>(I(A[0]) != I(A[1]) ? 1 : 0);
  case Opcode::Slt:
    return toBits<int64_t>(I(A[0]) < I(A[1]) ? 1 : 0);
  case Opcode::Sle:
    return toBits<int64_t>(I(A[0]) <= I(A[1]) ? 1 : 0);
  case Opcode::And:
    return toBits<int64_t>(I(A[0]) & I(A[1]));
  case Opcode::Or:
    return toBits<int64_t>(I(A[0]) | I(A[1]));
  case Opcode::Fadd:
    return toBits(F(A[0]) + F(A[1]));
  case Opcode::Fsub:
    return toBits(F(A[0]) - F(A[1]));
  case Opcode::Fmul:
    return toBits(F(A[0]) * F(A[1]));
  case Opcode::Fdiv:
    return toBits(F(A[0]) / F(A[1])); // Precise FP div-by-zero is IEEE.
  case Opcode::Cvt:
    return toBits(static_cast<double>(I(A[0])));
  case Opcode::Cvti: {
    // The machine's saturating converter (NaN yields 0).
    double Value = F(A[0]);
    int64_t Truncated = 0;
    if (std::isfinite(Value)) {
      if (Value >= 9.2233720368547758e18)
        Truncated = INT64_MAX;
      else if (Value <= -9.2233720368547758e18)
        Truncated = INT64_MIN;
      else
        Truncated = static_cast<int64_t>(Value);
    }
    return toBits(Truncated);
  }
  default:
    assert(false && "not foldable");
    return 0;
  }
}

} // namespace

std::optional<uint64_t>
enerj::analysis::foldPreciseOp(Opcode Op,
                               const std::vector<uint64_t> &Args) {
  if (!isFoldable(Op))
    return std::nullopt;
  if ((Op == Opcode::Div || Op == Opcode::Rem) && Args[1] == 0)
    return std::nullopt; // Would trap; the instruction must stay.
  return foldPrecise(Op, Args);
}

unsigned TermTable::intern(Node N) {
  auto Key = std::make_tuple(N.Op, N.Approx, N.Bits, N.Args);
  auto [It, Inserted] =
      Interned.emplace(std::move(Key), static_cast<unsigned>(Nodes.size()));
  if (Inserted)
    Nodes.push_back(std::move(N));
  return It->second;
}

unsigned TermTable::mkConst(uint64_t Bits) {
  Node N;
  N.K = Kind::Const;
  N.Op = Opcode::Li; // Tag constants apart from ops in the intern key.
  N.Bits = Bits;
  return intern(std::move(N));
}

unsigned TermTable::mkVar() {
  Node N;
  N.K = Kind::Var;
  N.Op = Opcode::Halt; // Tag.
  N.Bits = NextVar++;
  return intern(std::move(N));
}

unsigned TermTable::mkOp(Opcode Op, bool Approx,
                         std::vector<unsigned> Args) {
  // Commutative integer ops canonicalize operand order; sound even for
  // `.a` variants (the timing-error model perturbs the *result*, which
  // is operand-order independent).
  if (isCommutativeInt(Op) && Args.size() == 2 && Args[0] > Args[1])
    std::swap(Args[0], Args[1]);

  // Precise subtraction of a constant normalizes to addition of its
  // negation (exact in two's complement, including INT64_MIN), matching
  // the Addi normalization so sub→addi strength reduction validates.
  if (Op == Opcode::Sub && !Approx && Args.size() == 2) {
    if (auto C = constBits(Args[1]))
      return mkOp(Opcode::Add, false,
                  {Args[0], mkConst(toBits(wrapNeg(fromBits<int64_t>(*C))))});
  }

  if (!Approx && isFoldable(Op)) {
    bool AllConst = true;
    std::vector<uint64_t> Bits;
    for (unsigned Arg : Args) {
      auto C = constBits(Arg);
      if (!C) {
        AllConst = false;
        break;
      }
      Bits.push_back(*C);
    }
    bool TrapsOnZero = Op == Opcode::Div || Op == Opcode::Rem;
    if (AllConst && !(TrapsOnZero && Bits[1] == 0))
      return mkConst(foldPrecise(Op, Bits));
  }
  Node N;
  N.K = Kind::Op;
  N.Op = Op;
  N.Approx = Approx;
  N.Args = std::move(Args);
  return intern(std::move(N));
}

void enerj::analysis::stepSymbolic(TermTable &Terms, SymState &State,
                                   const isa::Instruction &I,
                                   std::vector<SymEvent> *Events) {
  auto Emit = [&](SymEvent E) {
    if (Events)
      Events->push_back(E);
  };
  auto IntC = [&](int64_t Value) { return Terms.mkConst(toBits(Value)); };
  unsigned FpBase = isa::NumIntRegs;

  switch (I.Op) {
  case Opcode::Li:
    State.Reg[I.Rd] = IntC(I.Imm);
    break;
  case Opcode::Lfi:
    State.Reg[FpBase + I.Rd] = Terms.mkConst(toBits(I.FpImm));
    break;
  case Opcode::Mv:
  case Opcode::Endorse:
    // At level None an endorsement is a copy; the *discipline* around it
    // is enforced by the UF modeling of `.a` ops plus re-verification.
    State.Reg[I.Rd] = State.Reg[I.Ra];
    break;
  case Opcode::Fmv:
  case Opcode::Fendorse:
    State.Reg[FpBase + I.Rd] = State.Reg[FpBase + I.Ra];
    break;

  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Seq:
  case Opcode::Sne:
  case Opcode::Slt:
  case Opcode::Sle:
  case Opcode::And:
  case Opcode::Or:
    State.Reg[I.Rd] =
        Terms.mkOp(I.Op, I.Approx, {State.Reg[I.Ra], State.Reg[I.Rb]});
    break;
  case Opcode::Addi:
    // Normalized to Add with a constant operand, so strength-reduced
    // forms compare equal.
    State.Reg[I.Rd] =
        Terms.mkOp(Opcode::Add, I.Approx, {State.Reg[I.Ra], IntC(I.Imm)});
    break;
  case Opcode::Div:
  case Opcode::Rem: {
    unsigned Divisor = State.Reg[I.Rb];
    if (!I.Approx) {
      auto C = Terms.constBits(Divisor);
      bool ProvablySafe = C && *C != 0;
      if (!ProvablySafe)
        Emit({SymEvent::Type::TrapDiv, I.Op, false, 0, Divisor});
    }
    State.Reg[I.Rd] =
        Terms.mkOp(I.Op, I.Approx, {State.Reg[I.Ra], Divisor});
    break;
  }

  case Opcode::Fadd:
  case Opcode::Fsub:
  case Opcode::Fmul:
  case Opcode::Fdiv:
    State.Reg[FpBase + I.Rd] = Terms.mkOp(
        I.Op, I.Approx,
        {State.Reg[FpBase + I.Ra], State.Reg[FpBase + I.Rb]});
    break;
  case Opcode::Cvt:
    State.Reg[FpBase + I.Rd] =
        Terms.mkOp(I.Op, I.Approx, {State.Reg[I.Ra]});
    break;
  case Opcode::Cvti:
    State.Reg[I.Rd] =
        Terms.mkOp(I.Op, I.Approx, {State.Reg[FpBase + I.Ra]});
    break;

  case Opcode::Lw:
  case Opcode::Flw: {
    unsigned Addr =
        Terms.mkOp(Opcode::Add, false, {State.Reg[I.Ra], IntC(I.Imm)});
    // Loads trap identically regardless of destination file, so the
    // obligation is canonicalized to Lw.
    Emit({SymEvent::Type::TrapMem, Opcode::Lw, I.Approx, Addr, 0});
    std::vector<unsigned> Args{Addr, State.PreciseMem};
    if (I.Approx) // precise <: approx — `.a` loads may read either region.
      Args.push_back(State.ApproxMem);
    unsigned Value = Terms.mkOp(I.Op, I.Approx, std::move(Args));
    if (I.Op == Opcode::Lw)
      State.Reg[I.Rd] = Value;
    else
      State.Reg[FpBase + I.Rd] = Value;
    break;
  }
  case Opcode::Sw:
  case Opcode::Fsw: {
    unsigned Addr =
        Terms.mkOp(Opcode::Add, false, {State.Reg[I.Ra], IntC(I.Imm)});
    unsigned Value = I.Op == Opcode::Sw ? State.Reg[I.Rd]
                                        : State.Reg[FpBase + I.Rd];
    Emit({SymEvent::Type::Store, I.Op, I.Approx, Addr, Value});
    // A successful approximate store writes the approximate region only;
    // a precise one the precise region.
    if (I.Approx)
      State.ApproxMem =
          Terms.mkOp(I.Op, true, {State.ApproxMem, Addr, Value});
    else
      State.PreciseMem =
          Terms.mkOp(I.Op, false, {State.PreciseMem, Addr, Value});
    break;
  }

  default:
    // Terminators never reach here (OptBlock keeps them out of Body).
    assert(!endsBlock(I.Op) && "terminator in a block body");
    break;
  }
}

namespace {

std::vector<bool> reachableFrom(const OptProgram &P) {
  std::vector<bool> Seen(P.blockCount(), false);
  std::queue<unsigned> Work;
  Seen[0] = true;
  Work.push(0);
  while (!Work.empty()) {
    unsigned Block = Work.front();
    Work.pop();
    for (unsigned Succ : P.succs(Block))
      if (!Seen[Succ]) {
        Seen[Succ] = true;
        Work.push(Succ);
      }
  }
  return Seen;
}

/// True iff the register (flattened) is in the precise half of its file.
bool isPreciseFlat(unsigned Flat) {
  return (Flat % isa::NumIntRegs) < isa::FirstApproxReg;
}

struct BlockExec {
  SymState Exit;
  std::vector<SymEvent> Events;
};

BlockExec execBlock(TermTable &Terms, const SymState &Entry,
                    const OptBlock &B) {
  BlockExec R;
  R.Exit = Entry;
  for (const isa::Instruction &I : B.Body)
    stepSymbolic(Terms, R.Exit, I, &R.Events);
  return R;
}

std::string blockTag(unsigned Block) {
  return "block " + std::to_string(Block);
}

} // namespace

ValidationResult
enerj::analysis::validateRewrite(const OptProgram &Original,
                                 const OptProgram &Optimized,
                                 const BlockFacts &Facts) {
  auto Fail = [](std::string Message) {
    return ValidationResult{false, std::move(Message)};
  };

  // --- Structure: the CFG skeleton is immutable by contract.
  if (Original.PreciseWords != Optimized.PreciseWords ||
      Original.ApproxWords != Optimized.ApproxWords)
    return Fail("data segment geometry changed");
  if (Original.Blocks.size() != Optimized.Blocks.size())
    return Fail("block count changed");
  for (size_t Block = 0; Block < Original.Blocks.size(); ++Block) {
    const OptBlock &A = Original.Blocks[Block];
    const OptBlock &B = Optimized.Blocks[Block];
    if (A.Term.has_value() != B.Term.has_value())
      return Fail(blockTag(Block) + ": terminator added or removed");
    if (A.Term &&
        (A.Term->Op != B.Term->Op || A.Term->Approx != B.Term->Approx))
      return Fail(blockTag(Block) + ": terminator opcode changed");
    if (A.Term && A.Term->Op != Opcode::Halt && A.Target != B.Target)
      return Fail(blockTag(Block) + ": branch target changed");
    if (A.Succs != B.Succs)
      return Fail(blockTag(Block) + ": successor edges changed");
  }

  std::vector<bool> Reachable = reachableFrom(Original);
  OptLiveness LiveA = computeLiveness(Original);
  OptLiveness LiveB = computeLiveness(Optimized);

  // --- Per-block symbolic bisimulation from a shared entry state.
  TermTable Terms;
  unsigned N = static_cast<unsigned>(Original.Blocks.size());
  std::vector<SymState> ExitA(N), ExitB(N);
  std::vector<unsigned> EntryConst(NumFlatRegs);

  for (unsigned Block = 0; Block < N; ++Block) {
    // Entry state: fresh unknowns, refined by the pass's claimed facts
    // (equal registers share one unknown; constant registers get the
    // constant). The facts themselves are checked afterwards.
    std::array<unsigned, NumFlatRegs> Group{};
    for (unsigned Reg = 0; Reg < NumFlatRegs; ++Reg)
      Group[Reg] = Reg;
    auto Find = [&](unsigned Reg) {
      while (Group[Reg] != Reg)
        Reg = Group[Reg] = Group[Group[Reg]];
      return Reg;
    };
    std::array<std::optional<uint64_t>, NumFlatRegs> Const{};
    if (Block < Facts.size())
      for (const EntryFact &Fact : Facts[Block]) {
        if (!isPreciseFlat(Fact.Reg) ||
            (!Fact.IsConst && !isPreciseFlat(Fact.Other)))
          return Fail(blockTag(Block) +
                      ": invariant names an approximate register");
        if (Fact.IsConst) {
          unsigned Root = Find(Fact.Reg);
          if (Const[Root] && *Const[Root] != Fact.Bits)
            return Fail(blockTag(Block) + ": contradictory invariants");
          Const[Root] = Fact.Bits;
        } else {
          unsigned RootA = Find(Fact.Reg), RootB = Find(Fact.Other);
          if (RootA == RootB)
            continue;
          if (Const[RootA] && Const[RootB] &&
              *Const[RootA] != *Const[RootB])
            return Fail(blockTag(Block) + ": contradictory invariants");
          Group[RootA] = RootB;
          if (Const[RootA] && !Const[RootB])
            Const[RootB] = Const[RootA];
        }
      }
    SymState Entry;
    std::array<unsigned, NumFlatRegs> RootTerm{};
    RootTerm.fill(InvalidId);
    for (unsigned Reg = 0; Reg < NumFlatRegs; ++Reg) {
      unsigned Root = Find(Reg);
      if (RootTerm[Root] == InvalidId)
        RootTerm[Root] =
            Const[Root] ? Terms.mkConst(*Const[Root]) : Terms.mkVar();
      Entry.Reg[Reg] = RootTerm[Root];
    }
    Entry.PreciseMem = Terms.mkVar();
    Entry.ApproxMem = Terms.mkVar();

    BlockExec A = execBlock(Terms, Entry, Original.Blocks[Block]);
    BlockExec B = execBlock(Terms, Entry, Optimized.Blocks[Block]);
    ExitA[Block] = A.Exit;
    ExitB[Block] = B.Exit;

    // Live-out register equality (union of both programs' liveness; the
    // synthetic exit makes every register live at program exit).
    for (unsigned Reg = 0; Reg < NumFlatRegs; ++Reg) {
      bool Live = LiveA.LiveOut[Block].test(Reg) ||
                  LiveB.LiveOut[Block].test(Reg);
      if (Live && A.Exit.Reg[Reg] != B.Exit.Reg[Reg])
        return Fail(blockTag(Block) + ": live-out register " +
                    RegRef{Reg >= isa::NumIntRegs,
                           Reg % isa::NumIntRegs}
                        .str() +
                    " diverges");
    }
    if (A.Exit.PreciseMem != B.Exit.PreciseMem ||
        A.Exit.ApproxMem != B.Exit.ApproxMem)
      return Fail(blockTag(Block) + ": memory state diverges");

    // Terminator operands must read equal values.
    if (Original.Blocks[Block].Term) {
      std::optional<RegRef> Def;
      std::vector<RegRef> UsesA, UsesB;
      registerOperands(*Original.Blocks[Block].Term, Def, UsesA);
      registerOperands(*Optimized.Blocks[Block].Term, Def, UsesB);
      for (size_t Use = 0; Use < UsesA.size(); ++Use) {
        unsigned FlatA = UsesA[Use].flat();
        unsigned FlatB = UsesB[Use].flat();
        if (A.Exit.Reg[FlatA] != B.Exit.Reg[FlatB])
          return Fail(blockTag(Block) +
                      ": terminator operand diverges");
      }
    }

    // Stores and trap obligations: the optimized sequence must match the
    // original's, except that the original may drop a trap obligation
    // that is a duplicate of an earlier one in the same block (the
    // earlier occurrence already trapped or proved it safe).
    size_t Cursor = 0;
    for (size_t Index = 0; Index < A.Events.size(); ++Index) {
      const SymEvent &E = A.Events[Index];
      if (Cursor < B.Events.size() && E == B.Events[Cursor]) {
        ++Cursor;
        continue;
      }
      bool Droppable = false;
      if (E.T != SymEvent::Type::Store)
        for (size_t Earlier = 0; Earlier < Index && !Droppable; ++Earlier)
          Droppable = A.Events[Earlier] == E;
      if (!Droppable)
        return Fail(blockTag(Block) +
                    (E.T == SymEvent::Type::Store
                         ? ": store sequence diverges"
                         : ": trap obligation dropped or reordered"));
    }
    if (Cursor != B.Events.size())
      return Fail(blockTag(Block) +
                  ": optimized code introduces stores or traps");
  }

  // --- The claimed entry invariants must actually hold: at the machine's
  // --- zero-initialized entry, and at the exit of every reachable
  // --- predecessor, in both programs.
  for (unsigned Block = 0; Block < N && Block < Facts.size(); ++Block) {
    if (Facts[Block].empty())
      continue;
    if (!Reachable[Block])
      continue; // Never executes; the claim obligates nothing.
    for (const EntryFact &Fact : Facts[Block]) {
      if (Block == 0) {
        // Entered with both register files zeroed.
        if (Fact.IsConst && Fact.Bits != 0)
          return Fail("entry block invariant contradicts zero-init");
      }
      for (unsigned Pred : Original.preds(Block)) {
        if (!Reachable[Pred])
          continue;
        for (const SymState *Exit : {&ExitA[Pred], &ExitB[Pred]}) {
          if (Fact.IsConst) {
            if (Exit->Reg[Fact.Reg] != Terms.mkConst(Fact.Bits))
              return Fail(blockTag(Block) +
                          ": constant invariant unproven at pred " +
                          std::to_string(Pred));
          } else if (Exit->Reg[Fact.Reg] != Exit->Reg[Fact.Other]) {
            return Fail(blockTag(Block) +
                        ": equality invariant unproven at pred " +
                        std::to_string(Pred));
          }
        }
      }
    }
  }
  return {};
}
