//===- analysis/isa_flow.cpp - Flow-sensitive ISA verifier ----------------===//

#include "analysis/isa_flow.h"

#include "analysis/dataflow.h"
#include "analysis/isa_cfg.h"

#include <algorithm>

using namespace enerj;
using namespace enerj::analysis;

const char *enerj::analysis::isaWarningKindName(IsaWarningKind Kind) {
  switch (Kind) {
  case IsaWarningKind::UnreachableCode:
    return "unreachable-code";
  case IsaWarningKind::UnreachableViolation:
    return "unreachable-violation";
  case IsaWarningKind::DeadStore:
    return "dead-store";
  case IsaWarningKind::UninitializedRead:
    return "uninitialized-read";
  }
  return "unknown";
}

void enerj::analysis::registerOperands(const isa::Instruction &I,
                                       std::optional<RegRef> &Def,
                                       std::vector<RegRef> &Uses) {
  Def.reset();
  Uses.clear();
  using isa::Opcode;
  switch (I.Op) {
  case Opcode::Li:
    Def = RegRef{false, I.Rd};
    break;
  case Opcode::Lfi:
    Def = RegRef{true, I.Rd};
    break;
  case Opcode::Mv:
  case Opcode::Endorse:
    Def = RegRef{false, I.Rd};
    Uses.push_back({false, I.Ra});
    break;
  case Opcode::Fmv:
  case Opcode::Fendorse:
    Def = RegRef{true, I.Rd};
    Uses.push_back({true, I.Ra});
    break;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::Seq:
  case Opcode::Sne:
  case Opcode::Slt:
  case Opcode::Sle:
  case Opcode::And:
  case Opcode::Or:
    Def = RegRef{false, I.Rd};
    Uses.push_back({false, I.Ra});
    Uses.push_back({false, I.Rb});
    break;
  case Opcode::Addi:
    Def = RegRef{false, I.Rd};
    Uses.push_back({false, I.Ra});
    break;
  case Opcode::Fadd:
  case Opcode::Fsub:
  case Opcode::Fmul:
  case Opcode::Fdiv:
    Def = RegRef{true, I.Rd};
    Uses.push_back({true, I.Ra});
    Uses.push_back({true, I.Rb});
    break;
  case Opcode::Cvt:
    Def = RegRef{true, I.Rd};
    Uses.push_back({false, I.Ra});
    break;
  case Opcode::Cvti:
    Def = RegRef{false, I.Rd};
    Uses.push_back({true, I.Ra});
    break;
  case Opcode::Lw:
    Def = RegRef{false, I.Rd};
    Uses.push_back({false, I.Ra});
    break;
  case Opcode::Flw:
    Def = RegRef{true, I.Rd};
    Uses.push_back({false, I.Ra});
    break;
  case Opcode::Sw:
    Uses.push_back({false, I.Rd});
    Uses.push_back({false, I.Ra});
    break;
  case Opcode::Fsw:
    Uses.push_back({true, I.Rd});
    Uses.push_back({false, I.Ra});
    break;
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Ble:
    Uses.push_back({false, I.Rd});
    Uses.push_back({false, I.Ra});
    break;
  case Opcode::Fbeq:
  case Opcode::Fbne:
  case Opcode::Fblt:
  case Opcode::Fble:
    Uses.push_back({true, I.Rd});
    Uses.push_back({true, I.Ra});
    break;
  case Opcode::Jmp:
  case Opcode::Halt:
    break;
  }
}

namespace {

constexpr unsigned NumFlatRegs = isa::NumIntRegs + isa::NumFpRegs;

/// Backward liveness over registers. Boundary: every register is live at
/// program exit (the machine state is observable — tests and the driver
/// read arbitrary registers after halt).
struct LivenessDomain {
  using Value = BitVec;

  const IsaCfg &Cfg;

  Value init() const { return BitVec(NumFlatRegs); }
  Value boundary() const {
    BitVec All(NumFlatRegs);
    All.setAll();
    return All;
  }
  bool join(Value &Into, const Value &From) const {
    return Into.uniteWith(From);
  }
  Value transfer(unsigned Block, const Value &LiveOut) const {
    BitVec Live = LiveOut;
    const IsaBlock &B = Cfg.block(Block);
    std::optional<RegRef> Def;
    std::vector<RegRef> Uses;
    for (size_t Index = B.End; Index-- > B.Begin;) {
      registerOperands(Cfg.program().Instructions[Index], Def, Uses);
      if (Def)
        Live.clear(Def->flat());
      for (const RegRef &Use : Uses)
        Live.set(Use.flat());
    }
    return Live;
  }
};

/// Forward "maybe uninitialized" over registers: the set of registers
/// that have no definition on some path from entry. r0/f0 start defined
/// (conventional zero registers).
struct MaybeUninitDomain {
  using Value = BitVec;

  const IsaCfg &Cfg;

  Value init() const { return BitVec(NumFlatRegs); }
  Value boundary() const {
    BitVec Uninit(NumFlatRegs);
    Uninit.setAll();
    Uninit.clear(RegRef{false, 0}.flat());
    Uninit.clear(RegRef{true, 0}.flat());
    return Uninit;
  }
  bool join(Value &Into, const Value &From) const {
    return Into.uniteWith(From);
  }
  Value transfer(unsigned Block, const Value &In) const {
    BitVec Uninit = In;
    const IsaBlock &B = Cfg.block(Block);
    std::optional<RegRef> Def;
    std::vector<RegRef> Uses;
    for (size_t Index = B.Begin; Index < B.End; ++Index) {
      registerOperands(Cfg.program().Instructions[Index], Def, Uses);
      if (Def)
        Uninit.clear(Def->flat());
    }
    return Uninit;
  }
};

} // namespace

IsaFlowResult enerj::analysis::verifyFlow(const isa::IsaProgram &Program) {
  IsaFlowResult Result;
  IsaCfg Cfg(Program);
  std::vector<bool> Reachable = Cfg.reachableBlocks();

  auto isReachableInstr = [&](size_t Index) {
    return Index < Program.Instructions.size() &&
           Reachable[Cfg.blockContaining(Index)];
  };

  // Instruction-local discipline rules; violations in unreachable code
  // cannot execute and demote to warnings.
  for (isa::VerifyError &Error : isa::verify(Program)) {
    if (isReachableInstr(Error.InstrIndex)) {
      Result.Errors.push_back(std::move(Error));
    } else {
      Result.Warnings.push_back({IsaWarningKind::UnreachableViolation,
                                 Error.InstrIndex, Error.Line,
                                 "in unreachable code: " + Error.Message});
    }
  }

  // Unreachable blocks, one warning per block at its leader.
  for (unsigned Block = 0; Block < Cfg.blockCount(); ++Block) {
    if (Reachable[Block])
      continue;
    const isa::Instruction &Leader =
        Program.Instructions[Cfg.block(Block).Begin];
    Result.Warnings.push_back(
        {IsaWarningKind::UnreachableCode, Cfg.block(Block).Begin,
         Leader.Line,
         "unreachable code (no path from the entry reaches it)"});
  }

  if (Cfg.blockCount() == 0)
    return Result;

  // Dead stores via backward liveness.
  LivenessDomain Liveness{Cfg};
  DataflowResult<LivenessDomain> Live =
      solveDataflow(Cfg, Direction::Backward, Liveness);
  std::optional<RegRef> Def;
  std::vector<RegRef> Uses;
  for (unsigned Block = 0; Block < Cfg.blockCount(); ++Block) {
    if (!Reachable[Block])
      continue;
    BitVec LiveNow = Live.Out[Block];
    const IsaBlock &B = Cfg.block(Block);
    for (size_t Index = B.End; Index-- > B.Begin;) {
      const isa::Instruction &I = Program.Instructions[Index];
      registerOperands(I, Def, Uses);
      if (Def) {
        if (!LiveNow.test(Def->flat()))
          Result.Warnings.push_back(
              {IsaWarningKind::DeadStore, Index, I.Line,
               "dead store: " + Def->str() + " written by " +
                   std::string(isa::opcodeName(I.Op)) +
                   " is overwritten before it is ever read"});
        LiveNow.clear(Def->flat());
      }
      for (const RegRef &Use : Uses)
        LiveNow.set(Use.flat());
    }
  }

  // Maybe-uninitialized reads via forward may-analysis.
  MaybeUninitDomain UninitDom{Cfg};
  DataflowResult<MaybeUninitDomain> Uninit =
      solveDataflow(Cfg, Direction::Forward, UninitDom);
  for (unsigned Block = 0; Block < Cfg.blockCount(); ++Block) {
    if (!Reachable[Block])
      continue;
    BitVec UninitNow = Uninit.In[Block];
    const IsaBlock &B = Cfg.block(Block);
    for (size_t Index = B.Begin; Index < B.End; ++Index) {
      const isa::Instruction &I = Program.Instructions[Index];
      registerOperands(I, Def, Uses);
      for (const RegRef &Use : Uses)
        if (UninitNow.test(Use.flat()))
          Result.Warnings.push_back(
              {IsaWarningKind::UninitializedRead, Index, I.Line,
               Use.str() + " may be read before it is written"});
      if (Def)
        UninitNow.clear(Def->flat());
    }
  }

  // Deterministic order: by instruction, then kind.
  std::sort(Result.Warnings.begin(), Result.Warnings.end(),
            [](const IsaFlowWarning &A, const IsaFlowWarning &B) {
              if (A.InstrIndex != B.InstrIndex)
                return A.InstrIndex < B.InstrIndex;
              return static_cast<int>(A.Kind) < static_cast<int>(B.Kind);
            });
  return Result;
}
