//===- isa/isa.h - Approximation-aware ISA definitions ----------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The approximation-aware ISA of Section 4.1, concretely: a small RISC
/// machine where
///
///  * approximate and precise *registers* are distinguished by register
///    number (r16-r31 / f16-f31 are approximate: they live in
///    low-voltage SRAM and may suffer read upsets / write failures);
///  * approximate *instructions* carry an `.a` suffix — a hint that the
///    functional unit may apply energy-saving approximations (operand
///    narrowing, timing errors). A processor supporting no
///    approximations (ApproxLevel::None) executes them precisely, so a
///    single binary benefits from whatever the microarchitecture offers;
///  * approximate *memory* is distinguished by address: the data segment
///    has a precise region and an approximate region (reduced refresh —
///    cells decay with time since last access). Loads/stores also carry
///    the `.a` hint and the machine checks it against the region.
///
/// The EnerJ discipline at this level is enforced by the Verifier
/// (see verifier.h): no approximate register may reach a branch, an
/// address, or a precise destination except through the explicit
/// `endorse` instruction.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_ISA_ISA_H
#define ENERJ_ISA_ISA_H

#include <cstdint>
#include <string>
#include <vector>

namespace enerj {
namespace isa {

/// Register file geometry. Registers with index >= FirstApproxReg are
/// approximate (by number, per Section 4.1).
inline constexpr unsigned NumIntRegs = 32;
inline constexpr unsigned NumFpRegs = 32;
inline constexpr unsigned FirstApproxReg = 16;

/// True when integer/FP register \p Index is an approximate register.
inline bool isApproxReg(unsigned Index) { return Index >= FirstApproxReg; }

enum class Opcode {
  // Immediates and moves.
  Li,   ///< li  rD, imm       — load integer immediate.
  Lfi,  ///< lfi fD, imm       — load FP immediate.
  Mv,   ///< mv  rD, rA
  Fmv,  ///< fmv fD, fA
  // The explicit approximate-to-precise gates.
  Endorse,  ///< endorse  rD, rA  (rA approximate, rD precise)
  Fendorse, ///< fendorse fD, fA
  // Integer ALU (each has an approximate variant selected by Approx).
  Add,
  Sub,
  Mul,
  Div, ///< Precise div-by-zero traps; approximate returns 0 (Section 5.2).
  Rem,
  Addi, ///< addi rD, rA, imm
  // Materialized comparisons and logical ops (results are 0/1), used by
  // the compiler for boolean *values*; conditions still use branches.
  Seq, ///< seq rD, rA, rB — rD = (rA == rB)
  Sne,
  Slt,
  Sle,
  And, ///< Bitwise and/or (0/1 operands make them logical).
  Or,
  // FP unit.
  Fadd,
  Fsub,
  Fmul,
  Fdiv, ///< Approximate FP div-by-zero yields NaN.
  // Conversions.
  Cvt,  ///< cvt  fD, rA — int to FP.
  Cvti, ///< cvti rD, fA — FP to int (truncating).
  // Memory (64-bit cells; address = rA + imm, rA precise).
  Lw,  ///< lw  rD, rA, imm
  Sw,  ///< sw  rS, rA, imm
  Flw, ///< flw fD, rA, imm
  Fsw, ///< fsw fS, rA, imm
  // Control flow (operands must be precise).
  Beq,
  Bne,
  Blt,
  Ble,
  // FP branches (precise FP operands; not taken on NaN, like Java/C++).
  Fbeq,
  Fbne,
  Fblt,
  Fble,
  Jmp,
  Halt,
};

const char *opcodeName(Opcode Op);

/// One decoded instruction. Fields are used per opcode; unused ones are
/// zero. Rd/Ra/Rb index the integer or FP file depending on the opcode.
struct Instruction {
  Opcode Op = Opcode::Halt;
  bool Approx = false; ///< The `.a` hint.
  unsigned Rd = 0;
  unsigned Ra = 0;
  unsigned Rb = 0;
  int64_t Imm = 0;     ///< Immediate / branch target (instruction index).
  double FpImm = 0.0;
  int Line = 0;        ///< Source line, for diagnostics.

  std::string str() const;
};

/// An assembled program: instructions plus the data-segment geometry.
/// Memory cells [0, PreciseWords) are precise; cells
/// [PreciseWords, PreciseWords + ApproxWords) are approximate.
struct IsaProgram {
  std::vector<Instruction> Instructions;
  uint64_t PreciseWords = 0;
  uint64_t ApproxWords = 0;

  uint64_t memoryWords() const { return PreciseWords + ApproxWords; }
  bool isApproxAddress(uint64_t Address) const {
    return Address >= PreciseWords && Address < memoryWords();
  }
};

} // namespace isa
} // namespace enerj

#endif // ENERJ_ISA_ISA_H
