//===- isa/machine.cpp - Approximation-aware machine executor -------------===//

#include "isa/machine.h"

#include "support/bits.h"

#include <cassert>
#include <cmath>
#include <limits>

using namespace enerj;
using namespace enerj::isa;

Machine::Machine(const IsaProgram &Program, const FaultConfig &Config)
    : Program(Program), Config(Config), R(Config.Seed), Sram(this->Config),
      Dram(this->Config), FpWidth(this->Config), IntTiming(this->Config),
      FpTiming(this->Config), IntRegs(NumIntRegs, 0), FpRegs(NumFpRegs, 0.0),
      Memory(Program.memoryWords(), 0),
      LastAccess(Program.memoryWords(), 0) {
  // Storage footprint: half of each register file is approximate SRAM;
  // the data segment splits per the program's directives.
  Ledger.lease(Region::Sram, FirstApproxReg * 8 * 2,
               (NumIntRegs - FirstApproxReg) * 8 +
                   (NumFpRegs - FirstApproxReg) * 8);
  Ledger.lease(Region::Dram, Program.PreciseWords * 8,
               Program.ApproxWords * 8);
}

void Machine::pokeMemInt(uint64_t Address, int64_t Value) {
  assert(Address < Memory.size());
  Memory[Address] = toBits(Value);
}

void Machine::pokeMemFp(uint64_t Address, double Value) {
  assert(Address < Memory.size());
  Memory[Address] = toBits(Value);
}

int64_t Machine::peekMemInt(uint64_t Address) const {
  assert(Address < Memory.size());
  return fromBits<int64_t>(Memory[Address]);
}

double Machine::peekMemFp(uint64_t Address) const {
  assert(Address < Memory.size());
  return fromBits<double>(Memory[Address]);
}

RunStats Machine::stats() const {
  RunStats Stats;
  Stats.Ops = Ops;
  Stats.Ops.TimingErrors = IntTiming.errorCount() + FpTiming.errorCount();
  Stats.Storage = Ledger.snapshot();
  return Stats;
}

template <typename T> T Machine::readIntLike(unsigned Index) {
  int64_t Raw = IntRegs[Index];
  if (isApproxReg(Index))
    Raw = Sram.onRead(toBits(Raw), 64, R);
  return static_cast<T>(Raw);
}

template <typename T> void Machine::writeIntLike(unsigned Index, T Value) {
  int64_t Raw = static_cast<int64_t>(Value);
  if (isApproxReg(Index))
    Raw = fromBits<int64_t>(Sram.onWrite(toBits(Raw), 64, R));
  IntRegs[Index] = Raw;
}

double Machine::readFp(unsigned Index) {
  double Raw = FpRegs[Index];
  if (isApproxReg(Index))
    Raw = fromBits<double>(Sram.onRead(toBits(Raw), 64, R));
  return Raw;
}

void Machine::writeFp(unsigned Index, double Value) {
  double Raw = Value;
  if (isApproxReg(Index))
    Raw = fromBits<double>(Sram.onWrite(toBits(Raw), 64, R));
  FpRegs[Index] = Raw;
}

bool Machine::memAccess(uint64_t Address, bool ApproxHint, bool IsStore,
                        uint64_t &Bits, std::string &TrapMessage) {
  if (Address >= Memory.size()) {
    TrapMessage = "memory access out of range (address " +
                  std::to_string(Address) + ")";
    return false;
  }
  bool ApproxRegion = Program.isApproxAddress(Address);
  // Dynamic discipline: precise accesses must touch the precise region;
  // an approximate *store* must touch the approximate region (a precise
  // cell must never hold unguaranteed data). An approximate *load* from
  // the precise region is harmless (precise <: approx).
  if (!ApproxHint && ApproxRegion) {
    TrapMessage = "precise access to approximate memory";
    return false;
  }
  if (ApproxHint && IsStore && !ApproxRegion) {
    TrapMessage = "approximate store to precise memory";
    return false;
  }
  if (ApproxRegion) {
    // Reduced refresh: decay since the last touch, then refresh.
    if (!IsStore)
      Memory[Address] =
          Dram.onAccess(Memory[Address], 64,
                        Ledger.now() - LastAccess[Address], R);
    LastAccess[Address] = Ledger.now();
  }
  if (IsStore)
    Memory[Address] = Bits;
  else
    Bits = Memory[Address];
  Ledger.tick(); // A memory access advances time.
  return true;
}

MachineResult Machine::run(uint64_t MaxInstructions) {
  MachineResult Result;
  uint64_t Pc = 0;

  auto Trap = [&](std::string Message, int Line) {
    Result.Trapped = true;
    Result.TrapMessage =
        "line " + std::to_string(Line) + ": " + std::move(Message);
  };

  // Control transfers to [0, Instructions.size()] are architected; the
  // boundary value is the explicit form of the fall-off-the-end clean
  // halt (trailing labels assemble to it). Anything past that traps,
  // mirroring the verifier's range rule (see docs/ISA.md).
  auto BranchTo = [&](int64_t Target, int Line) {
    if (Target < 0 ||
        static_cast<size_t>(Target) > Program.Instructions.size()) {
      Trap("branch target out of range", Line);
      return false;
    }
    Pc = static_cast<uint64_t>(Target);
    return true;
  };

  while (Result.InstructionsExecuted < MaxInstructions) {
    if (Pc >= Program.Instructions.size())
      return Result; // Falling off the end is a clean halt.
    const Instruction &I = Program.Instructions[Pc];
    ++Result.InstructionsExecuted;
    ++Pc;

    /// Finishes an integer ALU result: counting, timing errors.
    auto IntResult = [&](int64_t Correct) {
      if (!I.Approx) {
        ++Ops.PreciseInt;
        Ledger.tick();
        return Correct;
      }
      ++Ops.ApproxInt;
      Ledger.tick();
      return fromBits<int64_t>(IntTiming.onResult(toBits(Correct), 64, R));
    };
    /// Finishes an FP result; operands were already narrowed.
    auto FpResult = [&](double Correct) {
      if (!I.Approx) {
        ++Ops.PreciseFp;
        Ledger.tick();
        return Correct;
      }
      ++Ops.ApproxFp;
      Ledger.tick();
      return fromBits<double>(FpTiming.onResult(toBits(Correct), 64, R));
    };
    auto NarrowIf = [&](double Value) {
      return I.Approx ? FpWidth.narrow(Value) : Value;
    };

    switch (I.Op) {
    case Opcode::Li:
      writeIntLike<int64_t>(I.Rd, I.Imm);
      Ledger.tick();
      break;
    case Opcode::Lfi:
      writeFp(I.Rd, I.FpImm);
      Ledger.tick();
      break;
    case Opcode::Mv:
      writeIntLike<int64_t>(I.Rd, readIntLike<int64_t>(I.Ra));
      Ledger.tick();
      break;
    case Opcode::Fmv:
      writeFp(I.Rd, readFp(I.Ra));
      Ledger.tick();
      break;
    case Opcode::Endorse:
      // One final read through the approximate path (Section 2.2).
      writeIntLike<int64_t>(I.Rd, readIntLike<int64_t>(I.Ra));
      Ledger.tick();
      break;
    case Opcode::Fendorse:
      writeFp(I.Rd, readFp(I.Ra));
      Ledger.tick();
      break;

    // Integer arithmetic wraps (two's complement): approximate register
    // contents can be arbitrary bit patterns.
    case Opcode::Add:
      writeIntLike<int64_t>(
          I.Rd, IntResult(wrapAdd(readIntLike<int64_t>(I.Ra),
                                  readIntLike<int64_t>(I.Rb))));
      break;
    case Opcode::Sub:
      writeIntLike<int64_t>(
          I.Rd, IntResult(wrapSub(readIntLike<int64_t>(I.Ra),
                                  readIntLike<int64_t>(I.Rb))));
      break;
    case Opcode::Mul:
      writeIntLike<int64_t>(
          I.Rd, IntResult(wrapMul(readIntLike<int64_t>(I.Ra),
                                  readIntLike<int64_t>(I.Rb))));
      break;
    case Opcode::Div: {
      int64_t Divisor = readIntLike<int64_t>(I.Rb);
      int64_t Dividend = readIntLike<int64_t>(I.Ra);
      if (Divisor == 0) {
        // Approximate units never raise divide-by-zero (Section 5.2).
        if (!I.Approx)
          return Trap("integer division by zero", I.Line), Result;
        writeIntLike<int64_t>(I.Rd, IntResult(0));
        break;
      }
      writeIntLike<int64_t>(I.Rd, IntResult(wrapDiv(Dividend, Divisor)));
      break;
    }
    case Opcode::Rem: {
      int64_t Divisor = readIntLike<int64_t>(I.Rb);
      int64_t Dividend = readIntLike<int64_t>(I.Ra);
      if (Divisor == 0) {
        if (!I.Approx)
          return Trap("integer remainder by zero", I.Line), Result;
        writeIntLike<int64_t>(I.Rd, IntResult(0));
        break;
      }
      writeIntLike<int64_t>(I.Rd, IntResult(wrapRem(Dividend, Divisor)));
      break;
    }
    case Opcode::Addi:
      writeIntLike<int64_t>(
          I.Rd, IntResult(wrapAdd(readIntLike<int64_t>(I.Ra), I.Imm)));
      break;

    case Opcode::Seq:
    case Opcode::Sne:
    case Opcode::Slt:
    case Opcode::Sle:
    case Opcode::And:
    case Opcode::Or: {
      int64_t Lhs = readIntLike<int64_t>(I.Ra);
      int64_t Rhs = readIntLike<int64_t>(I.Rb);
      int64_t Value = 0;
      switch (I.Op) {
      case Opcode::Seq:
        Value = Lhs == Rhs ? 1 : 0;
        break;
      case Opcode::Sne:
        Value = Lhs != Rhs ? 1 : 0;
        break;
      case Opcode::Slt:
        Value = Lhs < Rhs ? 1 : 0;
        break;
      case Opcode::Sle:
        Value = Lhs <= Rhs ? 1 : 0;
        break;
      case Opcode::And:
        Value = Lhs & Rhs;
        break;
      default:
        Value = Lhs | Rhs;
        break;
      }
      writeIntLike<int64_t>(I.Rd, IntResult(Value));
      break;
    }

    case Opcode::Fadd:
      writeFp(I.Rd, FpResult(NarrowIf(readFp(I.Ra)) +
                             NarrowIf(readFp(I.Rb))));
      break;
    case Opcode::Fsub:
      writeFp(I.Rd, FpResult(NarrowIf(readFp(I.Ra)) -
                             NarrowIf(readFp(I.Rb))));
      break;
    case Opcode::Fmul:
      writeFp(I.Rd, FpResult(NarrowIf(readFp(I.Ra)) *
                             NarrowIf(readFp(I.Rb))));
      break;
    case Opcode::Fdiv: {
      double Divisor = NarrowIf(readFp(I.Rb));
      double Dividend = NarrowIf(readFp(I.Ra));
      if (Divisor == 0.0 && I.Approx) {
        writeFp(I.Rd,
                FpResult(std::numeric_limits<double>::quiet_NaN()));
        break;
      }
      writeFp(I.Rd, FpResult(Dividend / Divisor));
      break;
    }

    case Opcode::Cvt:
      writeFp(I.Rd, FpResult(static_cast<double>(
                        readIntLike<int64_t>(I.Ra))));
      break;
    case Opcode::Cvti: {
      double Value = NarrowIf(readFp(I.Ra));
      // Out-of-range conversions are undefined in C++; clamp like a
      // saturating hardware converter (NaN yields 0).
      int64_t Truncated = 0;
      if (std::isfinite(Value)) {
        if (Value >= 9.2233720368547758e18)
          Truncated = INT64_MAX;
        else if (Value <= -9.2233720368547758e18)
          Truncated = INT64_MIN;
        else
          Truncated = static_cast<int64_t>(Value);
      }
      writeIntLike<int64_t>(I.Rd, IntResult(Truncated));
      break;
    }

    case Opcode::Lw:
    case Opcode::Flw: {
      int64_t Base = readIntLike<int64_t>(I.Ra);
      uint64_t Address =
          static_cast<uint64_t>(Base) + static_cast<uint64_t>(I.Imm);
      uint64_t Bits = 0;
      std::string Message;
      if (!memAccess(Address, I.Approx, /*IsStore=*/false, Bits, Message))
        return Trap(std::move(Message), I.Line), Result;
      if (I.Op == Opcode::Lw)
        writeIntLike<int64_t>(I.Rd, fromBits<int64_t>(Bits));
      else
        writeFp(I.Rd, fromBits<double>(Bits));
      break;
    }
    case Opcode::Sw:
    case Opcode::Fsw: {
      int64_t Base = readIntLike<int64_t>(I.Ra);
      uint64_t Address =
          static_cast<uint64_t>(Base) + static_cast<uint64_t>(I.Imm);
      uint64_t Bits = I.Op == Opcode::Sw
                          ? toBits(readIntLike<int64_t>(I.Rd))
                          : toBits(readFp(I.Rd));
      std::string Message;
      if (!memAccess(Address, I.Approx, /*IsStore=*/true, Bits, Message))
        return Trap(std::move(Message), I.Line), Result;
      break;
    }

    case Opcode::Fbeq:
    case Opcode::Fbne:
    case Opcode::Fblt:
    case Opcode::Fble: {
      double Lhs = readFp(I.Rd);
      double Rhs = readFp(I.Ra);
      ++Ops.PreciseFp; // The comparison.
      Ledger.tick();
      bool Taken = false;
      switch (I.Op) {
      case Opcode::Fbeq:
        Taken = Lhs == Rhs;
        break;
      case Opcode::Fbne:
        Taken = Lhs != Rhs;
        break;
      case Opcode::Fblt:
        Taken = Lhs < Rhs;
        break;
      default:
        Taken = Lhs <= Rhs;
        break;
      }
      if (Taken && !BranchTo(I.Imm, I.Line))
        return Result;
      break;
    }

    case Opcode::Beq:
    case Opcode::Bne:
    case Opcode::Blt:
    case Opcode::Ble: {
      int64_t Lhs = readIntLike<int64_t>(I.Rd);
      int64_t Rhs = readIntLike<int64_t>(I.Ra);
      ++Ops.PreciseInt; // The comparison.
      Ledger.tick();
      bool Taken = false;
      switch (I.Op) {
      case Opcode::Beq:
        Taken = Lhs == Rhs;
        break;
      case Opcode::Bne:
        Taken = Lhs != Rhs;
        break;
      case Opcode::Blt:
        Taken = Lhs < Rhs;
        break;
      default:
        Taken = Lhs <= Rhs;
        break;
      }
      if (Taken && !BranchTo(I.Imm, I.Line))
        return Result;
      break;
    }
    case Opcode::Jmp:
      Ledger.tick();
      if (!BranchTo(I.Imm, I.Line))
        return Result;
      break;
    case Opcode::Halt:
      return Result;
    }
  }
  Result.Trapped = true;
  Result.TrapMessage = "instruction budget exhausted (runaway loop?)";
  return Result;
}
