//===- isa/machine.h - Approximation-aware machine executor -----*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a verified IsaProgram on the Section 4 hardware model:
/// approximate registers suffer SRAM read upsets / write failures, `.a`
/// functional-unit instructions narrow FP operands and may take timing
/// errors, and the approximate memory region decays with time since last
/// access (reduced refresh). At ApproxLevel::None every instruction —
/// including the `.a` ones — executes precisely, demonstrating the
/// paper's single-binary portability claim.
///
/// The machine also enforces the dynamic half of the discipline (the
/// ISA-level checked semantics): a precise (non-`.a`) load or store must
/// touch the precise region, an `.a` store must touch the approximate
/// region, and addresses must be in range; violations trap.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_ISA_MACHINE_H
#define ENERJ_ISA_MACHINE_H

#include "arch/memory.h"
#include "arch/stats.h"
#include "fault/config.h"
#include "fault/models.h"
#include "isa/isa.h"
#include "support/rng.h"

#include <string>
#include <vector>

namespace enerj {
namespace isa {

/// Outcome of a run.
struct MachineResult {
  bool Trapped = false;
  std::string TrapMessage;
  uint64_t InstructionsExecuted = 0;
};

/// One machine instance bound to a program and a hardware configuration.
class Machine {
public:
  Machine(const IsaProgram &Program, const FaultConfig &Config);

  /// Runs from instruction 0 until halt, a trap, or \p MaxInstructions.
  MachineResult run(uint64_t MaxInstructions = 10'000'000);

  /// --- Test/driver access (no faults, nothing recorded). ---
  int64_t intReg(unsigned Index) const { return IntRegs[Index]; }
  double fpReg(unsigned Index) const { return FpRegs[Index]; }
  void setIntReg(unsigned Index, int64_t Value) { IntRegs[Index] = Value; }
  void setFpReg(unsigned Index, double Value) { FpRegs[Index] = Value; }
  /// Raw bits of memory cell \p Address.
  uint64_t memBits(uint64_t Address) const { return Memory[Address]; }
  void pokeMemInt(uint64_t Address, int64_t Value);
  void pokeMemFp(uint64_t Address, double Value);
  int64_t peekMemInt(uint64_t Address) const;
  double peekMemFp(uint64_t Address) const;

  /// Statistics in the same shape as the library simulator's.
  RunStats stats() const;

private:
  template <typename T> T readIntLike(unsigned Index);
  template <typename T> void writeIntLike(unsigned Index, T Value);
  double readFp(unsigned Index);
  void writeFp(unsigned Index, double Value);

  /// Memory access with decay/refresh and the region-vs-hint check.
  bool memAccess(uint64_t Address, bool ApproxHint, bool IsStore,
                 uint64_t &Bits, std::string &TrapMessage);

  const IsaProgram &Program;
  FaultConfig Config;
  Rng R;
  SramModel Sram;
  DramModel Dram;
  FpWidthModel FpWidth;
  TimingModel IntTiming;
  TimingModel FpTiming;
  MemoryLedger Ledger;
  OperationStats Ops;

  std::vector<int64_t> IntRegs;
  std::vector<double> FpRegs;
  std::vector<uint64_t> Memory;     ///< Raw 64-bit cells.
  std::vector<uint64_t> LastAccess; ///< Refresh timestamps (approx region).
};

} // namespace isa
} // namespace enerj

#endif // ENERJ_ISA_MACHINE_H
