//===- isa/assembler.cpp - Assembler for the approximate ISA --------------===//

#include "isa/assembler.h"

#include <cassert>
#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace enerj::isa;

const char *enerj::isa::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Li:
    return "li";
  case Opcode::Lfi:
    return "lfi";
  case Opcode::Mv:
    return "mv";
  case Opcode::Fmv:
    return "fmv";
  case Opcode::Endorse:
    return "endorse";
  case Opcode::Fendorse:
    return "fendorse";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::Addi:
    return "addi";
  case Opcode::Seq:
    return "seq";
  case Opcode::Sne:
    return "sne";
  case Opcode::Slt:
    return "slt";
  case Opcode::Sle:
    return "sle";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Fadd:
    return "fadd";
  case Opcode::Fsub:
    return "fsub";
  case Opcode::Fmul:
    return "fmul";
  case Opcode::Fdiv:
    return "fdiv";
  case Opcode::Cvt:
    return "cvt";
  case Opcode::Cvti:
    return "cvti";
  case Opcode::Lw:
    return "lw";
  case Opcode::Sw:
    return "sw";
  case Opcode::Flw:
    return "flw";
  case Opcode::Fsw:
    return "fsw";
  case Opcode::Beq:
    return "beq";
  case Opcode::Bne:
    return "bne";
  case Opcode::Blt:
    return "blt";
  case Opcode::Ble:
    return "ble";
  case Opcode::Fbeq:
    return "fbeq";
  case Opcode::Fbne:
    return "fbne";
  case Opcode::Fblt:
    return "fblt";
  case Opcode::Fble:
    return "fble";
  case Opcode::Jmp:
    return "jmp";
  case Opcode::Halt:
    return "halt";
  }
  assert(false && "unknown opcode");
  return "?";
}

std::string Instruction::str() const {
  std::string Out = opcodeName(Op);
  if (Approx)
    Out += ".a";
  return Out;
}

namespace {

struct Mnemonic {
  Opcode Op;
  /// Operand shape: each char is 'r' (int reg), 'f' (FP reg), 'i' (int
  /// immediate), 'd' (FP immediate), 'l' (label).
  const char *Shape;
  bool AllowApprox;
};

const std::unordered_map<std::string, Mnemonic> Mnemonics = {
    {"li", {Opcode::Li, "ri", false}},
    {"lfi", {Opcode::Lfi, "fd", false}},
    {"mv", {Opcode::Mv, "rr", false}},
    {"fmv", {Opcode::Fmv, "ff", false}},
    {"endorse", {Opcode::Endorse, "rr", false}},
    {"fendorse", {Opcode::Fendorse, "ff", false}},
    {"add", {Opcode::Add, "rrr", true}},
    {"sub", {Opcode::Sub, "rrr", true}},
    {"mul", {Opcode::Mul, "rrr", true}},
    {"div", {Opcode::Div, "rrr", true}},
    {"rem", {Opcode::Rem, "rrr", true}},
    {"addi", {Opcode::Addi, "rri", true}},
    {"seq", {Opcode::Seq, "rrr", true}},
    {"sne", {Opcode::Sne, "rrr", true}},
    {"slt", {Opcode::Slt, "rrr", true}},
    {"sle", {Opcode::Sle, "rrr", true}},
    {"and", {Opcode::And, "rrr", true}},
    {"or", {Opcode::Or, "rrr", true}},
    {"fadd", {Opcode::Fadd, "fff", true}},
    {"fsub", {Opcode::Fsub, "fff", true}},
    {"fmul", {Opcode::Fmul, "fff", true}},
    {"fdiv", {Opcode::Fdiv, "fff", true}},
    {"cvt", {Opcode::Cvt, "fr", true}},
    {"cvti", {Opcode::Cvti, "rf", true}},
    {"lw", {Opcode::Lw, "rri", true}},
    {"sw", {Opcode::Sw, "rri", true}},
    {"flw", {Opcode::Flw, "fri", true}},
    {"fsw", {Opcode::Fsw, "fri", true}},
    {"beq", {Opcode::Beq, "rrl", false}},
    {"bne", {Opcode::Bne, "rrl", false}},
    {"blt", {Opcode::Blt, "rrl", false}},
    {"ble", {Opcode::Ble, "rrl", false}},
    {"fbeq", {Opcode::Fbeq, "ffl", false}},
    {"fbne", {Opcode::Fbne, "ffl", false}},
    {"fblt", {Opcode::Fblt, "ffl", false}},
    {"fble", {Opcode::Fble, "ffl", false}},
    {"jmp", {Opcode::Jmp, "l", false}},
    {"halt", {Opcode::Halt, "", false}},
};

struct PendingLabel {
  size_t InstrIndex;
  std::string Label;
  int Line;
};

class Assembler {
public:
  Assembler(std::string_view Source, std::vector<std::string> &Errors)
      : Source(Source), Errors(Errors) {}

  std::optional<IsaProgram> run();

private:
  void error(int Line, std::string Message) {
    Errors.push_back("line " + std::to_string(Line) + ": " +
                     std::move(Message));
  }

  /// Splits one line into whitespace/comma separated tokens, stripping
  /// comments.
  static std::vector<std::string> tokenize(std::string_view Line);

  bool parseReg(const std::string &Token, char Kind, unsigned &Out,
                int Line);

  std::string_view Source;
  std::vector<std::string> &Errors;
};

std::vector<std::string> Assembler::tokenize(std::string_view Line) {
  std::vector<std::string> Tokens;
  std::string Current;
  for (char C : Line) {
    if (C == ';' || C == '#')
      break;
    if (std::isspace(static_cast<unsigned char>(C)) || C == ',') {
      if (!Current.empty()) {
        Tokens.push_back(Current);
        Current.clear();
      }
      continue;
    }
    Current += C;
  }
  if (!Current.empty())
    Tokens.push_back(Current);
  return Tokens;
}

bool Assembler::parseReg(const std::string &Token, char Kind, unsigned &Out,
                         int Line) {
  char Prefix = Kind == 'r' ? 'r' : 'f';
  unsigned Limit = Kind == 'r' ? NumIntRegs : NumFpRegs;
  if (Token.size() < 2 || Token[0] != Prefix) {
    error(Line, "expected " + std::string(Kind == 'r' ? "an integer"
                                                      : "an FP") +
                    " register, got '" + Token + "'");
    return false;
  }
  char *End = nullptr;
  unsigned long Index = std::strtoul(Token.c_str() + 1, &End, 10);
  if (*End != '\0' || Index >= Limit) {
    error(Line, "bad register '" + Token + "'");
    return false;
  }
  Out = static_cast<unsigned>(Index);
  return true;
}

std::optional<IsaProgram> Assembler::run() {
  IsaProgram Program;
  std::unordered_map<std::string, int64_t> Labels;
  std::vector<PendingLabel> Pending;

  int Line = 0;
  size_t Pos = 0;
  while (Pos <= Source.size()) {
    size_t End = Source.find('\n', Pos);
    if (End == std::string_view::npos)
      End = Source.size();
    std::string_view Text = Source.substr(Pos, End - Pos);
    Pos = End + 1;
    ++Line;
    std::vector<std::string> Tokens = tokenize(Text);
    if (Tokens.empty()) {
      if (End == Source.size())
        break;
      continue;
    }

    // Labels: "name:" possibly followed by an instruction on the line.
    // Errors from here on record a diagnostic and skip to the next
    // line, so one pass reports every offending token in the file.
    bool BadLine = false;
    while (!Tokens.empty() && Tokens[0].back() == ':') {
      std::string Label = Tokens[0].substr(0, Tokens[0].size() - 1);
      if (Label.empty()) {
        error(Line, "empty label name in ':'");
        BadLine = true;
        break;
      }
      if (!Labels.emplace(Label,
                          static_cast<int64_t>(Program.Instructions.size()))
               .second) {
        error(Line, "duplicate label '" + Label + "'");
        BadLine = true;
        break;
      }
      Tokens.erase(Tokens.begin());
    }
    if (BadLine) {
      if (End == Source.size())
        break;
      continue;
    }
    if (Tokens.empty()) {
      if (End == Source.size())
        break;
      continue;
    }

    // Directives.
    if (Tokens[0] == ".data" || Tokens[0] == ".adata") {
      if (Tokens.size() != 2) {
        error(Line, "'" + Tokens[0] + "' takes one operand, got " +
                        std::to_string(Tokens.size() - 1));
        if (End == Source.size())
          break;
        continue;
      }
      char *EndPtr = nullptr;
      long long Words = std::strtoll(Tokens[1].c_str(), &EndPtr, 10);
      if (*EndPtr != '\0' || Words < 0) {
        error(Line, "bad word count '" + Tokens[1] + "' for '" +
                        Tokens[0] + "'");
        if (End == Source.size())
          break;
        continue;
      }
      (Tokens[0] == ".data" ? Program.PreciseWords : Program.ApproxWords) =
          static_cast<uint64_t>(Words);
      if (End == Source.size())
        break;
      continue;
    }

    // Instruction: mnemonic possibly suffixed with ".a".
    std::string Name = Tokens[0];
    bool Approx = false;
    if (Name.size() > 2 && Name.substr(Name.size() - 2) == ".a") {
      Approx = true;
      Name = Name.substr(0, Name.size() - 2);
    }
    auto It = Mnemonics.find(Name);
    if (It == Mnemonics.end()) {
      error(Line, "unknown instruction '" + Tokens[0] + "'");
      if (End == Source.size())
        break;
      continue;
    }
    const Mnemonic &M = It->second;
    if (Approx && !M.AllowApprox) {
      error(Line, "'" + Name + "' has no approximate variant ('" +
                      Tokens[0] + "')");
      if (End == Source.size())
        break;
      continue;
    }
    std::string Shape = M.Shape;
    if (Tokens.size() - 1 != Shape.size()) {
      error(Line, "'" + Tokens[0] + "' expects " +
                      std::to_string(Shape.size()) + " operand(s), got " +
                      std::to_string(Tokens.size() - 1));
      if (End == Source.size())
        break;
      continue;
    }

    Instruction Instr;
    Instr.Op = M.Op;
    Instr.Approx = Approx;
    Instr.Line = Line;
    unsigned RegSlot = 0; // 0 -> Rd, 1 -> Ra, 2 -> Rb.
    bool FailedOperand = false;
    for (size_t OpIdx = 0; OpIdx < Shape.size(); ++OpIdx) {
      const std::string &Token = Tokens[OpIdx + 1];
      switch (Shape[OpIdx]) {
      case 'r':
      case 'f': {
        unsigned Reg = 0;
        if (!parseReg(Token, Shape[OpIdx], Reg, Line)) {
          FailedOperand = true;
          break;
        }
        if (RegSlot == 0)
          Instr.Rd = Reg;
        else if (RegSlot == 1)
          Instr.Ra = Reg;
        else
          Instr.Rb = Reg;
        ++RegSlot;
        break;
      }
      case 'i': {
        char *EndPtr = nullptr;
        Instr.Imm = std::strtoll(Token.c_str(), &EndPtr, 0);
        if (*EndPtr != '\0') {
          error(Line, "bad immediate '" + Token + "'");
          FailedOperand = true;
        }
        break;
      }
      case 'd': {
        char *EndPtr = nullptr;
        Instr.FpImm = std::strtod(Token.c_str(), &EndPtr);
        if (*EndPtr != '\0') {
          error(Line, "bad FP immediate '" + Token + "'");
          FailedOperand = true;
        }
        break;
      }
      case 'l':
        Pending.push_back({Program.Instructions.size(), Token, Line});
        break;
      default:
        assert(false && "bad shape character");
      }
      if (FailedOperand)
        break;
    }
    if (FailedOperand) {
      // The program can never assemble now, but keep scanning so every
      // bad operand in the file gets a diagnostic in one pass.
      if (End == Source.size())
        break;
      continue;
    }
    Program.Instructions.push_back(Instr);
    if (End == Source.size())
      break;
  }

  // Resolve branch targets.
  for (const PendingLabel &P : Pending) {
    auto It = Labels.find(P.Label);
    if (It == Labels.end()) {
      error(P.Line, "undefined label '" + P.Label + "'");
      continue;
    }
    Program.Instructions[P.InstrIndex].Imm = It->second;
  }
  if (!Errors.empty())
    return std::nullopt;
  return Program;
}

} // namespace

std::optional<IsaProgram>
enerj::isa::assemble(std::string_view Source,
                     std::vector<std::string> &Errors) {
  return Assembler(Source, Errors).run();
}

std::string enerj::isa::disassemble(const IsaProgram &Program) {
  // Collect branch targets so they can be labeled.
  std::unordered_map<size_t, std::string> LabelAt;
  for (const Instruction &I : Program.Instructions) {
    bool IsBranch = false;
    switch (I.Op) {
    case Opcode::Beq:
    case Opcode::Bne:
    case Opcode::Blt:
    case Opcode::Ble:
    case Opcode::Fbeq:
    case Opcode::Fbne:
    case Opcode::Fblt:
    case Opcode::Fble:
    case Opcode::Jmp:
      IsBranch = true;
      break;
    default:
      break;
    }
    if (IsBranch) {
      size_t Target = static_cast<size_t>(I.Imm);
      if (!LabelAt.count(Target))
        LabelAt[Target] = "L" + std::to_string(LabelAt.size());
    }
  }

  std::string Out;
  Out += ".data " + std::to_string(Program.PreciseWords) + "\n";
  Out += ".adata " + std::to_string(Program.ApproxWords) + "\n";
  auto IntReg = [](unsigned Index) { return "r" + std::to_string(Index); };
  auto FpReg = [](unsigned Index) { return "f" + std::to_string(Index); };

  for (size_t Index = 0; Index <= Program.Instructions.size(); ++Index) {
    auto Label = LabelAt.find(Index);
    if (Label != LabelAt.end())
      Out += Label->second + ":\n";
    if (Index == Program.Instructions.size())
      break;
    const Instruction &I = Program.Instructions[Index];
    Out += "  " + I.str();
    switch (I.Op) {
    case Opcode::Li:
      Out += " " + IntReg(I.Rd) + ", " + std::to_string(I.Imm);
      break;
    case Opcode::Lfi: {
      char Buffer[64];
      std::snprintf(Buffer, sizeof(Buffer), " %s, %.17g",
                    FpReg(I.Rd).c_str(), I.FpImm);
      Out += Buffer;
      break;
    }
    case Opcode::Mv:
    case Opcode::Endorse:
      Out += " " + IntReg(I.Rd) + ", " + IntReg(I.Ra);
      break;
    case Opcode::Fmv:
    case Opcode::Fendorse:
      Out += " " + FpReg(I.Rd) + ", " + FpReg(I.Ra);
      break;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::Seq:
    case Opcode::Sne:
    case Opcode::Slt:
    case Opcode::Sle:
    case Opcode::And:
    case Opcode::Or:
      Out += " " + IntReg(I.Rd) + ", " + IntReg(I.Ra) + ", " +
             IntReg(I.Rb);
      break;
    case Opcode::Addi:
      Out += " " + IntReg(I.Rd) + ", " + IntReg(I.Ra) + ", " +
             std::to_string(I.Imm);
      break;
    case Opcode::Fadd:
    case Opcode::Fsub:
    case Opcode::Fmul:
    case Opcode::Fdiv:
      Out += " " + FpReg(I.Rd) + ", " + FpReg(I.Ra) + ", " + FpReg(I.Rb);
      break;
    case Opcode::Cvt:
      Out += " " + FpReg(I.Rd) + ", " + IntReg(I.Ra);
      break;
    case Opcode::Cvti:
      Out += " " + IntReg(I.Rd) + ", " + FpReg(I.Ra);
      break;
    case Opcode::Lw:
    case Opcode::Sw:
      Out += " " + IntReg(I.Rd) + ", " + IntReg(I.Ra) + ", " +
             std::to_string(I.Imm);
      break;
    case Opcode::Flw:
    case Opcode::Fsw:
      Out += " " + FpReg(I.Rd) + ", " + IntReg(I.Ra) + ", " +
             std::to_string(I.Imm);
      break;
    case Opcode::Beq:
    case Opcode::Bne:
    case Opcode::Blt:
    case Opcode::Ble:
      Out += " " + IntReg(I.Rd) + ", " + IntReg(I.Ra) + ", " +
             LabelAt[static_cast<size_t>(I.Imm)];
      break;
    case Opcode::Fbeq:
    case Opcode::Fbne:
    case Opcode::Fblt:
    case Opcode::Fble:
      Out += " " + FpReg(I.Rd) + ", " + FpReg(I.Ra) + ", " +
             LabelAt[static_cast<size_t>(I.Imm)];
      break;
    case Opcode::Jmp:
      Out += " " + LabelAt[static_cast<size_t>(I.Imm)];
      break;
    case Opcode::Halt:
      break;
    }
    Out += "\n";
  }
  return Out;
}
