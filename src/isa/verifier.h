//===- isa/verifier.h - Static EnerJ discipline at the ISA level -*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The binary-level analogue of EnerJ's type checker: a static pass over
/// an assembled program that enforces the information-flow discipline a
/// compiler for the Section 4 architecture must maintain:
///
///  * no instruction moves an approximate register into a precise one —
///    the explicit `endorse`/`fendorse` instructions are the only gates;
///  * `.a` (approximate) instructions must target approximate registers
///    (their results carry no guarantees);
///  * branch operands and memory-address registers must be precise
///    (control flow and memory safety, Sections 2.4/2.6);
///  * precise loads must name precise destinations or go through
///    endorse; `.a` loads must target approximate registers; precise
///    stores must store precise registers (the machine additionally
///    checks region/hint agreement dynamically);
///  * branch targets are in range.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_ISA_VERIFIER_H
#define ENERJ_ISA_VERIFIER_H

#include "isa/isa.h"

#include <string>
#include <vector>

namespace enerj {
namespace isa {

/// One discipline violation.
struct VerifyError {
  size_t InstrIndex = 0;
  int Line = 0;
  std::string Message;

  std::string str() const {
    return "line " + std::to_string(Line) + ": " + Message;
  }
};

/// Checks \p Program; returns all violations (empty = verified).
std::vector<VerifyError> verify(const IsaProgram &Program);

} // namespace isa
} // namespace enerj

#endif // ENERJ_ISA_VERIFIER_H
