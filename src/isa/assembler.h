//===- isa/assembler.h - Assembler for the approximate ISA ------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A two-pass assembler for the Section 4.1 ISA. Syntax:
///
/// \code
///   .data  16          ; precise data words
///   .adata 64          ; approximate data words (reduced refresh)
///   li   r1, 0
///   loop:
///   flw  f16, r1, 16   ; load from the approximate region
///   fmul.a f17, f16, f16
///   fsw  f17, r1, 16
///   addi r1, r1, 1
///   blt  r1, r2, loop
///   halt
/// \endcode
///
/// Comments run from ';' or '#' to end of line. Registers are rN (int)
/// and fN (FP); `.a` on an opcode marks the approximate variant. Branch
/// targets are labels. Errors carry line numbers.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_ISA_ASSEMBLER_H
#define ENERJ_ISA_ASSEMBLER_H

#include "isa/isa.h"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace enerj {
namespace isa {

/// Assembles \p Source. On failure returns nullopt and fills \p Errors
/// with "line N: message" strings.
std::optional<IsaProgram> assemble(std::string_view Source,
                                   std::vector<std::string> &Errors);

/// Renders \p Program back to assembly text (directives, instructions,
/// and synthetic labels at branch targets). Re-assembling the output
/// yields an equivalent program; useful for dumping compiler output.
std::string disassemble(const IsaProgram &Program);

} // namespace isa
} // namespace enerj

#endif // ENERJ_ISA_ASSEMBLER_H
