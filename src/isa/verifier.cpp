//===- isa/verifier.cpp - Static EnerJ discipline at the ISA level --------===//

#include "isa/verifier.h"

using namespace enerj::isa;

namespace {

class VerifierImpl {
public:
  explicit VerifierImpl(const IsaProgram &Program) : Program(Program) {}

  std::vector<VerifyError> run();

private:
  void error(size_t Index, std::string Message) {
    Errors.push_back(
        {Index, Program.Instructions[Index].Line, std::move(Message)});
  }

  /// Flow rule for non-gate instructions: an approximate source may not
  /// reach a precise destination.
  void checkFlow(size_t Index, std::initializer_list<unsigned> Sources,
                 unsigned Dest) {
    if (isApproxReg(Dest))
      return;
    for (unsigned Src : Sources)
      if (isApproxReg(Src)) {
        error(Index, "approximate register flows into precise destination; "
                     "use endorse");
        return;
      }
  }

  void requireApproxDest(size_t Index, unsigned Dest) {
    if (!isApproxReg(Dest))
      error(Index, "approximate instruction must target an approximate "
                   "register");
  }

  void requirePrecise(size_t Index, unsigned Reg, const char *What) {
    if (isApproxReg(Reg))
      error(Index, std::string(What) + " must be a precise register");
  }

  const IsaProgram &Program;
  std::vector<VerifyError> Errors;
};

std::vector<VerifyError> VerifierImpl::run() {
  for (size_t Index = 0; Index < Program.Instructions.size(); ++Index) {
    const Instruction &I = Program.Instructions[Index];
    switch (I.Op) {
    case Opcode::Li:
    case Opcode::Lfi:
      break; // Immediates are precise data; any destination is fine.

    case Opcode::Mv:
    case Opcode::Fmv:
      checkFlow(Index, {I.Ra}, I.Rd);
      break;

    case Opcode::Endorse:
    case Opcode::Fendorse:
      // The explicit gate: approximate in, precise out.
      if (!isApproxReg(I.Ra))
        error(Index, "endorse source must be an approximate register");
      if (isApproxReg(I.Rd))
        error(Index, "endorse destination must be a precise register");
      break;

    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::Seq:
    case Opcode::Sne:
    case Opcode::Slt:
    case Opcode::Sle:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Fadd:
    case Opcode::Fsub:
    case Opcode::Fmul:
    case Opcode::Fdiv:
      if (I.Approx)
        requireApproxDest(Index, I.Rd);
      else
        checkFlow(Index, {I.Ra, I.Rb}, I.Rd);
      break;

    case Opcode::Addi:
    case Opcode::Cvt:
    case Opcode::Cvti:
      if (I.Approx)
        requireApproxDest(Index, I.Rd);
      else
        checkFlow(Index, {I.Ra}, I.Rd);
      break;

    case Opcode::Lw:
    case Opcode::Flw:
      // Addresses must be precise (memory safety, Section 2.6).
      requirePrecise(Index, I.Ra, "address register");
      if (I.Approx)
        requireApproxDest(Index, I.Rd);
      // A precise load's destination may be approximate (subtyping).
      break;

    case Opcode::Sw:
    case Opcode::Fsw:
      requirePrecise(Index, I.Ra, "address register");
      // A precise store writes the precise region: the stored register
      // must carry precise guarantees. An `.a` store (to the
      // approximate region) accepts anything.
      if (!I.Approx)
        requirePrecise(Index, I.Rd, "stored register (precise store)");
      break;

    case Opcode::Beq:
    case Opcode::Bne:
    case Opcode::Blt:
    case Opcode::Ble:
    case Opcode::Fbeq:
    case Opcode::Fbne:
    case Opcode::Fblt:
    case Opcode::Fble:
      // No implicit control-flow leaks (Section 2.4).
      requirePrecise(Index, I.Rd, "branch operand");
      requirePrecise(Index, I.Ra, "branch operand");
      [[fallthrough]];
    case Opcode::Jmp:
      // Targets in [0, Instructions.size()] are legal: the boundary
      // value is the architected fall-off-the-end clean halt (trailing
      // labels assemble to it, and the machine halts cleanly there).
      // Beyond it the machine traps, so the verifier rejects.
      if (I.Imm < 0 ||
          static_cast<size_t>(I.Imm) > Program.Instructions.size())
        error(Index, "branch target out of range");
      break;

    case Opcode::Halt:
      break;
    }
  }
  return std::move(Errors);
}

} // namespace

std::vector<VerifyError> enerj::isa::verify(const IsaProgram &Program) {
  return VerifierImpl(Program).run();
}
