//===- core/precise.h - The @Precise (default) qualifier -------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Precise<T> is an *instrumented* precise value. Semantically it is just a
/// T — EnerJ's default qualifier — and it converts implicitly in both
/// directions. Its only job is measurement: every arithmetic operation is
/// counted as a precise dynamic operation and its storage is counted as
/// precise SRAM byte-seconds, which the paper's JVM instrumentation did for
/// all code. Applications use Precise<T> for the precise side of their data
/// path (loop counters, indices, checksums) so that Figure 3's "fraction of
/// operations executed approximately" has the right denominator.
///
/// Precise<T> never experiences faults: it carries the traditional
/// correctness guarantees.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_CORE_PRECISE_H
#define ENERJ_CORE_PRECISE_H

#include "core/approx.h"
#include "runtime/simulator.h"

#include <type_traits>

namespace enerj {

namespace detail {

/// Counts one precise dynamic operation on the current simulator.
template <typename T> inline void countPrecise() {
  Simulator *Sim = Simulator::current();
  if (!Sim)
    return;
  if constexpr (std::is_floating_point_v<T>)
    Sim->countPreciseFp();
  else
    Sim->countPreciseInt();
}

} // namespace detail

/// A counted precise value. See the file comment.
template <typename T> class Precise {
  static_assert(std::is_arithmetic_v<T>,
                "@Precise qualifies primitive types");

public:
  Precise(T V = T()) : Value(V) { acquire(); }

  Precise(const Precise &Other) : Value(Other.Value) { acquire(); }

  Precise &operator=(const Precise &Other) {
    Value = Other.Value;
    return *this;
  }

  ~Precise() {
    if (Lease.valid() && Simulator::current() == Owner && Owner)
      Owner->ledger().release(Lease);
  }

  /// Precise values flow freely into precise contexts.
  operator T() const { return Value; }

  /// Precise-to-approximate flow via subtyping (Section 2.1).
  operator Approx<T>() const { return Approx<T>(Value); }

  /// The underlying value, for when the implicit conversion is awkward.
  T get() const { return Value; }

  // Arithmetic and comparison operators are provided for Precise/Precise
  // and both Precise/T mixes. The explicit mixed overloads exist to avoid
  // ambiguity with the built-in operators reachable through operator T().
#define ENERJ_PRECISE_ARITH(OP)                                              \
  friend Precise operator OP(const Precise &L, const Precise &R) {          \
    detail::countPrecise<T>();                                               \
    return Precise(static_cast<T>(L.Value OP R.Value), NoCount{});           \
  }                                                                          \
  friend Precise operator OP(const Precise &L, T R) {                       \
    detail::countPrecise<T>();                                               \
    return Precise(static_cast<T>(L.Value OP R), NoCount{});                 \
  }                                                                          \
  friend Precise operator OP(T L, const Precise &R) {                       \
    detail::countPrecise<T>();                                               \
    return Precise(static_cast<T>(L OP R.Value), NoCount{});                 \
  }

  ENERJ_PRECISE_ARITH(+)
  ENERJ_PRECISE_ARITH(-)
  ENERJ_PRECISE_ARITH(*)
  ENERJ_PRECISE_ARITH(/)
#undef ENERJ_PRECISE_ARITH

  friend Precise operator%(const Precise &L, const Precise &R)
    requires std::is_integral_v<T>
  {
    detail::countPrecise<T>();
    return Precise(static_cast<T>(L.Value % R.Value), NoCount{});
  }
  friend Precise operator%(const Precise &L, T R)
    requires std::is_integral_v<T>
  {
    detail::countPrecise<T>();
    return Precise(static_cast<T>(L.Value % R), NoCount{});
  }
  friend Precise operator%(T L, const Precise &R)
    requires std::is_integral_v<T>
  {
    detail::countPrecise<T>();
    return Precise(static_cast<T>(L % R.Value), NoCount{});
  }

  friend Precise operator-(const Precise &V) {
    detail::countPrecise<T>();
    return Precise(static_cast<T>(-V.Value), NoCount{});
  }

  Precise &operator+=(const Precise &R) { return *this = *this + R; }
  Precise &operator-=(const Precise &R) { return *this = *this - R; }
  Precise &operator*=(const Precise &R) { return *this = *this * R; }
  Precise &operator/=(const Precise &R) { return *this = *this / R; }

  Precise &operator++() { return *this += Precise(T(1), NoCount{}); }
  Precise operator++(int) {
    Precise Old = *this;
    ++*this;
    return Old;
  }
  Precise &operator--() { return *this -= Precise(T(1), NoCount{}); }

#define ENERJ_PRECISE_CMP(OP)                                                \
  friend bool operator OP(const Precise &L, const Precise &R) {             \
    detail::countPrecise<T>();                                               \
    return L.Value OP R.Value;                                               \
  }                                                                          \
  friend bool operator OP(const Precise &L, T R) {                          \
    detail::countPrecise<T>();                                               \
    return L.Value OP R;                                                     \
  }                                                                          \
  friend bool operator OP(T L, const Precise &R) {                          \
    detail::countPrecise<T>();                                               \
    return L OP R.Value;                                                     \
  }

  ENERJ_PRECISE_CMP(==)
  ENERJ_PRECISE_CMP(!=)
  ENERJ_PRECISE_CMP(<)
  ENERJ_PRECISE_CMP(<=)
  ENERJ_PRECISE_CMP(>)
  ENERJ_PRECISE_CMP(>=)
#undef ENERJ_PRECISE_CMP

private:
  struct NoCount {};
  Precise(T V, NoCount) : Value(V) { acquire(); }

  void acquire() {
    Simulator *Sim = Simulator::current();
    if (!Sim)
      return;
    Owner = Sim;
    Lease = Sim->ledger().lease(Region::Sram, sizeof(T), 0,
                                Sim->storageTag());
  }

  T Value;
  LeaseHandle Lease;
  Simulator *Owner = nullptr;
};

using PreciseInt = Precise<int32_t>;
using PreciseLong = Precise<int64_t>;
using PreciseFloat = Precise<float>;
using PreciseDouble = Precise<double>;

} // namespace enerj

#endif // ENERJ_CORE_PRECISE_H
