//===- core/enerj.h - EnerJ public API umbrella -----------------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Umbrella header for the EnerJ programming model. Include this to get
/// the full public API:
///
///   Approx<T>, Precise<T>, Top<T>   — the type qualifiers (Section 2.1)
///   endorse()                        — approximate-to-precise flow (2.2)
///   operator overloads, enerj::sqrt — approximate operations (2.3)
///   Precision, Context, Approximable — approximable classes (2.5)
///   ApproxArray<T>, PreciseArray<T> — array rules (2.6)
///   Simulator, SimulatorScope       — the execution substrate (Section 4)
///   FaultConfig, ApproxLevel        — approximation strategies (Table 2)
///   computeEnergy                   — the energy model (Section 5.4)
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_CORE_ENERJ_H
#define ENERJ_CORE_ENERJ_H

#include "core/approx.h"
#include "core/approximable.h"
#include "core/array.h"
#include "core/endorse.h"
#include "core/math.h"
#include "core/object.h"
#include "core/precise.h"
#include "core/top.h"
#include "energy/model.h"
#include "runtime/simulator.h"

#endif // ENERJ_CORE_ENERJ_H
