//===- core/endorse.h - Explicit approximate-to-precise flow ---*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// endorse() (Section 2.2): the one sanctioned gate from approximate to
/// precise. By writing an endorsement the programmer certifies that the
/// approximate data is handled intelligently — typically after a resilient
/// computation phase, before a fault-sensitive reduction or output phase.
///
/// The endorsement has a runtime effect, as the paper allows: it reads the
/// value through the approximate read path one final time (the copy from
/// approximate to precise storage), after which the result carries precise
/// guarantees.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_CORE_ENDORSE_H
#define ENERJ_CORE_ENDORSE_H

#include "core/approx.h"
#include "core/precise.h"

namespace enerj {

/// Casts an approximate value to its precise equivalent (Section 2.2).
template <typename T> T endorse(const Approx<T> &Value) {
  return Value.load();
}

/// Endorsing a precise value is the identity; permitted so that generic
/// code can endorse a Context-qualified value of either precision.
template <typename T> T endorse(T Value)
  requires std::is_arithmetic_v<T>
{
  return Value;
}

/// Identity endorsement of an instrumented precise value.
template <typename T> T endorse(const Precise<T> &Value) {
  return Value.get();
}

} // namespace enerj

#endif // ENERJ_CORE_ENDORSE_H
