//===- core/approximable.h - @Approximable classes & @Context --*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Qualifier polymorphism for classes (Section 2.5). In EnerJ, an
/// @Approximable class can have precise and approximate *instances*, and
/// @Context-qualified members take their precision from the instance's
/// qualifier. In C++ we encode the instance qualifier as a non-type
/// template parameter:
///
/// \code
///   template <Precision P> class IntPair : public Approximable<P> {
///     Context<P, int> X;           // @Context int x;
///     Context<P, int> Y;           // @Context int y;
///     Approx<int> NumAdditions;    // @Approx int numAdditions;
///   public:
///     void addToBoth(Context<P, int> Amount) { ... }
///   };
///   IntPair<Precision::Approx> A;  // fields X, Y approximate
///   IntPair<Precision::Precise> B; // fields X, Y precise
/// \endcode
///
/// Algorithmic approximation (Section 2.5.2) — the _APPROX method naming
/// convention — becomes a constrained overload: declare the precise body
/// with `requires (P == Precision::Precise)` and the approximate body with
/// `requires (P == Precision::Approx)` under the *same name*; the compiler
/// selects the implementation from the receiver's qualifier, exactly like
/// EnerJ's receiver-based dispatch. Because precise class types are not
/// subtypes of their approximate counterparts (Section 2.5), IntPair<Approx>
/// and IntPair<Precise> are unrelated types — the same unsoundness the
/// paper avoids is ruled out for free.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_CORE_APPROXIMABLE_H
#define ENERJ_CORE_APPROXIMABLE_H

#include "core/approx.h"
#include "core/array.h"
#include "core/precise.h"

namespace enerj {

/// The precision qualifier of an approximable-class instance.
enum class Precision { Precise, Approx };

/// True when the enclosing instance is approximate; handy in
/// `if constexpr` bodies and requires-clauses.
template <Precision P>
inline constexpr bool IsApprox = (P == Precision::Approx);

/// @Context T: precise members on precise instances, approximate members
/// on approximate instances (Section 2.5.1).
template <Precision P, typename T>
using Context = std::conditional_t<IsApprox<P>, Approx<T>, Precise<T>>;

/// @Context T[]: the array counterpart.
template <Precision P, typename T>
using ContextArray = std::conditional_t<IsApprox<P>, ApproxArray<T>,
                                        PreciseArray<T>>;

/// Marker base for approximable classes (the @Approximable annotation).
/// Carries no state; it documents intent and lets generic code constrain
/// on "is an approximable class".
template <Precision P> struct Approximable {
  static constexpr Precision InstancePrecision = P;
};

} // namespace enerj

#endif // ENERJ_CORE_APPROXIMABLE_H
