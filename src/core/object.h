//===- core/object.h - Heap-object storage under Section 4.1 ----*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Storage accounting for *heap-allocated* approximable objects. C++ has
/// no field reflection, so a class describes its own fields once (name,
/// size, approximate?) and an ObjectLease charges the object's bytes to
/// DRAM according to the cache-line layout of Section 4.1: precise fields
/// (and the header) first, every line containing a precise byte priced
/// precise, approximate fields after — those stuck on the trailing
/// precise line stay precise and save nothing.
///
/// Stack instances need no lease: their Context<P, T> members are
/// Approx<T>/Precise<T> values that already lease SRAM individually.
///
/// \code
///   template <Precision P> class Particle : public Approximable<P> {
///   public:
///     static std::vector<FieldDecl> layoutFields() {
///       bool A = IsApprox<P>;
///       return {{"x", 4, A}, {"y", 4, A}, {"mass", 4, false}};
///     }
///     ...
///   };
///   HeapObject<Particle<Precision::Approx>> Obj;  // leases DRAM
///   Obj->setX(...);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_CORE_OBJECT_H
#define ENERJ_CORE_OBJECT_H

#include "arch/layout.h"
#include "runtime/simulator.h"

#include <utility>
#include <vector>

namespace enerj {

/// RAII lease charging one object's bytes to DRAM per the Section 4.1
/// layout. Usable directly, or via HeapObject below.
class ObjectLease {
public:
  /// Computes the layout of \p Fields (declaration order, superclass
  /// fields first) at the current simulator's line size and leases the
  /// resulting precise/approximate byte split. With no simulator
  /// installed, the lease is a no-op.
  explicit ObjectLease(const std::vector<FieldDecl> &Fields) {
    Simulator *Sim = Simulator::current();
    if (!Sim)
      return;
    Owner = Sim;
    Layout = layoutObject(Fields, Sim->config().CacheLineBytes);
    Lease = Sim->ledger().lease(Region::Dram, Layout.PreciseBytes,
                                Layout.ApproxBytes, Sim->storageTag());
  }

  ObjectLease(const ObjectLease &) = delete;
  ObjectLease &operator=(const ObjectLease &) = delete;
  ObjectLease(ObjectLease &&Other) noexcept
      : Layout(std::move(Other.Layout)), Lease(Other.Lease),
        Owner(Other.Owner) {
    Other.Lease = LeaseHandle();
    Other.Owner = nullptr;
  }

  ~ObjectLease() {
    if (Lease.valid() && Simulator::current() == Owner && Owner)
      Owner->ledger().release(Lease);
  }

  /// The computed layout (empty when no simulator was installed).
  const LayoutResult &layout() const { return Layout; }

private:
  LayoutResult Layout;
  LeaseHandle Lease;
  Simulator *Owner = nullptr;
};

/// A heap-allocated approximable object with Section 4.1 storage
/// accounting. \p T must provide `static std::vector<FieldDecl>
/// layoutFields()`.
template <typename T> class HeapObject {
public:
  template <typename... Args>
  explicit HeapObject(Args &&...A)
      : Storage(T::layoutFields()), Value(std::forward<Args>(A)...) {}

  T *operator->() { return &Value; }
  const T *operator->() const { return &Value; }
  T &operator*() { return Value; }
  const T &operator*() const { return Value; }

  const LayoutResult &layout() const { return Storage.layout(); }

private:
  ObjectLease Storage;
  T Value;
};

} // namespace enerj

#endif // ENERJ_CORE_OBJECT_H
