//===- core/top.h - The @Top qualifier --------------------------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Top<T> is the common supertype of @Approx T and @Precise T
/// (Section 2.1). Both flow into it implicitly; nothing flows out without
/// an explicit, checked downcast. Mirroring the formal semantics, reading a
/// Top value whose dynamic qualifier is unknown-to-be-precise as precise is
/// a programmer assertion (it traps if wrong), while extracting it as
/// approximate is always allowed — approx makes no guarantees anyway, and
/// in the qualifier ordering information can only be lost, never invented.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_CORE_TOP_H
#define ENERJ_CORE_TOP_H

#include "core/approx.h"
#include "core/endorse.h"
#include "core/precise.h"

#include <cassert>

namespace enerj {

/// A value whose precision qualifier is statically unknown.
template <typename T> class Top {
public:
  /// @Precise T <: @Top T.
  Top(T Value) : Value(Value), DynApprox(false) {}
  Top(const Precise<T> &Value) : Value(Value.get()), DynApprox(false) {}

  /// @Approx T <: @Top T. The read happens through the approximate path.
  Top(const Approx<T> &Value) : Value(Value.load()), DynApprox(true) {}

  /// Whether the stored value came from the approximate world.
  bool isApprox() const { return DynApprox; }

  /// Checked downcast to the precise type: asserts the dynamic qualifier
  /// really is precise. (The static system would reject this entirely;
  /// a dynamic tag is the honest runtime analogue.)
  T asPrecise() const {
    assert(!DynApprox && "downcasting an approximate Top value to precise; "
                         "use asApprox() + endorse() instead");
    return Value;
  }

  /// Downcast to the approximate type; always allowed.
  Approx<T> asApprox() const { return Approx<T>(Value); }

private:
  T Value;
  bool DynApprox;
};

} // namespace enerj

#endif // ENERJ_CORE_TOP_H
