//===- core/math.h - Approximate math intrinsics ----------------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Approximate counterparts of the math intrinsics the evaluation
/// applications need (sqrt, trigonometry, abs, ...). Each is one dynamic
/// approximate FP operation on the current simulator: the operand is
/// narrowed to the configured mantissa width and the result passes through
/// the FP unit's timing model. These correspond to the approximate
/// versions of Java's Math.* that the paper's instrumented runtime
/// provides.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_CORE_MATH_H
#define ENERJ_CORE_MATH_H

#include "core/approx.h"

#include <cmath>

namespace enerj {

namespace detail {

template <typename T, typename Fn> Approx<T> approxUnaryMath(T Value, Fn Op) {
  static_assert(std::is_floating_point_v<T>,
                "approximate math intrinsics are FP operations");
  return Approx<T>(approxBinary<T, T>(Value, Value,
                                      [&Op](T A, T) { return Op(A); }));
}

} // namespace detail

template <typename T> Approx<T> sqrt(const Approx<T> &V) {
  return detail::approxUnaryMath<T>(V.load(),
                                    [](T A) { return std::sqrt(A); });
}

template <typename T> Approx<T> sin(const Approx<T> &V) {
  return detail::approxUnaryMath<T>(V.load(), [](T A) { return std::sin(A); });
}

template <typename T> Approx<T> cos(const Approx<T> &V) {
  return detail::approxUnaryMath<T>(V.load(), [](T A) { return std::cos(A); });
}

template <typename T> Approx<T> exp(const Approx<T> &V) {
  return detail::approxUnaryMath<T>(V.load(), [](T A) { return std::exp(A); });
}

template <typename T> Approx<T> log(const Approx<T> &V) {
  return detail::approxUnaryMath<T>(V.load(), [](T A) { return std::log(A); });
}

template <typename T> Approx<T> abs(const Approx<T> &V) {
  return detail::approxUnaryMath<T>(V.load(),
                                    [](T A) { return std::fabs(A); });
}

template <typename T> Approx<T> floor(const Approx<T> &V) {
  return detail::approxUnaryMath<T>(V.load(),
                                    [](T A) { return std::floor(A); });
}

/// Approximate fused select: min/max as data operations (no control flow,
/// so no endorsement needed).
template <typename T> Approx<T> min(const Approx<T> &A, const Approx<T> &B) {
  return Approx<T>(detail::approxBinary<T, T>(
      A.load(), B.load(), [](T X, T Y) { return X < Y ? X : Y; }));
}

template <typename T> Approx<T> max(const Approx<T> &A, const Approx<T> &B) {
  return Approx<T>(detail::approxBinary<T, T>(
      A.load(), B.load(), [](T X, T Y) { return X < Y ? Y : X; }));
}

} // namespace enerj

#endif // ENERJ_CORE_MATH_H
