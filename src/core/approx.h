//===- core/approx.h - The @Approx type qualifier --------------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Approx<T> is the C++ encoding of EnerJ's @Approx qualifier on a primitive
/// type (Section 2.1). The static isolation guarantees of the paper's type
/// system are enforced by C++'s own conversion rules:
///
///  * precise-to-approximate flow is allowed (implicit constructor — the
///    subtyping rule "precise P <: approx P" for primitives);
///  * approximate-to-precise flow is a compile error (there is no
///    conversion operator to T); the only way out is endorse() (Section 2.2);
///  * approximate conditions are a compile error (Approx<bool> does not
///    convert to bool), reproducing the implicit-flow rule of Section 2.4;
///  * approximate array subscripts are a compile error (Section 2.6).
///
/// Dynamically, an Approx<T> is an approximate register/stack slot: reads
/// suffer SRAM read upsets, writes suffer SRAM write failures, and all
/// arithmetic routes through the approximate functional units of the
/// current Simulator (operand mantissa narrowing plus timing errors).
/// With no simulator installed, every operation is exact — executing the
/// annotations as plain code is a valid execution (Section 4).
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_CORE_APPROX_H
#define ENERJ_CORE_APPROX_H

#include "runtime/simulator.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace enerj {

namespace detail {

/// Computes one approximate binary operation: narrows FP operands, applies
/// the host operation, and passes the result through the timing model.
/// \p Op receives the (possibly narrowed) operands.
template <typename T, typename ResultT, typename OpFn>
ResultT approxBinary(T Lhs, T Rhs, OpFn Op) {
  Simulator *Sim = Simulator::current();
  if (!Sim)
    return Op(Lhs, Rhs);
  T NarrowL = Sim->narrowOperand(Lhs);
  T NarrowR = Sim->narrowOperand(Rhs);
  ResultT Correct = Op(NarrowL, NarrowR);
  return Sim->opResult(Correct, /*IsFp=*/std::is_floating_point_v<T>);
}

} // namespace detail

/// An approximate value of primitive type \p T. See the file comment for
/// the static rules it enforces.
template <typename T> class Approx {
  static_assert(std::is_arithmetic_v<T>,
                "@Approx qualifies primitive types; use Approximable classes "
                "for objects (Section 2.5)");

public:
  /// Precise-to-approximate flow via subtyping (Section 2.1): implicit.
  /// Initialization is a fresh register definition, not a store into
  /// existing approximate storage, so it injects no write failure —
  /// mirroring the paper's instrumentation, which faults variable/field
  /// accesses but not operand-stack temporaries.
  Approx(T Value = T()) { init(Value); }

  Approx(const Approx &Other) { init(Other.load()); }

  /// Assignment overwrites existing approximate storage: the write goes
  /// through the SRAM write-failure path.
  Approx &operator=(const Approx &Other) {
    assign(Other.load());
    return *this;
  }

  Approx &operator=(T Value) {
    assign(Value);
    return *this;
  }

  ~Approx() {
    if (Lease.valid() && Simulator::current() == Owner && Owner)
      Owner->ledger().release(Lease);
  }

  /// Reads the stored value through the approximate read path (SRAM read
  /// upset). Used by endorse() and the operator implementations.
  T load() const {
    Simulator *Sim = Simulator::current();
    if (Sim && Sim == Owner)
      return Sim->sramRead(Storage);
    return Storage;
  }

  /// Reads the stored bits without injecting faults or recording anything.
  /// For test assertions and debugging only — real programs use endorse().
  T peek() const { return Storage; }

  /// Explicit precision conversion, e.g. Approx<float> -> Approx<double>.
  /// The conversion itself is an approximate FP/int operation.
  template <typename U> Approx<U> convert() const {
    T Value = load();
    return Approx<U>(detail::approxBinary<T, U>(
        Value, Value, [](T A, T) { return static_cast<U>(A); }));
  }

  /// --- Approximate arithmetic (Section 2.3). Hidden friends so that
  /// --- mixed precise/approximate expressions promote the precise operand,
  /// --- mirroring EnerJ's overloading + bidirectional typing: the result
  /// --- is approximate, so the approximate operator is selected.

  // Integer arithmetic wraps (approximate values are arbitrary bit
  // patterns); FP arithmetic follows IEEE.
  friend Approx operator+(const Approx &Lhs, const Approx &Rhs) {
    return Approx(detail::approxBinary<T, T>(
        Lhs.load(), Rhs.load(), [](T A, T B) {
          if constexpr (std::is_integral_v<T>)
            return wrapAdd(A, B);
          else
            return static_cast<T>(A + B);
        }));
  }

  friend Approx operator-(const Approx &Lhs, const Approx &Rhs) {
    return Approx(detail::approxBinary<T, T>(
        Lhs.load(), Rhs.load(), [](T A, T B) {
          if constexpr (std::is_integral_v<T>)
            return wrapSub(A, B);
          else
            return static_cast<T>(A - B);
        }));
  }

  friend Approx operator*(const Approx &Lhs, const Approx &Rhs) {
    return Approx(detail::approxBinary<T, T>(
        Lhs.load(), Rhs.load(), [](T A, T B) {
          if constexpr (std::is_integral_v<T>)
            return wrapMul(A, B);
          else
            return static_cast<T>(A * B);
        }));
  }

  /// Approximate division never traps (Section 5.2): integer division by
  /// zero yields zero, FP division by zero yields NaN.
  friend Approx operator/(const Approx &Lhs, const Approx &Rhs) {
    return Approx(detail::approxBinary<T, T>(
        Lhs.load(), Rhs.load(), [](T A, T B) {
          if constexpr (std::is_integral_v<T>) {
            if (B == 0)
              return static_cast<T>(0);
            return wrapDiv(A, B);
          } else {
            if (B == T(0))
              return std::numeric_limits<T>::quiet_NaN();
            return static_cast<T>(A / B);
          }
        }));
  }

  friend Approx operator%(const Approx &Lhs, const Approx &Rhs)
    requires std::is_integral_v<T>
  {
    return Approx(detail::approxBinary<T, T>(
        Lhs.load(), Rhs.load(),
        [](T A, T B) { return B == 0 ? static_cast<T>(0)
                                     : wrapRem(A, B); }));
  }

  friend Approx operator-(const Approx &Value) {
    return Approx(detail::approxBinary<T, T>(
        Value.load(), Value.load(), [](T A, T) {
          if constexpr (std::is_integral_v<T>)
            return wrapNeg(A);
          else
            return static_cast<T>(-A);
        }));
  }

  Approx &operator+=(const Approx &Rhs) { return *this = *this + Rhs; }
  Approx &operator-=(const Approx &Rhs) { return *this = *this - Rhs; }
  Approx &operator*=(const Approx &Rhs) { return *this = *this * Rhs; }
  Approx &operator/=(const Approx &Rhs) { return *this = *this / Rhs; }

  Approx &operator++() { return *this += Approx(T(1)); }
  Approx &operator--() { return *this -= Approx(T(1)); }

  /// --- Approximate comparisons. The result has approximate type, so it
  /// --- cannot steer control flow without an endorsement (Section 2.4).

  friend Approx<bool> operator==(const Approx &Lhs, const Approx &Rhs) {
    return Approx<bool>(detail::approxBinary<T, bool>(
        Lhs.load(), Rhs.load(), [](T A, T B) { return A == B; }));
  }
  friend Approx<bool> operator!=(const Approx &Lhs, const Approx &Rhs) {
    return Approx<bool>(detail::approxBinary<T, bool>(
        Lhs.load(), Rhs.load(), [](T A, T B) { return A != B; }));
  }
  friend Approx<bool> operator<(const Approx &Lhs, const Approx &Rhs) {
    return Approx<bool>(detail::approxBinary<T, bool>(
        Lhs.load(), Rhs.load(), [](T A, T B) { return A < B; }));
  }
  friend Approx<bool> operator<=(const Approx &Lhs, const Approx &Rhs) {
    return Approx<bool>(detail::approxBinary<T, bool>(
        Lhs.load(), Rhs.load(), [](T A, T B) { return A <= B; }));
  }
  friend Approx<bool> operator>(const Approx &Lhs, const Approx &Rhs) {
    return Approx<bool>(detail::approxBinary<T, bool>(
        Lhs.load(), Rhs.load(), [](T A, T B) { return A > B; }));
  }
  friend Approx<bool> operator>=(const Approx &Lhs, const Approx &Rhs) {
    return Approx<bool>(detail::approxBinary<T, bool>(
        Lhs.load(), Rhs.load(), [](T A, T B) { return A >= B; }));
  }

  /// --- Approximate logical connectives on Approx<bool> (non-short-
  /// --- circuiting, like Java's & and | on booleans).

  friend Approx operator&(const Approx &Lhs, const Approx &Rhs)
    requires std::is_same_v<T, bool>
  {
    return Approx(detail::approxBinary<T, bool>(
        Lhs.load(), Rhs.load(), [](bool A, bool B) { return A && B; }));
  }
  friend Approx operator|(const Approx &Lhs, const Approx &Rhs)
    requires std::is_same_v<T, bool>
  {
    return Approx(detail::approxBinary<T, bool>(
        Lhs.load(), Rhs.load(), [](bool A, bool B) { return A || B; }));
  }
  friend Approx operator!(const Approx &Value)
    requires std::is_same_v<T, bool>
  {
    return Approx(detail::approxBinary<T, bool>(
        Value.load(), Value.load(), [](bool A, bool) { return !A; }));
  }

private:
  /// First definition of the slot: leases SRAM, stores raw.
  void init(T Value) {
    Storage = Value;
    Simulator *Sim = Simulator::current();
    if (!Sim)
      return;
    Owner = Sim;
    Lease = Sim->ledger().lease(Region::Sram, 0, sizeof(T),
                                Sim->storageTag());
  }

  /// Overwrite of existing approximate storage: write-failure path.
  void assign(T Value) {
    Simulator *Sim = Simulator::current();
    if (!Sim) {
      Storage = Value;
      return;
    }
    if (!Lease.valid()) {
      Owner = Sim;
      Lease = Sim->ledger().lease(Region::Sram, 0, sizeof(T),
                                  Sim->storageTag());
    }
    Storage = Sim == Owner ? Sim->sramWrite(Value) : Value;
  }

  T Storage = T();
  LeaseHandle Lease;
  Simulator *Owner = nullptr;
};

/// Convenient aliases matching the paper's examples.
using ApproxInt = Approx<int32_t>;
using ApproxLong = Approx<int64_t>;
using ApproxFloat = Approx<float>;
using ApproxDouble = Approx<double>;
using ApproxBool = Approx<bool>;

} // namespace enerj

#endif // ENERJ_CORE_APPROX_H
