//===- core/array.h - Approximate and precise array types ------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Arrays under EnerJ's rules (Section 2.6):
///
///  * ApproxArray<T> has approximate elements but an always-precise length
///    (memory safety), and its subscripts must be precise — indexing with
///    an Approx<U> is a compile error; endorse the index first.
///  * PreciseArray<T> is the instrumented precise counterpart: no faults,
///    but its footprint is charged as precise DRAM byte-seconds.
///
/// Both live on the heap, which the simulator's rough model (Section 5.3)
/// maps to DRAM. An ApproxArray's storage follows the Section 4.1 layout:
/// the first cache line (length + type information) is precise; the rest
/// are approximate and decay with time since their last access under the
/// reduced refresh rate. Each element records its last-access cycle; a
/// read or write refreshes it.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_CORE_ARRAY_H
#define ENERJ_CORE_ARRAY_H

#include "arch/layout.h"
#include "core/approx.h"
#include "core/precise.h"
#include "runtime/simulator.h"

#include <cassert>
#include <cstddef>
#include <vector>

namespace enerj {

/// An array of approximate primitive elements with a precise length.
template <typename T> class ApproxArray {
  static_assert(std::is_arithmetic_v<T>,
                "ApproxArray elements are primitives");

public:
  explicit ApproxArray(size_t Count, T Fill = T())
      : Data(Count, Fill), LastAccess(Count, 0) {
    Simulator *Sim = Simulator::current();
    if (!Sim)
      return;
    Owner = Sim;
    LayoutResult Layout = layoutArray(Count, sizeof(T), /*ElementsApprox=*/true,
                                      Sim->config().CacheLineBytes);
    Lease = Sim->ledger().lease(Region::Dram, Layout.PreciseBytes,
                                Layout.ApproxBytes, Sim->storageTag());
    uint64_t Now = Sim->now();
    for (uint64_t &Cycle : LastAccess)
      Cycle = Now;
  }

  ApproxArray(const ApproxArray &) = delete;
  ApproxArray &operator=(const ApproxArray &) = delete;
  ApproxArray(ApproxArray &&Other) noexcept
      : Data(std::move(Other.Data)), LastAccess(std::move(Other.LastAccess)),
        Lease(Other.Lease), Owner(Other.Owner) {
    Other.Lease = LeaseHandle();
    Other.Owner = nullptr;
  }

  ~ApproxArray() {
    if (Lease.valid() && Simulator::current() == Owner && Owner)
      Owner->ledger().release(Lease);
  }

  /// The length is always precise (Section 2.6).
  size_t size() const { return Data.size(); }

  /// Reads element \p Index through the approximate DRAM path. The read
  /// refreshes the element. The index must be precise.
  Approx<T> get(size_t Index) const {
    assert(Index < Data.size() && "array index out of bounds");
    Simulator *Sim = Simulator::current();
    if (!Sim || Sim != Owner)
      return Approx<T>(Data[Index]);
    T Decayed = Sim->dramAccess(Data[Index], LastAccess[Index]);
    Data[Index] = Decayed; // Decay is physical: the cell changed.
    LastAccess[Index] = Sim->now();
    return Approx<T>(Decayed);
  }

  /// Stores into element \p Index (refreshing it). The value may be
  /// approximate or precise (subtyping); the index must be precise.
  void set(size_t Index, const Approx<T> &Value) {
    assert(Index < Data.size() && "array index out of bounds");
    Simulator *Sim = Simulator::current();
    Data[Index] = Value.load();
    if (Sim && Sim == Owner) {
      LastAccess[Index] = Sim->now();
      Sim->dramStore();
    }
  }

  /// Approximate indices are illegal (Section 2.6): endorse them first.
  template <typename U> Approx<T> get(const Approx<U> &) const = delete;
  template <typename U>
  void set(const Approx<U> &, const Approx<T> &) = delete;

  /// Proxy enabling natural a[i] syntax for both loads and stores.
  class ElementRef {
  public:
    ElementRef(ApproxArray &Array, size_t Index)
        : Array(Array), Index(Index) {}
    operator Approx<T>() const { return Array.get(Index); }
    ElementRef &operator=(const Approx<T> &Value) {
      Array.set(Index, Value);
      return *this;
    }
    ElementRef &operator+=(const Approx<T> &Value) {
      return *this = Array.get(Index) + Value;
    }
    ElementRef &operator-=(const Approx<T> &Value) {
      return *this = Array.get(Index) - Value;
    }
    ElementRef &operator*=(const Approx<T> &Value) {
      return *this = Array.get(Index) * Value;
    }
    ElementRef &operator/=(const Approx<T> &Value) {
      return *this = Array.get(Index) / Value;
    }

  private:
    ApproxArray &Array;
    size_t Index;
  };

  ElementRef operator[](size_t Index) { return ElementRef(*this, Index); }
  Approx<T> operator[](size_t Index) const { return get(Index); }

  template <typename U> ElementRef operator[](const Approx<U> &) = delete;

  /// Faithful bit-level view for QoS comparison after the run; does not
  /// model a load (no decay, no refresh, no counting).
  const std::vector<T> &peek() const { return Data; }

private:
  mutable std::vector<T> Data;
  mutable std::vector<uint64_t> LastAccess;
  LeaseHandle Lease;
  Simulator *Owner = nullptr;
};

/// A heap array of precise elements: no faults, footprint charged as
/// precise DRAM byte-seconds.
template <typename T> class PreciseArray {
public:
  explicit PreciseArray(size_t Count, T Fill = T()) : Data(Count, Fill) {
    Simulator *Sim = Simulator::current();
    if (!Sim)
      return;
    Owner = Sim;
    LayoutResult Layout = layoutArray(Count, sizeof(T),
                                      /*ElementsApprox=*/false,
                                      Sim->config().CacheLineBytes);
    Lease = Sim->ledger().lease(Region::Dram, Layout.PreciseBytes,
                                Layout.ApproxBytes, Sim->storageTag());
  }

  PreciseArray(const PreciseArray &) = delete;
  PreciseArray &operator=(const PreciseArray &) = delete;
  PreciseArray(PreciseArray &&Other) noexcept
      : Data(std::move(Other.Data)), Lease(Other.Lease), Owner(Other.Owner) {
    Other.Lease = LeaseHandle();
    Other.Owner = nullptr;
  }

  ~PreciseArray() {
    if (Lease.valid() && Simulator::current() == Owner && Owner)
      Owner->ledger().release(Lease);
  }

  size_t size() const { return Data.size(); }

  T &operator[](size_t Index) {
    assert(Index < Data.size() && "array index out of bounds");
    return Data[Index];
  }
  const T &operator[](size_t Index) const {
    assert(Index < Data.size() && "array index out of bounds");
    return Data[Index];
  }

  template <typename U> T &operator[](const Approx<U> &) = delete;

  const std::vector<T> &peek() const { return Data; }

private:
  std::vector<T> Data;
  LeaseHandle Lease;
  Simulator *Owner = nullptr;
};

} // namespace enerj

#endif // ENERJ_CORE_ARRAY_H
