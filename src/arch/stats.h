//===- arch/stats.h - Operation and storage statistics ---------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The statistics the paper's simulator records (Section 5.2): dynamic
/// arithmetic operations split by precision and by integer/floating-point,
/// and storage footprint in byte-seconds split by precision and by
/// SRAM (registers + cache, i.e. stack data) vs DRAM (heap data).
/// Figures 3 and 4 are computed from exactly these numbers.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_ARCH_STATS_H
#define ENERJ_ARCH_STATS_H

#include <cstdint>

namespace enerj {

/// Which storage technology holds a piece of data. The paper's rough
/// approximation (Section 5.3): heap data is DRAM, stack data is SRAM.
enum class Region { Sram, Dram };

/// Dynamic operation counters.
struct OperationStats {
  uint64_t PreciseInt = 0;
  uint64_t ApproxInt = 0;
  uint64_t PreciseFp = 0;
  uint64_t ApproxFp = 0;
  uint64_t TimingErrors = 0; ///< Timing faults actually injected.

  uint64_t totalInt() const { return PreciseInt + ApproxInt; }
  uint64_t totalFp() const { return PreciseFp + ApproxFp; }
  uint64_t total() const { return totalInt() + totalFp(); }

  /// Fraction of dynamic integer operations executed approximately
  /// (0 when none were executed).
  double approxIntFraction() const {
    uint64_t Total = totalInt();
    return Total ? static_cast<double>(ApproxInt) / Total : 0.0;
  }

  /// Fraction of dynamic FP operations executed approximately.
  double approxFpFraction() const {
    uint64_t Total = totalFp();
    return Total ? static_cast<double>(ApproxFp) / Total : 0.0;
  }

  /// Proportion of arithmetic that is floating point (Table 3's
  /// "Proportion FP" column).
  double fpProportion() const {
    uint64_t Total = total();
    return Total ? static_cast<double>(totalFp()) / Total : 0.0;
  }

  OperationStats &operator+=(const OperationStats &Other) {
    PreciseInt += Other.PreciseInt;
    ApproxInt += Other.ApproxInt;
    PreciseFp += Other.PreciseFp;
    ApproxFp += Other.ApproxFp;
    TimingErrors += Other.TimingErrors;
    return *this;
  }
};

/// Storage footprint in byte-cycles (converted to byte-seconds by the
/// energy model via the configured clock rate). Approximate bytes are the
/// bytes that actually landed in approximate cache lines / DRAM rows after
/// the Section 4.1 layout, not merely the bytes with approximate type.
struct StorageStats {
  double SramPrecise = 0;
  double SramApprox = 0;
  double DramPrecise = 0;
  double DramApprox = 0;

  double sramTotal() const { return SramPrecise + SramApprox; }
  double dramTotal() const { return DramPrecise + DramApprox; }

  /// Fraction of SRAM byte-seconds holding approximate data (Figure 3).
  double sramApproxFraction() const {
    double Total = sramTotal();
    return Total > 0 ? SramApprox / Total : 0.0;
  }

  /// Fraction of DRAM byte-seconds holding approximate data (Figure 3).
  double dramApproxFraction() const {
    double Total = dramTotal();
    return Total > 0 ? DramApprox / Total : 0.0;
  }

  StorageStats &operator+=(const StorageStats &Other) {
    SramPrecise += Other.SramPrecise;
    SramApprox += Other.SramApprox;
    DramPrecise += Other.DramPrecise;
    DramApprox += Other.DramApprox;
    return *this;
  }
};

/// Everything the simulator measured during one run.
struct RunStats {
  OperationStats Ops;
  StorageStats Storage;
};

} // namespace enerj

#endif // ENERJ_ARCH_STATS_H
