//===- arch/memory.h - Storage accounting and logical clock ----*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The storage side of the hardware model: a logical cycle clock and a
/// byte-second ledger. The simulator ticks the clock once per dynamic
/// operation; every tracked allocation (an Approx<T> scalar on the stack,
/// an ApproxArray<T> on the heap, or an app-registered precise buffer)
/// leases bytes from a region for its lifetime, and the ledger accumulates
/// bytes x cycles into the four StorageStats buckets. DRAM decay timing is
/// the data's own concern (ApproxArray keeps per-element last-access
/// cycles); this class only does bookkeeping.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_ARCH_MEMORY_H
#define ENERJ_ARCH_MEMORY_H

#include "arch/stats.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace enerj {

/// Handle to a live storage lease. Obtained from MemoryLedger::lease.
struct LeaseHandle {
  uint32_t Index = ~0u;
  bool valid() const { return Index != ~0u; }
};

/// The logical clock plus the byte-second ledger.
class MemoryLedger {
public:
  /// Advances the clock by \p Cycles (default: one operation).
  void tick(uint64_t Cycles = 1) { Now += Cycles; }

  /// Current logical time in cycles.
  uint64_t now() const { return Now; }

  /// Starts a lease of \p PreciseBytes + \p ApproxBytes in \p R at the
  /// current time. The split normally comes from a LayoutResult, so the
  /// approximate bytes are post-layout (line-granular) approximate bytes.
  LeaseHandle lease(Region R, uint64_t PreciseBytes, uint64_t ApproxBytes);

  /// Ends a lease, accumulating its byte-cycles into the stats.
  void release(LeaseHandle Handle);

  /// Byte-cycle totals including all still-live leases up to now().
  /// Does not end any lease.
  StorageStats snapshot() const;

  /// Number of live leases (for tests).
  size_t liveLeases() const { return Live; }

private:
  struct LeaseRecord {
    Region Reg = Region::Sram;
    uint64_t PreciseBytes = 0;
    uint64_t ApproxBytes = 0;
    uint64_t Start = 0;
    bool Active = false;
  };

  void accumulate(StorageStats &Into, const LeaseRecord &Rec,
                  uint64_t End) const;

  uint64_t Now = 0;
  StorageStats Finished;
  std::vector<LeaseRecord> Records;
  std::vector<uint32_t> FreeList;
  size_t Live = 0;
};

} // namespace enerj

#endif // ENERJ_ARCH_MEMORY_H
