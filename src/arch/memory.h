//===- arch/memory.h - Storage accounting and logical clock ----*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The storage side of the hardware model: a logical cycle clock and a
/// byte-second ledger. The simulator ticks the clock once per dynamic
/// operation; every tracked allocation (an Approx<T> scalar on the stack,
/// an ApproxArray<T> on the heap, or an app-registered precise buffer)
/// leases bytes from a region for its lifetime, and the ledger accumulates
/// bytes x cycles into the four StorageStats buckets. DRAM decay timing is
/// the data's own concern (ApproxArray keeps per-element last-access
/// cycles); this class only does bookkeeping.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_ARCH_MEMORY_H
#define ENERJ_ARCH_MEMORY_H

#include "arch/stats.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace enerj {

/// Handle to a live storage lease. Obtained from MemoryLedger::lease.
struct LeaseHandle {
  uint32_t Index = ~0u;
  bool valid() const { return Index != ~0u; }
};

/// The logical clock plus the byte-second ledger.
class MemoryLedger {
public:
  /// Advances the clock by \p Cycles (default: one operation).
  void tick(uint64_t Cycles = 1) { Now += Cycles; }

  /// Current logical time in cycles.
  uint64_t now() const { return Now; }

  /// Starts a lease of \p PreciseBytes + \p ApproxBytes in \p R at the
  /// current time. The split normally comes from a LayoutResult, so the
  /// approximate bytes are post-layout (line-granular) approximate bytes.
  /// \p Tag is an opaque attribution key (the telemetry layer passes the
  /// active region id); it only matters when tagging is enabled.
  LeaseHandle lease(Region R, uint64_t PreciseBytes, uint64_t ApproxBytes,
                    uint32_t Tag = 0);

  /// Ends a lease, accumulating its byte-cycles into the stats.
  void release(LeaseHandle Handle);

  /// Byte-cycle totals including all still-live leases up to now().
  /// Does not end any lease.
  StorageStats snapshot() const;

  /// Opts into per-tag accounting. Off by default so the untelemetered
  /// path does no extra work; the telemetry attach turns it on before any
  /// lease is taken.
  void enableTagging() { Tagging = true; }
  bool taggingEnabled() const { return Tagging; }

  /// Per-tag byte-cycle totals (index = tag), live leases included.
  /// Element-wise it sums to snapshot() for leases taken after tagging
  /// was enabled.
  std::vector<StorageStats> snapshotTagged() const;

  /// Number of live leases (for tests).
  size_t liveLeases() const { return Live; }

private:
  struct LeaseRecord {
    Region Reg = Region::Sram;
    uint64_t PreciseBytes = 0;
    uint64_t ApproxBytes = 0;
    uint64_t Start = 0;
    uint32_t Tag = 0;
    bool Active = false;
  };

  void accumulate(StorageStats &Into, const LeaseRecord &Rec,
                  uint64_t End) const;
  StorageStats &taggedBucket(uint32_t Tag);

  uint64_t Now = 0;
  StorageStats Finished;
  std::vector<StorageStats> FinishedByTag;
  std::vector<LeaseRecord> Records;
  std::vector<uint32_t> FreeList;
  size_t Live = 0;
  bool Tagging = false;
};

} // namespace enerj

#endif // ENERJ_ARCH_MEMORY_H
