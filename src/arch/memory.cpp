//===- arch/memory.cpp - Storage accounting and logical clock ------------===//

#include "arch/memory.h"

#include <cassert>

using namespace enerj;

LeaseHandle MemoryLedger::lease(Region R, uint64_t PreciseBytes,
                                uint64_t ApproxBytes, uint32_t Tag) {
  uint32_t Index;
  if (!FreeList.empty()) {
    Index = FreeList.back();
    FreeList.pop_back();
  } else {
    Index = static_cast<uint32_t>(Records.size());
    Records.emplace_back();
  }
  LeaseRecord &Rec = Records[Index];
  Rec.Reg = R;
  Rec.PreciseBytes = PreciseBytes;
  Rec.ApproxBytes = ApproxBytes;
  Rec.Start = Now;
  Rec.Tag = Tagging ? Tag : 0;
  Rec.Active = true;
  ++Live;
  return {Index};
}

void MemoryLedger::accumulate(StorageStats &Into, const LeaseRecord &Rec,
                              uint64_t End) const {
  assert(End >= Rec.Start && "lease ends before it starts");
  double Duration = static_cast<double>(End - Rec.Start);
  double PreciseBC = Duration * static_cast<double>(Rec.PreciseBytes);
  double ApproxBC = Duration * static_cast<double>(Rec.ApproxBytes);
  if (Rec.Reg == Region::Sram) {
    Into.SramPrecise += PreciseBC;
    Into.SramApprox += ApproxBC;
  } else {
    Into.DramPrecise += PreciseBC;
    Into.DramApprox += ApproxBC;
  }
}

void MemoryLedger::release(LeaseHandle Handle) {
  if (!Handle.valid())
    return;
  assert(Handle.Index < Records.size() && "bad lease handle");
  LeaseRecord &Rec = Records[Handle.Index];
  assert(Rec.Active && "double release of a storage lease");
  accumulate(Finished, Rec, Now);
  if (Tagging)
    accumulate(taggedBucket(Rec.Tag), Rec, Now);
  Rec.Active = false;
  FreeList.push_back(Handle.Index);
  assert(Live > 0);
  --Live;
}

StorageStats MemoryLedger::snapshot() const {
  StorageStats Stats = Finished;
  for (const LeaseRecord &Rec : Records)
    if (Rec.Active)
      accumulate(Stats, Rec, Now);
  return Stats;
}

StorageStats &MemoryLedger::taggedBucket(uint32_t Tag) {
  if (Tag >= FinishedByTag.size())
    FinishedByTag.resize(Tag + 1);
  return FinishedByTag[Tag];
}

std::vector<StorageStats> MemoryLedger::snapshotTagged() const {
  std::vector<StorageStats> Stats = FinishedByTag;
  for (const LeaseRecord &Rec : Records)
    if (Rec.Active) {
      if (Rec.Tag >= Stats.size())
        Stats.resize(Rec.Tag + 1);
      accumulate(Stats[Rec.Tag], Rec, Now);
    }
  return Stats;
}
