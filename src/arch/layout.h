//===- arch/layout.h - Cache-line-granularity data layout ------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The object and array layout scheme of Section 4.1. Approximation is
/// supported at cache-line granularity: a line is either precise or
/// approximate, and the runtime must segregate data accordingly.
///
/// Objects: the precise portion (including the vtable pointer / header) is
/// laid out first, contiguously; every line containing at least one precise
/// byte is a precise line. Approximate fields are then appended: those that
/// fall in the trailing precise line stay precise (and save no memory
/// energy); the remainder go to approximate lines. Field order is
/// superclass-first and may not be rearranged in subclasses.
///
/// Arrays of approximate primitives: the first line (length + type
/// information) is precise; all remaining lines are approximate.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_ARCH_LAYOUT_H
#define ENERJ_ARCH_LAYOUT_H

#include <cstdint>
#include <string>
#include <vector>

namespace enerj {

/// Default line size assumed throughout the paper's evaluation.
inline constexpr uint64_t DefaultCacheLineBytes = 64;

/// Size in bytes of the object header (vtable pointer), always precise.
inline constexpr uint64_t ObjectHeaderBytes = 8;

/// One declared field of a class, in declaration order.
struct FieldDecl {
  std::string Name;
  uint64_t Bytes = 0;
  bool Approx = false;
};

/// Where one field ended up.
struct FieldPlacement {
  std::string Name;
  uint64_t Offset = 0;   ///< Byte offset within the object.
  uint64_t Bytes = 0;
  bool DeclaredApprox = false;
  bool StoredApprox = false; ///< False for approx fields stuck on a precise line.
};

/// The result of laying out one object or array.
struct LayoutResult {
  uint64_t LineBytes = DefaultCacheLineBytes;
  uint64_t TotalBytes = 0;       ///< Object size, padded to whole lines.
  uint64_t PreciseBytes = 0;     ///< Bytes living in precise lines.
  uint64_t ApproxBytes = 0;      ///< Bytes living in approximate lines.
  std::vector<bool> LineIsApprox; ///< Per-line approximation bit (the bitmap).
  std::vector<FieldPlacement> Fields;

  uint64_t lineCount() const { return LineIsApprox.size(); }

  /// Fraction of the object's lines that could be made approximate.
  double approxLineFraction() const {
    if (LineIsApprox.empty())
      return 0.0;
    uint64_t Approx = 0;
    for (bool B : LineIsApprox)
      Approx += B;
    return static_cast<double>(Approx) / LineIsApprox.size();
  }
};

/// Lays out an object with the given fields (in declaration order,
/// superclass fields first) per Section 4.1. \p HeaderBytes precise bytes
/// (vtable pointer etc.) always come first.
LayoutResult layoutObject(const std::vector<FieldDecl> &Fields,
                          uint64_t LineBytes = DefaultCacheLineBytes,
                          uint64_t HeaderBytes = ObjectHeaderBytes);

/// Lays out an array of \p Count elements of \p ElementBytes each. When
/// \p ElementsApprox, the first line (length/type header) is precise and
/// all remaining lines are approximate; otherwise everything is precise.
LayoutResult layoutArray(uint64_t Count, uint64_t ElementBytes,
                         bool ElementsApprox,
                         uint64_t LineBytes = DefaultCacheLineBytes);

} // namespace enerj

#endif // ENERJ_ARCH_LAYOUT_H
