//===- arch/layout.cpp - Cache-line-granularity data layout --------------===//

#include "arch/layout.h"

#include <cassert>

using namespace enerj;

/// Bytes of array header (length + type information), always precise.
static constexpr uint64_t ArrayHeaderBytes = 16;

static uint64_t ceilDiv(uint64_t A, uint64_t B) { return (A + B - 1) / B; }

LayoutResult enerj::layoutObject(const std::vector<FieldDecl> &Fields,
                                 uint64_t LineBytes, uint64_t HeaderBytes) {
  assert(LineBytes > 0 && "line size must be positive");
  LayoutResult Result;
  Result.LineBytes = LineBytes;

  // Phase 1: header, then precise fields, contiguously and in declaration
  // order (superclass fields first; the caller passes them first).
  uint64_t Offset = HeaderBytes;
  for (const FieldDecl &F : Fields) {
    if (F.Approx)
      continue;
    Result.Fields.push_back({F.Name, Offset, F.Bytes, false, false});
    Offset += F.Bytes;
  }
  uint64_t PreciseEnd = Offset;
  // Every line containing at least one precise byte is a precise line.
  uint64_t PreciseLines = ceilDiv(PreciseEnd, LineBytes);
  uint64_t PreciseRegionEnd = PreciseLines * LineBytes;

  // Phase 2: approximate fields after the precise data. Bytes that land in
  // the trailing precise line stay precise (wasting space to push them to
  // an approximate line would use more memory and thus more energy).
  for (const FieldDecl &F : Fields) {
    if (!F.Approx)
      continue;
    bool StoredApprox = Offset >= PreciseRegionEnd;
    Result.Fields.push_back({F.Name, Offset, F.Bytes, true, StoredApprox});
    Offset += F.Bytes;
  }
  Result.TotalBytes = Offset;

  // Per-byte accounting: bytes in lines < PreciseLines are precise.
  uint64_t BoundaryInObject =
      PreciseRegionEnd < Offset ? PreciseRegionEnd : Offset;
  Result.PreciseBytes = BoundaryInObject;
  Result.ApproxBytes = Offset - BoundaryInObject;

  // Fix up placements that straddle the boundary: a field is stored
  // approximately only if all its bytes live in approximate lines.
  for (FieldPlacement &P : Result.Fields)
    if (P.DeclaredApprox)
      P.StoredApprox = P.Offset >= PreciseRegionEnd;

  uint64_t Lines = ceilDiv(Offset, LineBytes);
  Result.LineIsApprox.assign(Lines, false);
  for (uint64_t L = PreciseLines; L < Lines; ++L)
    Result.LineIsApprox[L] = true;
  return Result;
}

LayoutResult enerj::layoutArray(uint64_t Count, uint64_t ElementBytes,
                                bool ElementsApprox, uint64_t LineBytes) {
  assert(LineBytes > 0 && "line size must be positive");
  LayoutResult Result;
  Result.LineBytes = LineBytes;
  uint64_t Occupied = ArrayHeaderBytes + Count * ElementBytes;
  Result.TotalBytes = Occupied;
  uint64_t Lines = ceilDiv(Occupied, LineBytes);
  Result.LineIsApprox.assign(Lines, false);

  if (!ElementsApprox) {
    Result.PreciseBytes = Occupied;
    Result.ApproxBytes = 0;
    return Result;
  }

  // First line (length + type information) precise; the rest approximate.
  uint64_t FirstLineEnd = LineBytes < Occupied ? LineBytes : Occupied;
  Result.PreciseBytes = FirstLineEnd;
  Result.ApproxBytes = Occupied - FirstLineEnd;
  for (uint64_t L = 1; L < Lines; ++L)
    Result.LineIsApprox[L] = true;
  return Result;
}
