//===- obs/metrics.h - Site-level approximation metrics --------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics half of the observability layer: plain-struct counters and
/// fixed-bucket histograms keyed by an interned *site*. A site is
/// (region label, operation kind); the region label names the source
/// kernel or phase the application is executing (obs::RegionScope), the
/// operation kind names what the hardware did (an approximate FP op, an
/// SRAM read, a DRAM array store, ...), and the storage class is derived
/// from the kind. Every approximate load/store/ALU operation and every
/// injected fault the Simulator performs is attributable to exactly one
/// site, which is what turns the paper's aggregate Figure 4 numbers into
/// a per-site engineering instrument.
///
/// One MetricsRegistry belongs to one Simulator (via obs::Telemetry) and
/// is therefore single-threaded by construction — no locks anywhere, the
/// hot path is two vector indexing operations and an increment. Trial
/// boundaries merge registries *by region name* (merge()), so registries
/// whose labels were interned in different orders (e.g. a degraded
/// attempt that skipped a phase) combine correctly; merging is
/// associative and commutative over the counter values.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_OBS_METRICS_H
#define ENERJ_OBS_METRICS_H

#include "arch/stats.h"

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace enerj {
namespace obs {

/// What one dynamic operation did, from the telemetry layer's point of
/// view. The first four are the arithmetic kinds of OperationStats; the
/// rest are the memory paths the Simulator instruments.
enum class OpKind : uint8_t {
  PreciseInt, ///< Precise integer ALU operation (ticks the clock).
  ApproxInt,  ///< Approximate integer ALU operation (ticks).
  PreciseFp,  ///< Precise FP operation (ticks).
  ApproxFp,   ///< Approximate FP operation (ticks).
  SramRead,   ///< Approximate SRAM (register/stack) read (no tick).
  SramWrite,  ///< Approximate SRAM write (no tick).
  DramLoad,   ///< Approximate DRAM (heap array) load with decay (ticks).
  DramStore,  ///< Approximate DRAM store (ticks).
};

constexpr unsigned NumOpKinds = 8;

/// Which hardware component a site's energy/faults belong to.
enum class StorageClass : uint8_t { Alu, Sram, Dram };

const char *opKindName(OpKind Kind);
const char *storageClassName(StorageClass Class);
StorageClass storageClassOf(OpKind Kind);

/// Whether an operation of this kind advances the simulator's logical
/// clock (MemoryLedger::tick). The op-ticking audit cross-checks the sum
/// of ticking site counts against the ledger's clock.
bool opTicks(OpKind Kind);

/// Fixed-bucket histogram of corrupted bits per faulting operation.
/// Bucket edges are powers of two: {1, 2, 3-4, 5-8, 9-16, 17-32, 33-64}.
/// (A 65th bucket is unreachable for <= 64-bit values but kept so the
/// bucket math has no special cases.)
struct FlipHistogram {
  static constexpr int NumBuckets = 8;
  uint64_t Buckets[NumBuckets] = {};

  /// The bucket index holding \p Bits flipped bits (Bits >= 1).
  static int bucketOf(unsigned Bits);
  /// Human-readable bucket label ("1", "2", "3-4", ...).
  static const char *bucketLabel(int Bucket);

  void record(unsigned Bits) { ++Buckets[bucketOf(Bits)]; }
  uint64_t total() const;
  FlipHistogram &operator+=(const FlipHistogram &Other);
};

/// Fixed-bucket log2 histogram of DRAM inter-access gaps in cycles:
/// bucket b counts gaps in [2^(b-1), 2^b - 1] (bucket 0 counts zero-cycle
/// gaps). Long gaps are where refresh-reduction decay actually bites, so
/// this is the "which data sat cold" signal.
struct Log2Histogram {
  static constexpr int NumBuckets = 32;
  uint64_t Buckets[NumBuckets] = {};

  static int bucketOf(uint64_t Value);

  void record(uint64_t Value) { ++Buckets[bucketOf(Value)]; }
  uint64_t total() const;
  Log2Histogram &operator+=(const Log2Histogram &Other);
};

/// The counters of one site.
struct SiteCounters {
  uint64_t Count = 0;       ///< Dynamic operations executed at this site.
  uint64_t Faults = 0;      ///< Operations where >= 1 bit was corrupted.
  uint64_t FlippedBits = 0; ///< Total corrupted bits across those faults.
  FlipHistogram Flips;      ///< Corrupted bits per faulting operation.

  SiteCounters &operator+=(const SiteCounters &Other);
};

/// A site's identity: the interned region plus the operation kind.
struct SiteKey {
  uint32_t Region = 0;
  OpKind Kind = OpKind::PreciseInt;
};

/// Per-Simulator metrics store. See the file comment for the threading
/// and merge model.
class MetricsRegistry {
public:
  static constexpr uint32_t InvalidSite = ~0u;

  /// Region 0 is always the implicit whole-program region "main".
  MetricsRegistry();

  /// --- Region labels (interning + the active-region stack). ---

  /// Interns \p Label, returning its stable id. Ids are assigned in
  /// first-use order, which is execution order and therefore
  /// deterministic for a deterministic trial.
  uint32_t internRegion(std::string_view Label);

  const std::string &regionName(uint32_t Region) const {
    return RegionNames[Region];
  }
  size_t regionCount() const { return RegionNames.size(); }

  /// Pushes/pops the active region (RegionScope does this).
  void enterRegion(uint32_t Region);
  void exitRegion();
  uint32_t currentRegion() const { return Stack.back(); }

  /// --- The hot path. ---

  /// Records one completed operation of \p Kind at the current region,
  /// with \p FlippedBits corrupted bits (0 = the common faultless case).
  void recordOp(OpKind Kind, unsigned FlippedBits) {
    uint32_t &Slot = SiteIndex[Stack.back()][static_cast<unsigned>(Kind)];
    if (Slot == InvalidSite)
      Slot = addSite(Stack.back(), Kind);
    SiteCounters &C = Sites[Slot].Counters;
    ++C.Count;
    if (FlippedBits != 0) {
      ++C.Faults;
      C.FlippedBits += FlippedBits;
      C.Flips.record(FlippedBits);
    }
  }

  /// Records one DRAM inter-access gap (cycles since the element's last
  /// refresh) into the registry-level decay histogram.
  void recordDramGap(uint64_t Cycles) { DramGaps.record(Cycles); }

  /// --- Site access (reporting). ---

  size_t siteCount() const { return Sites.size(); }
  SiteKey siteKey(size_t Site) const {
    return {Sites[Site].Region, Sites[Site].Kind};
  }
  const SiteCounters &site(size_t Site) const {
    return Sites[Site].Counters;
  }
  /// The counters for (\p Region, \p Kind); null if never recorded.
  const SiteCounters *find(uint32_t Region, OpKind Kind) const;

  const Log2Histogram &dramGaps() const { return DramGaps; }

  /// Sum of Count over the sites whose kind ticks the clock — must equal
  /// MemoryLedger::now() for a completed (non-aborted) run.
  uint64_t totalTicks() const;
  /// Sum of Count over every site.
  uint64_t totalOps() const;
  /// Sum of Faults over every site.
  uint64_t totalFaults() const;

  /// --- Per-region storage byte-cycles (from MemoryLedger's tagged
  /// --- snapshot; index = region id). ---

  void setRegionStorage(std::vector<StorageStats> ByRegion) {
    RegionStorage = std::move(ByRegion);
  }
  const std::vector<StorageStats> &regionStorage() const {
    return RegionStorage;
  }

  /// --- Trial-boundary merge. ---

  /// Folds \p Other into this registry, matching sites by (region *name*,
  /// kind) so label interning order does not matter. Associative and
  /// commutative over counter values (region id assignment depends on
  /// merge order, which is why reports key on names, never raw ids).
  void merge(const MetricsRegistry &Other);

private:
  struct Site {
    uint32_t Region;
    OpKind Kind;
    SiteCounters Counters;
  };

  uint32_t addSite(uint32_t Region, OpKind Kind);

  std::vector<std::string> RegionNames;
  /// SiteIndex[region][kind] -> index into Sites (InvalidSite = none).
  std::vector<std::array<uint32_t, NumOpKinds>> SiteIndex;
  std::vector<uint32_t> Stack;
  std::vector<Site> Sites;
  std::vector<StorageStats> RegionStorage;
  Log2Histogram DramGaps;
};

} // namespace obs
} // namespace enerj

#endif // ENERJ_OBS_METRICS_H
