//===- obs/journal.cpp - Trial flight recorder with replay ----------------===//

#include "obs/journal.h"

#include "exec/compiled.h"
#include "obs/json_mini.h"
#include "support/rng.h"

#include <algorithm>
#include <fstream>
#include <optional>
#include <stdexcept>

using namespace enerj;
using namespace enerj::obs;
using namespace enerj::obs::json;

namespace {

// --- Name -> enum (the renderers' tables, inverted by search; every
// --- table is tiny and parsing is far from any hot path).

bool levelFromName(const std::string &Name, ApproxLevel *Out) {
  for (ApproxLevel L : {ApproxLevel::None, ApproxLevel::Mild,
                        ApproxLevel::Medium, ApproxLevel::Aggressive})
    if (Name == approxLevelName(L)) {
      *Out = L;
      return true;
    }
  return false;
}

bool modeFromName(const std::string &Name, ErrorMode *Out) {
  for (ErrorMode M : {ErrorMode::RandomValue, ErrorMode::SingleBitFlip,
                      ErrorMode::LastValue})
    if (Name == errorModeName(M)) {
      *Out = M;
      return true;
    }
  return false;
}

bool outcomeFromName(const std::string &Name,
                     resilience::TrialOutcome *Out) {
  using resilience::TrialOutcome;
  for (TrialOutcome O :
       {TrialOutcome::Ok, TrialOutcome::SloViolated, TrialOutcome::Aborted,
        TrialOutcome::Retried, TrialOutcome::Degraded,
        TrialOutcome::PowerFailed})
    if (Name == resilience::trialOutcomeName(O)) {
      *Out = O;
      return true;
    }
  return false;
}

bool eventKindFromName(const std::string &Name, TraceEventKind *Out) {
  for (TraceEventKind K :
       {TraceEventKind::RegionEnter, TraceEventKind::RegionExit,
        TraceEventKind::Fault, TraceEventKind::AttemptBegin,
        TraceEventKind::AttemptEnd, TraceEventKind::Retry,
        TraceEventKind::Degrade, TraceEventKind::Abort,
        TraceEventKind::PowerLoss, TraceEventKind::Checkpoint,
        TraceEventKind::Restore})
    if (Name == traceEventKindName(K)) {
      *Out = K;
      return true;
    }
  return false;
}

bool opKindFromName(const std::string &Name, OpKind *Out) {
  for (unsigned K = 0; K < NumOpKinds; ++K)
    if (Name == opKindName(static_cast<OpKind>(K))) {
      *Out = static_cast<OpKind>(K);
      return true;
    }
  return false;
}

bool execModeFromName(const std::string &Name, harness::ExecMode *Out) {
  for (harness::ExecMode M :
       {harness::ExecMode::Interp, harness::ExecMode::Compiled})
    if (Name == harness::execModeName(M)) {
      *Out = M;
      return true;
    }
  return false;
}

// --- Parse helpers: required members with the right JSON type, so a
// --- truncated or hand-mangled journal fails loudly instead of
// --- replaying a different trial.

struct ParseFail {
  std::string Message;
};

const Value &member(const Value &Obj, const char *Key, Value::Kind Kind) {
  const Value *V = Obj.find(Key);
  if (!V)
    throw ParseFail{std::string("missing key \"") + Key + "\""};
  if (V->K != Kind)
    throw ParseFail{std::string("key \"") + Key + "\" has the wrong type"};
  return *V;
}

double numberOf(const Value &Obj, const char *Key) {
  return member(Obj, Key, Value::Kind::Number).asDouble();
}
uint64_t u64Of(const Value &Obj, const char *Key) {
  return member(Obj, Key, Value::Kind::Number).asU64();
}
int64_t i64Of(const Value &Obj, const char *Key) {
  return member(Obj, Key, Value::Kind::Number).asI64();
}
bool boolOf(const Value &Obj, const char *Key) {
  return member(Obj, Key, Value::Kind::Bool).B;
}
const std::string &stringOf(const Value &Obj, const char *Key) {
  return member(Obj, Key, Value::Kind::String).Text;
}

/// Rebuilt execution context for one journal: the owned provenance
/// (power environment, compiled program cache) plus the Trial that
/// points into it.
struct ReplayContext {
  std::optional<env::PowerEnv> Power;
  std::optional<exec::ProgramCache> Kernels;
  harness::Trial T;
};

/// Populates \p Ctx in place: the Trial points into the context's owned
/// provenance (and ProgramCache is immovable besides).
void buildTrial(const Journal &J, const std::string &KernelDir,
                ReplayContext &Ctx) {
  Ctx.T.Config = J.Config;
  Ctx.T.WorkloadSeed = J.WorkloadSeed;
  Ctx.T.Obs = J.Obs;

  if (J.Exec == harness::ExecMode::Compiled) {
    if (KernelDir.empty())
      throw std::runtime_error(
          "compiled journal needs a kernel directory to replay");
    Ctx.Kernels.emplace(KernelDir);
    Ctx.T.Kernel = &Ctx.Kernels->get(J.App, J.Config.Level);
    Ctx.T.Kernels = &*Ctx.Kernels;
  } else {
    Ctx.T.App = apps::findApplication(J.App);
    if (!Ctx.T.App)
      throw std::runtime_error("journal names unknown application '" +
                               J.App + "'");
  }

  if (J.PowerArmed) {
    // The recorded name is the full preset spec text, or a trace file
    // path — the same file-first resolution the eval CLI applies.
    std::string Error;
    std::optional<env::PowerTraceSpec> Trace;
    if (std::ifstream(J.PowerTrace).good())
      Trace = env::PowerTraceSpec::fromFile(J.PowerTrace, &Error);
    else
      Trace = env::PowerTraceSpec::preset(J.PowerTrace, &Error);
    if (!Trace)
      throw std::runtime_error("journal power trace '" + J.PowerTrace +
                               "' did not reconstruct: " + Error);
    std::optional<env::CheckpointPolicy> Checkpoint =
        env::CheckpointPolicy::parse(J.Checkpoint, &Error);
    if (!Checkpoint)
      throw std::runtime_error("journal checkpoint policy '" + J.Checkpoint +
                               "' did not reconstruct: " + Error);
    Ctx.Power.emplace();
    Ctx.Power->Trace = *Trace;
    Ctx.Power->Checkpoint = *Checkpoint;
    Ctx.T.Power = &*Ctx.Power;
  }
}

/// The grid's trial-boundary containment, reproduced exactly: a journal
/// of a contained abort must replay to the identical failed result.
harness::TrialResult runContained(const harness::Trial &T,
                                  const resilience::ResiliencePolicy &Policy) {
  try {
    return harness::TrialRunner::runOne(T, Policy);
  } catch (const std::exception &E) {
    harness::TrialResult Failed;
    Failed.QosError = 1.0;
    Failed.Outcome = resilience::TrialOutcome::Aborted;
    Failed.FinalLevel = T.Config.Level;
    Failed.EffectiveEnergyFactor = 0.0;
    Failed.Error = E.what();
    return Failed;
  } catch (...) {
    harness::TrialResult Failed;
    Failed.QosError = 1.0;
    Failed.Outcome = resilience::TrialOutcome::Aborted;
    Failed.FinalLevel = T.Config.Level;
    Failed.EffectiveEnergyFactor = 0.0;
    Failed.Error = "unknown exception escaped the trial";
    return Failed;
  }
}

} // namespace

JournalDigest enerj::obs::digestOf(const harness::TrialResult &Result) {
  JournalDigest D;
  D.Qos = Result.QosError;
  D.Energy = Result.Energy.TotalFactor;
  D.EffectiveEnergy = Result.EffectiveEnergyFactor;
  D.Outcome = Result.Outcome;
  D.FinalLevel = Result.FinalLevel;
  D.Attempts = Result.Attempts;
  D.ClockCycles = Result.ClockCycles;
  D.PreciseInt = Result.Stats.Ops.PreciseInt;
  D.ApproxInt = Result.Stats.Ops.ApproxInt;
  D.PreciseFp = Result.Stats.Ops.PreciseFp;
  D.ApproxFp = Result.Stats.Ops.ApproxFp;
  D.TimingErrors = Result.Stats.Ops.TimingErrors;
  D.SramPrecise = Result.Stats.Storage.SramPrecise;
  D.SramApprox = Result.Stats.Storage.SramApprox;
  D.DramPrecise = Result.Stats.Storage.DramPrecise;
  D.DramApprox = Result.Stats.Storage.DramApprox;
  D.PowerLosses = Result.Power.Losses;
  D.PowerCheckpoints = Result.Power.Checkpoints;
  D.PowerReExecutedOps = Result.Power.ReExecutedOps;
  D.PowerSurvived = Result.Power.Survived;
  return D;
}

std::string enerj::obs::renderDigestJson(const JournalDigest &D) {
  std::string Out;
  Out += "{\"qos\":";
  appendDouble(Out, D.Qos);
  Out += ",\"energy\":";
  appendDouble(Out, D.Energy);
  Out += ",\"effectiveEnergy\":";
  appendDouble(Out, D.EffectiveEnergy);
  Out += ",\"outcome\":\"";
  Out += resilience::trialOutcomeName(D.Outcome);
  Out += "\",\"finalLevel\":\"";
  Out += approxLevelName(D.FinalLevel);
  Out += "\",\"attempts\":";
  appendI64(Out, D.Attempts);
  Out += ",\"clockCycles\":";
  appendU64(Out, D.ClockCycles);
  Out += ",\"ops\":{\"preciseInt\":";
  appendU64(Out, D.PreciseInt);
  Out += ",\"approxInt\":";
  appendU64(Out, D.ApproxInt);
  Out += ",\"preciseFp\":";
  appendU64(Out, D.PreciseFp);
  Out += ",\"approxFp\":";
  appendU64(Out, D.ApproxFp);
  Out += ",\"timingErrors\":";
  appendU64(Out, D.TimingErrors);
  Out += "},\"storage\":{\"sramPrecise\":";
  appendDouble(Out, D.SramPrecise);
  Out += ",\"sramApprox\":";
  appendDouble(Out, D.SramApprox);
  Out += ",\"dramPrecise\":";
  appendDouble(Out, D.DramPrecise);
  Out += ",\"dramApprox\":";
  appendDouble(Out, D.DramApprox);
  Out += "},\"power\":{\"losses\":";
  appendU64(Out, D.PowerLosses);
  Out += ",\"checkpoints\":";
  appendU64(Out, D.PowerCheckpoints);
  Out += ",\"reExecutedOps\":";
  appendU64(Out, D.PowerReExecutedOps);
  Out += ",\"survived\":";
  appendBool(Out, D.PowerSurvived);
  Out += "}}";
  return Out;
}

Journal enerj::obs::buildJournal(const harness::EvalResult &Grid,
                                 const harness::TrialRecord &Record) {
  Journal J;
  J.App = Record.AppName;
  J.Exec = Grid.Exec;
  J.Config = Record.Config;
  J.WorkloadSeed = Record.WorkloadSeed;
  J.Obs = Record.Obs;
  J.Policy = Grid.Policy;
  J.PowerArmed = Grid.PowerArmed;
  J.PowerTrace = Grid.Power.Trace.Name;
  J.Checkpoint = Grid.Power.Checkpoint.Spec;
  for (uint32_t R = 0; R < Record.Result.Metrics.regionCount(); ++R)
    J.Regions.push_back(Record.Result.Metrics.regionName(R));
  J.Timeline = Record.Result.Trace;
  J.TimelineDropped = Record.Result.TraceDropped;
  J.Digest = digestOf(Record.Result);
  return J;
}

std::string enerj::obs::renderJournalJson(const Journal &J) {
  std::string Out;
  Out += "{\"tool\":\"enerj-journal\",\"version\":1,\"app\":\"";
  appendEscaped(Out, J.App);
  Out += "\",\"engine\":\"";
  Out += harness::execModeName(J.Exec);
  Out += "\",\"level\":\"";
  Out += approxLevelName(J.Config.Level);
  Out += "\",\"mode\":\"";
  Out += errorModeName(J.Config.Mode);
  Out += "\",\"workloadSeed\":";
  appendU64(Out, J.WorkloadSeed);
  Out += ",\"configSeed\":";
  appendU64(Out, J.Config.Seed);
  // The derivation echo: replay recomputes this from (configSeed,
  // workloadSeed); it is recorded so a human can grep the fault stream.
  Out += ",\"mixedSeed\":";
  appendU64(Out, mixSeed(J.Config.Seed, J.WorkloadSeed));
  Out += ",\"config\":{\"dram\":";
  appendBool(Out, J.Config.EnableDram);
  Out += ",\"sram\":";
  appendBool(Out, J.Config.EnableSram);
  Out += ",\"fpWidth\":";
  appendBool(Out, J.Config.EnableFpWidth);
  Out += ",\"timing\":";
  appendBool(Out, J.Config.EnableTiming);
  Out += ",\"cyclesPerSecond\":";
  appendDouble(Out, J.Config.CyclesPerSecond);
  Out += ",\"cacheLineBytes\":";
  appendU64(Out, J.Config.CacheLineBytes);
  Out += ",\"opBudget\":";
  appendU64(Out, J.Config.OpBudgetOps);
  Out += ",\"overrides\":{\"dramFlipPerSecond\":";
  appendDouble(Out, J.Config.DramFlipPerSecondOverride);
  Out += ",\"sramReadUpset\":";
  appendDouble(Out, J.Config.SramReadUpsetOverride);
  Out += ",\"sramWriteFailure\":";
  appendDouble(Out, J.Config.SramWriteFailureOverride);
  Out += ",\"timingError\":";
  appendDouble(Out, J.Config.TimingErrorOverride);
  Out += ",\"floatMantissa\":";
  appendI64(Out, J.Config.FloatMantissaOverride);
  Out += ",\"doubleMantissa\":";
  appendI64(Out, J.Config.DoubleMantissaOverride);
  Out += "}},\"obs\":{\"metrics\":";
  appendBool(Out, J.Obs.Metrics);
  Out += ",\"trace\":";
  appendBool(Out, J.Obs.Trace);
  Out += ",\"traceCapacity\":";
  appendU64(Out, J.Obs.TraceCapacity);
  Out += "},\"policy\":{\"enabled\":";
  appendBool(Out, J.Policy.Enabled);
  Out += ",\"slo\":";
  appendDouble(Out, J.Policy.Slo);
  Out += ",\"outputBound\":";
  appendDouble(Out, J.Policy.OutputAbsBound);
  Out += ",\"maxRetries\":";
  appendI64(Out, J.Policy.MaxRetries);
  Out += ",\"opBudget\":";
  appendU64(Out, J.Policy.OpBudget);
  Out += ",\"degrade\":";
  appendBool(Out, J.Policy.Degrade);
  Out += "},\"power\":{\"armed\":";
  appendBool(Out, J.PowerArmed);
  Out += ",\"trace\":\"";
  appendEscaped(Out, J.PowerTrace);
  Out += "\",\"checkpoint\":\"";
  appendEscaped(Out, J.Checkpoint);
  Out += "\"},\"regions\":[";
  for (size_t R = 0; R < J.Regions.size(); ++R) {
    if (R)
      Out += ",";
    Out += "\"";
    appendEscaped(Out, J.Regions[R]);
    Out += "\"";
  }
  Out += "],\"timeline\":[";
  for (size_t I = 0; I < J.Timeline.size(); ++I) {
    const TrialTraceEvent &E = J.Timeline[I];
    if (I)
      Out += ",";
    Out += "{\"attempt\":";
    appendI64(Out, E.Attempt);
    Out += ",\"at\":";
    appendU64(Out, E.Event.At);
    Out += ",\"kind\":\"";
    Out += traceEventKindName(E.Event.Kind);
    Out += "\",\"op\":\"";
    Out += opKindName(E.Event.Op);
    Out += "\",\"arg\":";
    appendU64(Out, E.Event.Arg);
    Out += ",\"region\":";
    appendU64(Out, E.Event.Region);
    Out += "}";
  }
  Out += "],\"timelineDropped\":";
  appendU64(Out, J.TimelineDropped);
  Out += ",\"digest\":";
  Out += renderDigestJson(J.Digest);
  Out += "}";
  return Out;
}

std::string enerj::obs::journalFileName(const Journal &J) {
  std::string Name = J.App;
  Name += "-";
  Name += approxLevelName(J.Config.Level);
  Name += "-";
  Name += harness::execModeName(J.Exec);
  Name += "-seed";
  appendU64(Name, J.WorkloadSeed);
  Name += ".journal.json";
  return Name;
}

bool enerj::obs::parseJournalJson(const std::string &Text, Journal *Out,
                                  std::string *Error) {
  Value Doc;
  if (!parse(Text, &Doc, Error))
    return false;
  try {
    if (!Doc.isObject())
      throw ParseFail{"journal is not a JSON object"};
    if (stringOf(Doc, "tool") != "enerj-journal")
      throw ParseFail{"not an enerj-journal document"};
    if (i64Of(Doc, "version") != 1)
      throw ParseFail{"unsupported journal schema version"};

    Journal J;
    J.App = stringOf(Doc, "app");
    if (!execModeFromName(stringOf(Doc, "engine"), &J.Exec))
      throw ParseFail{"unknown engine"};
    if (!levelFromName(stringOf(Doc, "level"), &J.Config.Level))
      throw ParseFail{"unknown level"};
    if (!modeFromName(stringOf(Doc, "mode"), &J.Config.Mode))
      throw ParseFail{"unknown error mode"};
    J.WorkloadSeed = u64Of(Doc, "workloadSeed");
    J.Config.Seed = u64Of(Doc, "configSeed");

    const Value &Config = member(Doc, "config", Value::Kind::Object);
    J.Config.EnableDram = boolOf(Config, "dram");
    J.Config.EnableSram = boolOf(Config, "sram");
    J.Config.EnableFpWidth = boolOf(Config, "fpWidth");
    J.Config.EnableTiming = boolOf(Config, "timing");
    J.Config.CyclesPerSecond = numberOf(Config, "cyclesPerSecond");
    J.Config.CacheLineBytes = u64Of(Config, "cacheLineBytes");
    J.Config.OpBudgetOps = u64Of(Config, "opBudget");
    const Value &Overrides = member(Config, "overrides", Value::Kind::Object);
    J.Config.DramFlipPerSecondOverride =
        numberOf(Overrides, "dramFlipPerSecond");
    J.Config.SramReadUpsetOverride = numberOf(Overrides, "sramReadUpset");
    J.Config.SramWriteFailureOverride =
        numberOf(Overrides, "sramWriteFailure");
    J.Config.TimingErrorOverride = numberOf(Overrides, "timingError");
    J.Config.FloatMantissaOverride =
        static_cast<int>(i64Of(Overrides, "floatMantissa"));
    J.Config.DoubleMantissaOverride =
        static_cast<int>(i64Of(Overrides, "doubleMantissa"));

    const Value &Obs = member(Doc, "obs", Value::Kind::Object);
    J.Obs.Metrics = boolOf(Obs, "metrics");
    J.Obs.Trace = boolOf(Obs, "trace");
    J.Obs.TraceCapacity = static_cast<size_t>(u64Of(Obs, "traceCapacity"));

    const Value &Policy = member(Doc, "policy", Value::Kind::Object);
    J.Policy.Enabled = boolOf(Policy, "enabled");
    J.Policy.Slo = numberOf(Policy, "slo");
    J.Policy.OutputAbsBound = numberOf(Policy, "outputBound");
    J.Policy.MaxRetries = static_cast<int>(i64Of(Policy, "maxRetries"));
    J.Policy.OpBudget = u64Of(Policy, "opBudget");
    J.Policy.Degrade = boolOf(Policy, "degrade");

    const Value &Power = member(Doc, "power", Value::Kind::Object);
    J.PowerArmed = boolOf(Power, "armed");
    J.PowerTrace = stringOf(Power, "trace");
    J.Checkpoint = stringOf(Power, "checkpoint");

    const Value &Regions = member(Doc, "regions", Value::Kind::Array);
    for (const Value &R : Regions.Items) {
      if (!R.isString())
        throw ParseFail{"region table entry is not a string"};
      J.Regions.push_back(R.Text);
    }

    const Value &Timeline = member(Doc, "timeline", Value::Kind::Array);
    for (const Value &E : Timeline.Items) {
      if (!E.isObject())
        throw ParseFail{"timeline entry is not an object"};
      TrialTraceEvent Event;
      Event.Attempt = static_cast<int>(i64Of(E, "attempt"));
      Event.Event.At = u64Of(E, "at");
      if (!eventKindFromName(stringOf(E, "kind"), &Event.Event.Kind))
        throw ParseFail{"unknown timeline event kind"};
      if (!opKindFromName(stringOf(E, "op"), &Event.Event.Op))
        throw ParseFail{"unknown timeline op kind"};
      Event.Event.Arg = u64Of(E, "arg");
      Event.Event.Region = static_cast<uint32_t>(u64Of(E, "region"));
      J.Timeline.push_back(Event);
    }
    J.TimelineDropped = u64Of(Doc, "timelineDropped");

    const Value &Digest = member(Doc, "digest", Value::Kind::Object);
    J.Digest.Qos = numberOf(Digest, "qos");
    J.Digest.Energy = numberOf(Digest, "energy");
    J.Digest.EffectiveEnergy = numberOf(Digest, "effectiveEnergy");
    if (!outcomeFromName(stringOf(Digest, "outcome"), &J.Digest.Outcome))
      throw ParseFail{"unknown outcome"};
    if (!levelFromName(stringOf(Digest, "finalLevel"), &J.Digest.FinalLevel))
      throw ParseFail{"unknown final level"};
    J.Digest.Attempts = static_cast<int>(i64Of(Digest, "attempts"));
    J.Digest.ClockCycles = u64Of(Digest, "clockCycles");
    const Value &Ops = member(Digest, "ops", Value::Kind::Object);
    J.Digest.PreciseInt = u64Of(Ops, "preciseInt");
    J.Digest.ApproxInt = u64Of(Ops, "approxInt");
    J.Digest.PreciseFp = u64Of(Ops, "preciseFp");
    J.Digest.ApproxFp = u64Of(Ops, "approxFp");
    J.Digest.TimingErrors = u64Of(Ops, "timingErrors");
    const Value &Storage = member(Digest, "storage", Value::Kind::Object);
    J.Digest.SramPrecise = numberOf(Storage, "sramPrecise");
    J.Digest.SramApprox = numberOf(Storage, "sramApprox");
    J.Digest.DramPrecise = numberOf(Storage, "dramPrecise");
    J.Digest.DramApprox = numberOf(Storage, "dramApprox");
    const Value &DigestPower = member(Digest, "power", Value::Kind::Object);
    J.Digest.PowerLosses = u64Of(DigestPower, "losses");
    J.Digest.PowerCheckpoints = u64Of(DigestPower, "checkpoints");
    J.Digest.PowerReExecutedOps = u64Of(DigestPower, "reExecutedOps");
    J.Digest.PowerSurvived = boolOf(DigestPower, "survived");

    *Out = std::move(J);
    return true;
  } catch (const ParseFail &F) {
    if (Error)
      *Error = F.Message;
    return false;
  }
}

std::vector<std::string>
enerj::obs::writeJournals(const harness::EvalResult &Grid,
                          const std::string &Dir, std::string *Error) {
  std::vector<std::string> Paths;
  for (const harness::TrialRecord &Record : Grid.Journaled) {
    Journal J = buildJournal(Grid, Record);
    std::string Path = Dir + "/" + journalFileName(J);
    std::ofstream File(Path, std::ios::trunc);
    if (!File) {
      if (Error)
        *Error = "cannot open '" + Path + "' for writing";
      return Paths;
    }
    File << renderJournalJson(J) << "\n";
    if (!File) {
      if (Error)
        *Error = "write to '" + Path + "' failed";
      return Paths;
    }
    Paths.push_back(std::move(Path));
  }
  return Paths;
}

ReplayResult enerj::obs::replayJournal(const Journal &J,
                                       const std::string &KernelDir) {
  ReplayContext Ctx;
  buildTrial(J, KernelDir, Ctx);
  ReplayResult R;
  R.Result = runContained(Ctx.T, J.Policy);
  R.RecordedJson = renderDigestJson(J.Digest);
  R.ReplayedJson = renderDigestJson(digestOf(R.Result));
  R.Match = R.RecordedJson == R.ReplayedJson;
  return R;
}

std::vector<BlameRow> enerj::obs::blameJournal(const Journal &J) {
  if (J.Exec != harness::ExecMode::Interp)
    throw std::runtime_error(
        "blame needs per-fault sites, which only interpreter journals "
        "record (the compiled engine injects faults in batch)");

  // Distinct fault regions in first-appearance (execution) order, with
  // their journaled fault mass.
  std::vector<BlameRow> Rows;
  for (const TrialTraceEvent &E : J.Timeline) {
    if (E.Event.Kind != TraceEventKind::Fault)
      continue;
    if (E.Event.Region >= J.Regions.size())
      throw std::runtime_error("timeline fault names region " +
                               std::to_string(E.Event.Region) +
                               " beyond the journal's region table");
    const std::string &Name = J.Regions[E.Event.Region];
    auto Row = std::find_if(Rows.begin(), Rows.end(), [&](const BlameRow &R) {
      return R.Region == Name;
    });
    if (Row == Rows.end()) {
      Rows.push_back(BlameRow{Name, 0, 0, 0.0, 0.0});
      Row = Rows.end() - 1;
    }
    ++Row->Faults;
    Row->FlippedBits += E.Event.Arg;
  }

  // The counterfactual: the same trial with each faulting region forced
  // precise, one probe per region. The probe deliberately perturbs (that
  // is its purpose); everything else about the trial identity is kept.
  for (BlameRow &Row : Rows) {
    ReplayContext Ctx;
    buildTrial(J, "", Ctx);
    Ctx.T.Obs.ForceRegionPrecise = Row.Region;
    harness::TrialResult Forced = runContained(Ctx.T, J.Policy);
    Row.ForcedQos = Forced.QosError;
    Row.QosDelta = J.Digest.Qos - Forced.QosError;
  }

  std::sort(Rows.begin(), Rows.end(), [](const BlameRow &A,
                                         const BlameRow &B) {
    if (A.QosDelta != B.QosDelta)
      return A.QosDelta > B.QosDelta;
    return A.Region < B.Region;
  });
  return Rows;
}

std::string enerj::obs::renderBlameText(const Journal &J,
                                        const std::vector<BlameRow> &Rows) {
  std::string Out;
  char Line[256];
  std::snprintf(Line, sizeof(Line),
                "blame: %s %s seed %llu (recorded qos %.6g, outcome %s)\n",
                J.App.c_str(), approxLevelName(J.Config.Level),
                static_cast<unsigned long long>(J.WorkloadSeed),
                J.Digest.Qos,
                resilience::trialOutcomeName(J.Digest.Outcome));
  Out += Line;
  std::snprintf(Line, sizeof(Line), "%-24s %10s %12s %12s %12s\n", "region",
                "faults", "flippedBits", "forcedQos", "qosDelta");
  Out += Line;
  for (const BlameRow &Row : Rows) {
    std::snprintf(Line, sizeof(Line),
                  "%-24s %10llu %12llu %12.6g %+12.6g\n", Row.Region.c_str(),
                  static_cast<unsigned long long>(Row.Faults),
                  static_cast<unsigned long long>(Row.FlippedBits),
                  Row.ForcedQos, Row.QosDelta);
    Out += Line;
  }
  if (Rows.empty())
    Out += "(no journaled fault events)\n";
  return Out;
}
