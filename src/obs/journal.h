//===- obs/journal.h - Trial flight recorder with replay --------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flight recorder behind `fenerj_tool eval --journal-dir` and
/// `fenerj_tool replay`: a Journal is a self-contained, versioned JSON
/// record of one trial — full provenance (app, level, engine, the
/// mixed-seed derivation, fault/policy/power/checkpoint configuration,
/// telemetry request), the structured event timeline (faults with
/// site/tick/mask, attempts, retries, degradations, checkpoints, power
/// losses), and an outcome digest (QoS, energy, effective energy,
/// outcome, final level, op/storage mix, power counters).
///
/// Because every trial is a pure function of its recorded identity, a
/// journal is *executable provenance*: replayJournal() rebuilds the
/// trial from the record alone and re-runs it, and the replayed digest
/// must agree with the recorded one bitwise (%.17g doubles round-trip
/// exactly). Any bad trial a grid captures is thereby a reproducible
/// postmortem. blameJournal() goes one step further and ranks the
/// journaled fault sites by QoS damage via forced-precise counterfactual
/// re-execution per site — the profiler's ForceRegionPrecise probe,
/// driven from a journal instead of a live profile.
///
/// Capture selection happens in the harness (EvalResult::Journaled) in
/// grid order, so the journal set — like everything else the harness
/// emits — is byte-identical at any thread count.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_OBS_JOURNAL_H
#define ENERJ_OBS_JOURNAL_H

#include "harness/eval.h"

#include <string>
#include <vector>

namespace enerj {
namespace obs {

/// The outcome digest of one trial: exactly the fields replay must
/// reproduce bitwise. Kept flat and explicit — this is the journal's
/// compatibility contract, versioned with the journal schema.
struct JournalDigest {
  double Qos = 0.0;
  double Energy = 1.0;          ///< EnergyReport::TotalFactor.
  double EffectiveEnergy = 1.0; ///< With re-execution/power charged.
  resilience::TrialOutcome Outcome = resilience::TrialOutcome::Ok;
  ApproxLevel FinalLevel = ApproxLevel::None;
  int Attempts = 1;
  uint64_t ClockCycles = 0;

  uint64_t PreciseInt = 0;
  uint64_t ApproxInt = 0;
  uint64_t PreciseFp = 0;
  uint64_t ApproxFp = 0;
  uint64_t TimingErrors = 0;

  double SramPrecise = 0.0;
  double SramApprox = 0.0;
  double DramPrecise = 0.0;
  double DramApprox = 0.0;

  uint64_t PowerLosses = 0;
  uint64_t PowerCheckpoints = 0;
  uint64_t PowerReExecutedOps = 0;
  bool PowerSurvived = true;
};

/// The digest of a measured trial result.
JournalDigest digestOf(const harness::TrialResult &Result);

/// One trial's complete flight-recorder record (schema version 1).
struct Journal {
  std::string App;
  harness::ExecMode Exec = harness::ExecMode::Interp;
  FaultConfig Config; ///< The trial's full fault configuration (level,
                      ///< mode, seed, toggles, overrides — its identity).
  uint64_t WorkloadSeed = 1;
  TelemetryRequest Obs; ///< The telemetry the trial ran with; replay must
                        ///< reconstruct it exactly (ClockCycles is only
                        ///< filled on the instrumented path).
  resilience::ResiliencePolicy Policy;

  bool PowerArmed = false;
  std::string PowerTrace = "steady"; ///< PowerTraceSpec::Name: the full
                                     ///< preset spec text, or a file path.
  std::string Checkpoint = "none";   ///< CheckpointPolicy::Spec.

  /// Region id -> name, from the recorded trial's registry; resolves the
  /// timeline's Region fields without the original process.
  std::vector<std::string> Regions;
  std::vector<TrialTraceEvent> Timeline;
  uint64_t TimelineDropped = 0;

  JournalDigest Digest;
};

/// Builds the journal of one captured record of \p Grid (provenance that
/// is grid-wide — engine, policy, power environment — comes from the
/// grid; everything per-trial from the record).
Journal buildJournal(const harness::EvalResult &Grid,
                     const harness::TrialRecord &Record);

/// Renders \p J as one line of stable JSON (enerj-journal schema
/// version 1): %.17g doubles, pinned key order — two journals of the
/// same trial compare bitwise.
std::string renderJournalJson(const Journal &J);

/// Canonical digest-only rendering; replay compares these bitwise.
std::string renderDigestJson(const JournalDigest &D);

/// "<app>-<level>-<engine>-seed<N>.journal.json".
std::string journalFileName(const Journal &J);

/// Parses a journal document. Returns false and fills \p Error (when
/// non-null) on malformed JSON, an unknown schema version, or missing /
/// ill-typed required fields.
bool parseJournalJson(const std::string &Text, Journal *Out,
                      std::string *Error);

/// Writes every captured record of \p Grid into directory \p Dir (which
/// must exist), one file per journal. Returns the written paths in grid
/// order; on an I/O failure fills \p Error and returns what was written.
std::vector<std::string> writeJournals(const harness::EvalResult &Grid,
                                       const std::string &Dir,
                                       std::string *Error);

/// What one replay established.
struct ReplayResult {
  bool Match = false;       ///< Replayed digest == recorded digest, bitwise.
  std::string RecordedJson; ///< renderDigestJson of the journal's digest.
  std::string ReplayedJson; ///< renderDigestJson of the re-executed trial.
  harness::TrialResult Result; ///< The re-executed trial in full.
};

/// Re-executes the journaled trial and compares digests. \p KernelDir
/// locates the ISA corpus for compiled journals (ignored for interp).
/// Throws std::runtime_error when the provenance cannot be reconstructed
/// (unknown app, malformed power spec, missing kernel).
ReplayResult replayJournal(const Journal &J, const std::string &KernelDir);

/// One fault site's counterfactual blame.
struct BlameRow {
  std::string Region;
  uint64_t Faults = 0;      ///< Journaled fault events at the site.
  uint64_t FlippedBits = 0; ///< Total corrupted bits across them.
  double ForcedQos = 0.0;   ///< QoS error with the region forced precise.
  /// Recorded QoS error minus ForcedQos: the QoS damage attributable to
  /// this site's approximation. Positive = the site hurts.
  double QosDelta = 0.0;
};

/// Ranks the journal's fault sites by QoS damage: for every distinct
/// region among the journaled Fault events (first-appearance order), the
/// trial is re-executed with that region forced precise and the QoS
/// delta recorded. Rows sort by QosDelta descending, region name
/// ascending as the tiebreak. Interpreter journals only (the forced-
/// precise probe is Simulator machinery); throws std::runtime_error for
/// compiled journals or unreconstructable provenance.
std::vector<BlameRow> blameJournal(const Journal &J);

/// Fixed-width table of \p Rows for the CLI.
std::string renderBlameText(const Journal &J,
                            const std::vector<BlameRow> &Rows);

} // namespace obs
} // namespace enerj

#endif // ENERJ_OBS_JOURNAL_H
