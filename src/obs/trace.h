//===- obs/trace.h - Deterministic structured-event ring buffer -*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace half of the observability layer: a fixed-capacity ring buffer
/// of structured events stamped with the simulator's *logical* clock (the
/// op index from MemoryLedger::now()) — never wall time. Because every
/// trial is a pure function of its mixed seed, a trace of the same trial
/// is bitwise identical at any thread count, exactly like the rest of the
/// harness output. The exporter (trace.cpp) renders events as Chrome /
/// Perfetto `trace_event` JSON: region enter/exit become B/E duration
/// events, faults and harness interventions become instants, and each
/// attempt of a resilient trial gets its own track.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_OBS_TRACE_H
#define ENERJ_OBS_TRACE_H

#include "obs/metrics.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace enerj {
namespace obs {

/// What happened. RegionEnter/Exit come from RegionScope; Fault from the
/// simulator's corruption paths; the rest are harness interventions.
enum class TraceEventKind : uint8_t {
  RegionEnter,  ///< Entered region Region.
  RegionExit,   ///< Left region Region.
  Fault,        ///< Op of kind Op at Region corrupted Arg bits.
  AttemptBegin, ///< Harness started an attempt (Arg = fault level).
  AttemptEnd,   ///< Attempt finished (Arg = 1 accepted, 0 rejected).
  Retry,        ///< Policy scheduled a retry (Arg = retry number).
  Degrade,      ///< Policy stepped the ladder (Arg = new level).
  Abort,        ///< Watchdog/abort ended the attempt (Arg = clock).
  PowerLoss,    ///< Supply buffer exhausted (Arg = committed ops).
  Checkpoint,   ///< Power checkpoint committed (Arg = committed ops).
  Restore,      ///< Rebooted and replayed after a loss (Arg = ops).
};

const char *traceEventKindName(TraceEventKind Kind);

/// One structured event. 32 bytes, plain data, no heap.
struct TraceEvent {
  uint64_t At = 0; ///< Logical timestamp: op index (ledger cycles).
  uint64_t Arg = 0;
  TraceEventKind Kind = TraceEventKind::RegionEnter;
  OpKind Op = OpKind::PreciseInt; ///< Only meaningful for Fault.
  uint32_t Region = 0;            ///< Region id in the owning registry.
};

/// A trace event tagged with the harness attempt that produced it; the
/// harness concatenates per-attempt simulator traces into one timeline.
struct TrialTraceEvent {
  int Attempt = 0;
  TraceEvent Event;
};

/// Ring buffer keeping the most recent `capacity()` events. Dropping the
/// oldest (rather than refusing new ones) keeps the interesting tail — a
/// fault burst right before an abort — at the cost of the warm-up, and
/// the Dropped counter says exactly how much was shed.
class TraceBuffer {
public:
  explicit TraceBuffer(size_t Capacity = 4096) : Cap(Capacity) {
    Ring.reserve(Cap);
  }

  void push(const TraceEvent &E) {
    if (Cap == 0) { // Degenerate ring: shed everything, count it.
      ++NumDropped;
      return;
    }
    if (Ring.size() < Cap) {
      Ring.push_back(E);
      return;
    }
    Ring[Head] = E;
    Head = (Head + 1) % Cap;
    ++NumDropped;
  }

  size_t size() const { return Ring.size(); }
  size_t capacity() const { return Cap; }
  uint64_t dropped() const { return NumDropped; }

  /// The I-th surviving event in chronological order. \p I must be
  /// < size(): indexing an empty ring is a contract violation (the old
  /// `% Ring.size()` spelling divided by zero on it).
  const TraceEvent &event(size_t I) const {
    assert(I < Ring.size() && "event index into an empty or short ring");
    size_t Pos = Head + I;
    if (Pos >= Ring.size())
      Pos -= Ring.size();
    return Ring[Pos];
  }

  /// All surviving events, oldest first.
  std::vector<TraceEvent> drain() const;

private:
  size_t Cap;
  size_t Head = 0;
  uint64_t NumDropped = 0;
  std::vector<TraceEvent> Ring;
};

/// Renders a trial's concatenated trace as Chrome/Perfetto trace_event
/// JSON ({"traceEvents":[...]}): metadata names the process after
/// \p AppName and each attempt's track after its attempt number; region
/// spans are B/E pairs, everything else an instant ("i") with args.
/// \p Registry supplies region names. `ts` is the logical op index.
std::string renderChromeTrace(const std::vector<TrialTraceEvent> &Events,
                              const MetricsRegistry &Registry,
                              const std::string &AppName);

} // namespace obs
} // namespace enerj

#endif // ENERJ_OBS_TRACE_H
