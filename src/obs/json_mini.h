//===- obs/json_mini.h - Internal JSON writer/reader helpers ---*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flight recorder's private JSON toolkit, shared by journal.cpp and
/// ledger.cpp. The writer half mirrors the harness report conventions —
/// %.17g doubles (round-trip exactly through strtod), PRIu64 integers,
/// backslash/quote escaping — so journals compare bitwise the same way
/// the eval JSON does. The reader half is a small recursive-descent
/// parser that keeps every number's *raw text*: a 64-bit seed parsed
/// through a double would silently lose low bits, so asU64()/asDouble()
/// convert from the original characters on demand.
///
/// Internal header: not installed, no stability promises.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_OBS_JSON_MINI_H
#define ENERJ_OBS_JSON_MINI_H

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace enerj {
namespace obs {
namespace json {

// --- Writer -------------------------------------------------------------

inline void appendEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    Out.push_back(C);
  }
}

inline void appendDouble(std::string &Out, double Value) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.17g", Value);
  Out += Buffer;
}

inline void appendU64(std::string &Out, uint64_t Value) {
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "%" PRIu64, Value);
  Out += Buffer;
}

inline void appendI64(std::string &Out, int64_t Value) {
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "%" PRId64, Value);
  Out += Buffer;
}

inline void appendBool(std::string &Out, bool Value) {
  Out += Value ? "true" : "false";
}

/// "0x" + 16 lowercase hex digits — the ledger's hash spelling.
inline void appendHex64(std::string &Out, uint64_t Value) {
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "0x%016" PRIx64, Value);
  Out += Buffer;
}

// --- FNV-1a 64 ----------------------------------------------------------

/// The 64-bit FNV-1a of \p Bytes: the ledger's config-hash / grid-digest
/// function. Stable, dependency-free, and good enough for change
/// detection (these are fingerprints, not security hashes).
inline uint64_t fnv1a(const std::string &Bytes) {
  uint64_t Hash = 0xcbf29ce484222325ull;
  for (unsigned char C : Bytes) {
    Hash ^= C;
    Hash *= 0x100000001b3ull;
  }
  return Hash;
}

// --- Reader -------------------------------------------------------------

/// One parsed JSON value. Numbers keep their raw source text so integer
/// conversions are exact for the full uint64 range.
struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind K = Kind::Null;
  bool B = false;
  std::string Text; ///< String contents, or a number's raw text.
  std::vector<Value> Items;
  std::vector<std::pair<std::string, Value>> Members;

  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isString() const { return K == Kind::String; }
  bool isNumber() const { return K == Kind::Number; }
  bool isBool() const { return K == Kind::Bool; }

  /// Member lookup; null when absent or not an object.
  const Value *find(const std::string &Key) const {
    if (K != Kind::Object)
      return nullptr;
    for (const auto &Member : Members)
      if (Member.first == Key)
        return &Member.second;
    return nullptr;
  }

  double asDouble() const { return std::strtod(Text.c_str(), nullptr); }
  uint64_t asU64() const {
    return std::strtoull(Text.c_str(), nullptr, 10);
  }
  int64_t asI64() const { return std::strtoll(Text.c_str(), nullptr, 10); }
};

namespace detail {

struct Parser {
  const std::string &Text;
  size_t Pos = 0;
  std::string Error;

  explicit Parser(const std::string &Text) : Text(Text) {}

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool fail(const std::string &Message) {
    if (Error.empty())
      Error = Message + " at offset " + std::to_string(Pos);
    return false;
  }

  bool parseString(std::string &Out) {
    if (Pos >= Text.size() || Text[Pos] != '"')
      return fail("expected string");
    ++Pos;
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos++];
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (Pos >= Text.size())
        return fail("dangling escape");
      char E = Text[Pos++];
      switch (E) {
      case '"': Out.push_back('"'); break;
      case '\\': Out.push_back('\\'); break;
      case '/': Out.push_back('/'); break;
      case 'b': Out.push_back('\b'); break;
      case 'f': Out.push_back('\f'); break;
      case 'n': Out.push_back('\n'); break;
      case 'r': Out.push_back('\r'); break;
      case 't': Out.push_back('\t'); break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad \\u escape");
        }
        // UTF-8 encode the BMP code point (surrogate pairs unsupported;
        // nothing we emit uses them).
        if (Code < 0x80) {
          Out.push_back(static_cast<char>(Code));
        } else if (Code < 0x800) {
          Out.push_back(static_cast<char>(0xC0 | (Code >> 6)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        } else {
          Out.push_back(static_cast<char>(0xE0 | (Code >> 12)));
          Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    if (Pos >= Text.size())
      return fail("unterminated string");
    ++Pos; // closing quote
    return true;
  }

  bool parseValue(Value &Out) {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '"') {
      Out.K = Value::Kind::String;
      return parseString(Out.Text);
    }
    if (C == '{') {
      ++Pos;
      Out.K = Value::Kind::Object;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      for (;;) {
        skipWs();
        std::string Key;
        if (!parseString(Key))
          return false;
        skipWs();
        if (Pos >= Text.size() || Text[Pos] != ':')
          return fail("expected ':'");
        ++Pos;
        Value Member;
        if (!parseValue(Member))
          return false;
        Out.Members.emplace_back(std::move(Key), std::move(Member));
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Pos < Text.size() && Text[Pos] == '}') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (C == '[') {
      ++Pos;
      Out.K = Value::Kind::Array;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      for (;;) {
        Value Item;
        if (!parseValue(Item))
          return false;
        Out.Items.push_back(std::move(Item));
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Pos < Text.size() && Text[Pos] == ']') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (C == 't' && Text.compare(Pos, 4, "true") == 0) {
      Pos += 4;
      Out.K = Value::Kind::Bool;
      Out.B = true;
      return true;
    }
    if (C == 'f' && Text.compare(Pos, 5, "false") == 0) {
      Pos += 5;
      Out.K = Value::Kind::Bool;
      Out.B = false;
      return true;
    }
    if (C == 'n' && Text.compare(Pos, 4, "null") == 0) {
      Pos += 4;
      Out.K = Value::Kind::Null;
      return true;
    }
    if (C == '-' || (C >= '0' && C <= '9')) {
      size_t Start = Pos;
      if (Text[Pos] == '-')
        ++Pos;
      while (Pos < Text.size() &&
             ((Text[Pos] >= '0' && Text[Pos] <= '9') || Text[Pos] == '.' ||
              Text[Pos] == 'e' || Text[Pos] == 'E' || Text[Pos] == '+' ||
              Text[Pos] == '-'))
        ++Pos;
      Out.K = Value::Kind::Number;
      Out.Text = Text.substr(Start, Pos - Start);
      return true;
    }
    return fail("unexpected character");
  }
};

} // namespace detail

/// Parses \p Text into \p Out; on failure returns false and (when
/// non-null) describes the problem in \p Error. Trailing non-whitespace
/// after the document is an error.
inline bool parse(const std::string &Text, Value *Out, std::string *Error) {
  detail::Parser P(Text);
  Value V;
  if (!P.parseValue(V)) {
    if (Error)
      *Error = P.Error;
    return false;
  }
  P.skipWs();
  if (P.Pos != Text.size()) {
    if (Error)
      *Error = "trailing characters after JSON document";
    return false;
  }
  *Out = std::move(V);
  return true;
}

} // namespace json
} // namespace obs
} // namespace enerj

#endif // ENERJ_OBS_JSON_MINI_H
