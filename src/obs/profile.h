//===- obs/profile.h - Per-site energy/fault attribution --------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The attribution profiler behind `fenerj_tool profile`: it runs one
/// application over a set of workload seeds with telemetry enabled,
/// merges the per-seed metrics registries, and decomposes the Section
/// 5.4 energy factor into per-site shares.
///
/// The decomposition is exact by construction. Each component factor of
/// the aggregate EnergyReport (instruction, SRAM, DRAM) is distributed
/// across the sites that produced it proportionally to their modeled
/// energy:
///
///  * ALU sites get CpuShare * (1 - SramShareOfCpu) * InstructionFactor
///    split by dynamic-op energy units (count x per-op units x per-op
///    factor).
///  * Each region's SRAM/DRAM storage rows get CpuShare * SramShareOfCpu
///    * SramFactor (resp. DramShare * DramFactor) split by
///    savings-weighted byte-cycles from the ledger's tagged snapshot.
///  * Whatever slice has no attributable sites (e.g. no tagged storage)
///    lands in a single "(unattributed)" residual row.
///
/// Consequently the shares sum to EnergyReport::TotalFactor to within
/// floating-point rounding — the profiler's acceptance invariant (1e-9)
/// and the reason the table can honestly be read as "this loop is X% of
/// the energy bill".
///
/// Optionally, the profiler measures a *QoS delta* for the top-K sites:
/// for each distinct region in the top rows it reruns all seeds with
/// obs::TelemetryRequest::ForceRegionPrecise naming the region, and
/// reports baseline mean QoS error minus forced mean QoS error. A large
/// positive delta marks the site whose approximation is actually
/// responsible for the output degradation — the "where do I add
/// endorsements / precise types" signal.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_OBS_PROFILE_H
#define ENERJ_OBS_PROFILE_H

#include "harness/eval.h"
#include "obs/metrics.h"

#include <string>
#include <vector>

namespace enerj {
namespace obs {

/// What to profile. Level/Seeds default to the Table 2 medium level over
/// a handful of seeds — enough for a stable attribution, cheap enough
/// for interactive use.
struct ProfileOptions {
  const apps::Application *App = nullptr;
  ApproxLevel Level = ApproxLevel::Medium;
  int Seeds = 5;        ///< Workload seeds 1..Seeds.
  unsigned Threads = 0; ///< TrialRunner thread count (0 = hardware).
  int TopK = 10;        ///< Rows eligible for the QoS-delta probe.
  bool QosDelta = true; ///< Measure forced-precise QoS deltas for top-K.
  bool Trace = false;   ///< Keep the seed-1 trial's structured trace.
};

/// One attribution row: either a (region, op kind) site or a region's
/// storage footprint in one memory technology.
struct ProfileRow {
  std::string Region;
  /// An opKindName for operation rows, "sramStorage"/"dramStorage" for
  /// storage rows, "-" for the residual row.
  std::string Item;
  StorageClass Class = StorageClass::Alu;
  bool IsStorage = false;

  uint64_t Ops = 0;
  uint64_t Faults = 0;
  uint64_t FlippedBits = 0;
  double PreciseByteCycles = 0.0; ///< Storage rows only.
  double ApproxByteCycles = 0.0;  ///< Storage rows only.

  /// This row's slice of EnergyReport::TotalFactor (precise run = 1.0).
  double EnergyShare = 0.0;

  bool HasQosDelta = false;
  /// Baseline mean QoS error minus the mean QoS error with this row's
  /// region forced precise. Positive = the region's approximation hurts.
  double QosDelta = 0.0;
};

/// Everything one profile run produced.
struct ProfileResult {
  const apps::Application *App = nullptr;
  FaultConfig Config;
  int Seeds = 0;
  int TopK = 0;

  harness::TrialStats Qos; ///< Baseline QoS error over the seeds.
  RunStats Stats;          ///< Summed over the seeds.
  EnergyReport Energy;     ///< The summed stats priced at Config.
  MetricsRegistry Metrics; ///< Merged over the seeds, in seed order.

  /// Attribution rows sorted by EnergyShare descending, (region, item)
  /// ascending as the tiebreak. The residual row, when present, is last.
  std::vector<ProfileRow> Rows;
  /// Sum of every row's EnergyShare — equals Energy.TotalFactor to
  /// within 1e-9 (the attribution invariant; pinned by obs tests).
  double ShareSum = 0.0;

  /// Ledger clock ticks summed over the seeds; must equal
  /// Metrics.totalTicks() for complete runs (the op-coverage audit).
  uint64_t LedgerTicks = 0;

  /// The full seed-1 trial — carries the structured trace (and its own
  /// registry resolving the trace's region ids) when Options.Trace.
  harness::TrialResult Seed1;
};

/// Runs the profile described by \p Options. Requires Options.App.
ProfileResult runProfile(const ProfileOptions &Options);

/// Renders \p Result as a fixed-width attribution table.
std::string renderProfileText(const ProfileResult &Result);

/// Renders \p Result as one line of stable JSON (enerj-profile schema
/// version 1, golden-pinned like the eval grid's JSON).
std::string renderProfileJson(const ProfileResult &Result);

} // namespace obs
} // namespace enerj

#endif // ENERJ_OBS_PROFILE_H
