//===- obs/ledger.h - Append-only cross-run manifest ------------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The run ledger behind `fenerj_tool --ledger` and `fenerj_tool runs`:
/// an append-only JSONL manifest with one line per eval / profile /
/// bound invocation — the configuration's FNV-1a hash and summary, the
/// payload schema version, the FNV-1a digest of the rendered payload
/// JSON, outcome tallies, grid-level QoS/energy means, and throughput.
///
/// The deterministic columns (configHash, gridDigest, tallies, means)
/// let `runs diff` pinpoint *what* changed between two invocations and
/// `runs check` gate a fresh run against a committed baseline's
/// thresholds; elapsedSec/trialsPerSec are honest wall-clock telemetry
/// and the one deliberately non-deterministic part of the line (the
/// regression baselines therefore bound them with headroom or not at
/// all). The ledger never rewrites history: append is the only write.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_OBS_LEDGER_H
#define ENERJ_OBS_LEDGER_H

#include "harness/eval.h"

#include <string>
#include <vector>

namespace enerj {
namespace obs {

/// One ledger line (enerj-ledger schema version 1).
struct LedgerEntry {
  std::string Command;    ///< "eval", "profile", or "bound".
  int PayloadVersion = 0; ///< Schema version of the payload JSON.
  uint64_t ConfigHash = 0; ///< fnv1a(ConfigSummary).
  std::string ConfigSummary; ///< Canonical flag-order config text.
  uint64_t GridDigest = 0; ///< fnv1a of the payload JSON bytes.
  uint64_t Apps = 0;
  uint64_t Levels = 0;
  int Seeds = 0;
  uint64_t Trials = 0;
  resilience::OutcomeCounts Outcomes;
  double QosMean = 0.0;             ///< Mean of per-cell QoS means.
  double EnergyMean = 0.0;          ///< Mean of per-cell energy means.
  double EffectiveEnergyMean = 0.0; ///< With re-execution charged.
  double ElapsedSec = 0.0;          ///< Wall clock (non-deterministic).
  double TrialsPerSec = 0.0;
};

/// The ledger entry of one completed eval grid: every deterministic
/// column derived from \p Result and \p PayloadJson (the rendered eval
/// JSON whose bytes GridDigest fingerprints); timing from \p ElapsedSec.
LedgerEntry ledgerEntryForEval(const harness::EvalResult &Result,
                               const std::string &PayloadJson,
                               double ElapsedSec);

/// Renders \p Entry as one JSONL line (no trailing newline): stable key
/// order, %.17g doubles, hashes as 0x-prefixed 16-digit hex.
std::string renderLedgerLine(const LedgerEntry &Entry);

/// Parses one ledger line. Returns false and fills \p Error (when
/// non-null) on malformed JSON or an unknown schema version.
bool parseLedgerLine(const std::string &Line, LedgerEntry *Out,
                     std::string *Error);

/// Appends \p Entry to the JSONL file at \p Path (creating it if
/// needed). The one write the ledger supports.
bool appendLedgerLine(const std::string &Path, const LedgerEntry &Entry,
                      std::string *Error);

/// Reads every line of the ledger at \p Path, oldest first. Blank lines
/// are ignored; a malformed line fails the whole read (a corrupt
/// manifest should be noticed, not skipped).
bool readLedger(const std::string &Path, std::vector<LedgerEntry> *Out,
                std::string *Error);

} // namespace obs
} // namespace enerj

#endif // ENERJ_OBS_LEDGER_H
