//===- obs/ledger.cpp - Append-only cross-run manifest --------------------===//

#include "obs/ledger.h"

#include "obs/json_mini.h"

#include <fstream>
#include <sstream>

using namespace enerj;
using namespace enerj::obs;
using namespace enerj::obs::json;

namespace {

/// The canonical configuration text an eval grid hashes to. Flag order
/// is fixed and thread count deliberately absent (it cannot change any
/// result); two grids with the same summary are comparable runs.
std::string evalConfigSummary(const harness::EvalResult &Result) {
  std::string Out = "eval exec=";
  Out += harness::execModeName(Result.Exec);
  Out += " seeds=";
  appendI64(Out, Result.Seeds);
  Out += " apps=";
  for (size_t A = 0; A < Result.Apps.size(); ++A) {
    if (A)
      Out += ",";
    Out += Result.Apps[A]->name();
  }
  Out += " levels=";
  for (size_t L = 0; L < Result.Levels.size(); ++L) {
    if (L)
      Out += ",";
    Out += approxLevelName(Result.Levels[L]);
  }
  if (Result.Policy.Enabled) {
    Out += " policy=slo:";
    appendDouble(Out, Result.Policy.Slo);
    Out += ",outputBound:";
    appendDouble(Out, Result.Policy.OutputAbsBound);
    Out += ",maxRetries:";
    appendI64(Out, Result.Policy.MaxRetries);
    Out += ",opBudget:";
    appendU64(Out, Result.Policy.OpBudget);
    Out += ",degrade:";
    appendBool(Out, Result.Policy.Degrade);
  } else {
    Out += " policy=off";
  }
  Out += Result.MetricsCollected ? " metrics=on" : " metrics=off";
  if (Result.PowerArmed) {
    Out += " power=";
    Out += Result.Power.Trace.Name;
    Out += ",checkpoint:";
    Out += Result.Power.Checkpoint.Spec;
  } else {
    Out += " power=off";
  }
  return Out;
}

/// The payload schema version the eval renderer would emit — the same
/// expression renderEvalJson versions its document with.
int evalPayloadVersion(const harness::EvalResult &Result) {
  return Result.PowerArmed        ? 5
         : Result.EchoExecMode    ? 4
         : Result.MetricsCollected ? 3
                                   : 2;
}

} // namespace

LedgerEntry enerj::obs::ledgerEntryForEval(const harness::EvalResult &Result,
                                           const std::string &PayloadJson,
                                           double ElapsedSec) {
  LedgerEntry Entry;
  Entry.Command = "eval";
  Entry.PayloadVersion = evalPayloadVersion(Result);
  Entry.ConfigSummary = evalConfigSummary(Result);
  Entry.ConfigHash = fnv1a(Entry.ConfigSummary);
  Entry.GridDigest = fnv1a(PayloadJson);
  Entry.Apps = Result.Apps.size();
  Entry.Levels = Result.Levels.size();
  Entry.Seeds = Result.Seeds;
  Entry.Trials = Entry.Apps * Entry.Levels * static_cast<uint64_t>(Result.Seeds);
  double QosSum = 0.0, EnergySum = 0.0, EffectiveSum = 0.0;
  for (const harness::EvalCell &Cell : Result.Cells) {
    Entry.Outcomes.Ok += Cell.Outcomes.Ok;
    Entry.Outcomes.SloViolated += Cell.Outcomes.SloViolated;
    Entry.Outcomes.Aborted += Cell.Outcomes.Aborted;
    Entry.Outcomes.Retried += Cell.Outcomes.Retried;
    Entry.Outcomes.Degraded += Cell.Outcomes.Degraded;
    Entry.Outcomes.PowerFailed += Cell.Outcomes.PowerFailed;
    QosSum += Cell.Qos.Mean;
    EnergySum += Cell.EnergyFactor.Mean;
    EffectiveSum += Cell.EffectiveEnergy.Mean;
  }
  if (!Result.Cells.empty()) {
    double Cells = static_cast<double>(Result.Cells.size());
    Entry.QosMean = QosSum / Cells;
    Entry.EnergyMean = EnergySum / Cells;
    Entry.EffectiveEnergyMean = EffectiveSum / Cells;
  }
  Entry.ElapsedSec = ElapsedSec;
  Entry.TrialsPerSec =
      ElapsedSec > 0.0 ? static_cast<double>(Entry.Trials) / ElapsedSec : 0.0;
  return Entry;
}

std::string enerj::obs::renderLedgerLine(const LedgerEntry &Entry) {
  std::string Out;
  Out += "{\"tool\":\"enerj-ledger\",\"version\":1,\"command\":\"";
  appendEscaped(Out, Entry.Command);
  Out += "\",\"payloadVersion\":";
  appendI64(Out, Entry.PayloadVersion);
  Out += ",\"configHash\":\"";
  appendHex64(Out, Entry.ConfigHash);
  Out += "\",\"configSummary\":\"";
  appendEscaped(Out, Entry.ConfigSummary);
  Out += "\",\"gridDigest\":\"";
  appendHex64(Out, Entry.GridDigest);
  Out += "\",\"apps\":";
  appendU64(Out, Entry.Apps);
  Out += ",\"levels\":";
  appendU64(Out, Entry.Levels);
  Out += ",\"seeds\":";
  appendI64(Out, Entry.Seeds);
  Out += ",\"trials\":";
  appendU64(Out, Entry.Trials);
  Out += ",\"outcomes\":{\"ok\":";
  appendU64(Out, Entry.Outcomes.Ok);
  Out += ",\"sloViolated\":";
  appendU64(Out, Entry.Outcomes.SloViolated);
  Out += ",\"aborted\":";
  appendU64(Out, Entry.Outcomes.Aborted);
  Out += ",\"retried\":";
  appendU64(Out, Entry.Outcomes.Retried);
  Out += ",\"degraded\":";
  appendU64(Out, Entry.Outcomes.Degraded);
  Out += ",\"powerFailed\":";
  appendU64(Out, Entry.Outcomes.PowerFailed);
  Out += "},\"qosMean\":";
  appendDouble(Out, Entry.QosMean);
  Out += ",\"energyMean\":";
  appendDouble(Out, Entry.EnergyMean);
  Out += ",\"effectiveEnergyMean\":";
  appendDouble(Out, Entry.EffectiveEnergyMean);
  Out += ",\"elapsedSec\":";
  appendDouble(Out, Entry.ElapsedSec);
  Out += ",\"trialsPerSec\":";
  appendDouble(Out, Entry.TrialsPerSec);
  Out += "}";
  return Out;
}

namespace {

struct ParseFail {
  std::string Message;
};

const Value &member(const Value &Obj, const char *Key, Value::Kind Kind) {
  const Value *V = Obj.find(Key);
  if (!V)
    throw ParseFail{std::string("missing key \"") + Key + "\""};
  if (V->K != Kind)
    throw ParseFail{std::string("key \"") + Key + "\" has the wrong type"};
  return *V;
}

uint64_t hexOf(const Value &Obj, const char *Key) {
  const std::string &Text = member(Obj, Key, Value::Kind::String).Text;
  if (Text.size() < 3 || Text[0] != '0' || Text[1] != 'x')
    throw ParseFail{std::string("key \"") + Key + "\" is not a 0x hash"};
  return std::strtoull(Text.c_str() + 2, nullptr, 16);
}

} // namespace

bool enerj::obs::parseLedgerLine(const std::string &Line, LedgerEntry *Out,
                                 std::string *Error) {
  Value Doc;
  if (!parse(Line, &Doc, Error))
    return false;
  try {
    if (!Doc.isObject())
      throw ParseFail{"ledger line is not a JSON object"};
    if (member(Doc, "tool", Value::Kind::String).Text != "enerj-ledger")
      throw ParseFail{"not an enerj-ledger line"};
    if (member(Doc, "version", Value::Kind::Number).asI64() != 1)
      throw ParseFail{"unsupported ledger schema version"};

    LedgerEntry Entry;
    Entry.Command = member(Doc, "command", Value::Kind::String).Text;
    Entry.PayloadVersion = static_cast<int>(
        member(Doc, "payloadVersion", Value::Kind::Number).asI64());
    Entry.ConfigHash = hexOf(Doc, "configHash");
    Entry.ConfigSummary =
        member(Doc, "configSummary", Value::Kind::String).Text;
    Entry.GridDigest = hexOf(Doc, "gridDigest");
    Entry.Apps = member(Doc, "apps", Value::Kind::Number).asU64();
    Entry.Levels = member(Doc, "levels", Value::Kind::Number).asU64();
    Entry.Seeds =
        static_cast<int>(member(Doc, "seeds", Value::Kind::Number).asI64());
    Entry.Trials = member(Doc, "trials", Value::Kind::Number).asU64();
    const Value &Outcomes = member(Doc, "outcomes", Value::Kind::Object);
    Entry.Outcomes.Ok = member(Outcomes, "ok", Value::Kind::Number).asU64();
    Entry.Outcomes.SloViolated =
        member(Outcomes, "sloViolated", Value::Kind::Number).asU64();
    Entry.Outcomes.Aborted =
        member(Outcomes, "aborted", Value::Kind::Number).asU64();
    Entry.Outcomes.Retried =
        member(Outcomes, "retried", Value::Kind::Number).asU64();
    Entry.Outcomes.Degraded =
        member(Outcomes, "degraded", Value::Kind::Number).asU64();
    Entry.Outcomes.PowerFailed =
        member(Outcomes, "powerFailed", Value::Kind::Number).asU64();
    Entry.QosMean = member(Doc, "qosMean", Value::Kind::Number).asDouble();
    Entry.EnergyMean =
        member(Doc, "energyMean", Value::Kind::Number).asDouble();
    Entry.EffectiveEnergyMean =
        member(Doc, "effectiveEnergyMean", Value::Kind::Number).asDouble();
    Entry.ElapsedSec =
        member(Doc, "elapsedSec", Value::Kind::Number).asDouble();
    Entry.TrialsPerSec =
        member(Doc, "trialsPerSec", Value::Kind::Number).asDouble();
    *Out = std::move(Entry);
    return true;
  } catch (const ParseFail &F) {
    if (Error)
      *Error = F.Message;
    return false;
  }
}

bool enerj::obs::appendLedgerLine(const std::string &Path,
                                  const LedgerEntry &Entry,
                                  std::string *Error) {
  std::ofstream File(Path, std::ios::app);
  if (!File) {
    if (Error)
      *Error = "cannot open ledger '" + Path + "' for append";
    return false;
  }
  File << renderLedgerLine(Entry) << "\n";
  if (!File) {
    if (Error)
      *Error = "append to ledger '" + Path + "' failed";
    return false;
  }
  return true;
}

bool enerj::obs::readLedger(const std::string &Path,
                            std::vector<LedgerEntry> *Out,
                            std::string *Error) {
  std::ifstream File(Path);
  if (!File) {
    if (Error)
      *Error = "cannot open ledger '" + Path + "'";
    return false;
  }
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(File, Line)) {
    ++LineNo;
    if (Line.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    LedgerEntry Entry;
    std::string LineError;
    if (!parseLedgerLine(Line, &Entry, &LineError)) {
      if (Error) {
        std::ostringstream Message;
        Message << Path << ":" << LineNo << ": " << LineError;
        *Error = Message.str();
      }
      return false;
    }
    Out->push_back(std::move(Entry));
  }
  return true;
}
