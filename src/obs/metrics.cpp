//===- obs/metrics.cpp - Site-level approximation metrics -----------------===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "obs/metrics.h"

#include <bit>
#include <cassert>

namespace enerj {
namespace obs {

const char *opKindName(OpKind Kind) {
  switch (Kind) {
  case OpKind::PreciseInt:
    return "preciseInt";
  case OpKind::ApproxInt:
    return "approxInt";
  case OpKind::PreciseFp:
    return "preciseFp";
  case OpKind::ApproxFp:
    return "approxFp";
  case OpKind::SramRead:
    return "sramRead";
  case OpKind::SramWrite:
    return "sramWrite";
  case OpKind::DramLoad:
    return "dramLoad";
  case OpKind::DramStore:
    return "dramStore";
  }
  return "?";
}

const char *storageClassName(StorageClass Class) {
  switch (Class) {
  case StorageClass::Alu:
    return "alu";
  case StorageClass::Sram:
    return "sram";
  case StorageClass::Dram:
    return "dram";
  }
  return "?";
}

StorageClass storageClassOf(OpKind Kind) {
  switch (Kind) {
  case OpKind::PreciseInt:
  case OpKind::ApproxInt:
  case OpKind::PreciseFp:
  case OpKind::ApproxFp:
    return StorageClass::Alu;
  case OpKind::SramRead:
  case OpKind::SramWrite:
    return StorageClass::Sram;
  case OpKind::DramLoad:
  case OpKind::DramStore:
    return StorageClass::Dram;
  }
  return StorageClass::Alu;
}

bool opTicks(OpKind Kind) {
  switch (Kind) {
  case OpKind::SramRead:
  case OpKind::SramWrite:
    return false;
  default:
    return true;
  }
}

int FlipHistogram::bucketOf(unsigned Bits) {
  assert(Bits >= 1 && "bucketOf takes a positive flip count");
  // 1 -> 0, 2 -> 1, 3-4 -> 2, 5-8 -> 3, ..., 33-64 -> 6, >64 -> 7.
  int Bucket = std::bit_width(Bits - 1u);
  return Bucket < NumBuckets ? Bucket : NumBuckets - 1;
}

const char *FlipHistogram::bucketLabel(int Bucket) {
  static const char *const Labels[NumBuckets] = {
      "1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", ">64"};
  return Labels[Bucket];
}

uint64_t FlipHistogram::total() const {
  uint64_t Sum = 0;
  for (uint64_t B : Buckets)
    Sum += B;
  return Sum;
}

FlipHistogram &FlipHistogram::operator+=(const FlipHistogram &Other) {
  for (int I = 0; I < NumBuckets; ++I)
    Buckets[I] += Other.Buckets[I];
  return *this;
}

int Log2Histogram::bucketOf(uint64_t Value) {
  int Bucket = std::bit_width(Value);
  return Bucket < NumBuckets ? Bucket : NumBuckets - 1;
}

uint64_t Log2Histogram::total() const {
  uint64_t Sum = 0;
  for (uint64_t B : Buckets)
    Sum += B;
  return Sum;
}

Log2Histogram &Log2Histogram::operator+=(const Log2Histogram &Other) {
  for (int I = 0; I < NumBuckets; ++I)
    Buckets[I] += Other.Buckets[I];
  return *this;
}

SiteCounters &SiteCounters::operator+=(const SiteCounters &Other) {
  Count += Other.Count;
  Faults += Other.Faults;
  FlippedBits += Other.FlippedBits;
  Flips += Other.Flips;
  return *this;
}

MetricsRegistry::MetricsRegistry() {
  internRegion("main");
  Stack.push_back(0);
}

uint32_t MetricsRegistry::internRegion(std::string_view Label) {
  // Linear scan: region counts are small (a handful of kernels per app)
  // and interning happens once per RegionScope entry, not per op.
  for (uint32_t I = 0; I < RegionNames.size(); ++I)
    if (RegionNames[I] == Label)
      return I;
  RegionNames.emplace_back(Label);
  SiteIndex.emplace_back();
  SiteIndex.back().fill(InvalidSite);
  return static_cast<uint32_t>(RegionNames.size() - 1);
}

void MetricsRegistry::enterRegion(uint32_t Region) {
  assert(Region < RegionNames.size() && "enterRegion of unknown region");
  Stack.push_back(Region);
}

void MetricsRegistry::exitRegion() {
  assert(Stack.size() > 1 && "exitRegion would pop the root region");
  Stack.pop_back();
}

uint32_t MetricsRegistry::addSite(uint32_t Region, OpKind Kind) {
  Sites.push_back(Site{Region, Kind, SiteCounters{}});
  return static_cast<uint32_t>(Sites.size() - 1);
}

const SiteCounters *MetricsRegistry::find(uint32_t Region,
                                          OpKind Kind) const {
  if (Region >= SiteIndex.size())
    return nullptr;
  uint32_t Slot = SiteIndex[Region][static_cast<unsigned>(Kind)];
  return Slot == InvalidSite ? nullptr : &Sites[Slot].Counters;
}

uint64_t MetricsRegistry::totalTicks() const {
  uint64_t Sum = 0;
  for (const Site &S : Sites)
    if (opTicks(S.Kind))
      Sum += S.Counters.Count;
  return Sum;
}

uint64_t MetricsRegistry::totalOps() const {
  uint64_t Sum = 0;
  for (const Site &S : Sites)
    Sum += S.Counters.Count;
  return Sum;
}

uint64_t MetricsRegistry::totalFaults() const {
  uint64_t Sum = 0;
  for (const Site &S : Sites)
    Sum += S.Counters.Faults;
  return Sum;
}

void MetricsRegistry::merge(const MetricsRegistry &Other) {
  // Map the other registry's region ids into ours by name, creating any
  // regions we have not seen. Done up front so the site loop is cheap.
  std::vector<uint32_t> Remap(Other.RegionNames.size());
  for (uint32_t I = 0; I < Other.RegionNames.size(); ++I)
    Remap[I] = internRegion(Other.RegionNames[I]);

  for (const Site &S : Other.Sites) {
    uint32_t Region = Remap[S.Region];
    uint32_t &Slot = SiteIndex[Region][static_cast<unsigned>(S.Kind)];
    if (Slot == InvalidSite)
      Slot = addSite(Region, S.Kind);
    Sites[Slot].Counters += S.Counters;
  }

  DramGaps += Other.DramGaps;

  if (!Other.RegionStorage.empty()) {
    if (RegionStorage.size() < RegionNames.size())
      RegionStorage.resize(RegionNames.size());
    for (uint32_t I = 0; I < Other.RegionStorage.size(); ++I)
      RegionStorage[Remap[I]] += Other.RegionStorage[I];
  }
}

} // namespace obs
} // namespace enerj
