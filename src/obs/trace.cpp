//===- obs/trace.cpp - Chrome/Perfetto trace_event exporter ---------------===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
// The output is the Chrome trace_event JSON object format
// ({"traceEvents":[...]}), loadable by chrome://tracing and Perfetto's
// legacy importer. `ts` is the simulator's logical op index — microseconds
// to the viewer, but really "dynamic operations since trial start" — so
// the rendered timeline is bitwise reproducible. pid 1 is the trial;
// each resilience attempt is a tid with its own named track.
//
//===----------------------------------------------------------------------===//

#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>

namespace enerj {
namespace obs {

const char *traceEventKindName(TraceEventKind Kind) {
  switch (Kind) {
  case TraceEventKind::RegionEnter:
    return "regionEnter";
  case TraceEventKind::RegionExit:
    return "regionExit";
  case TraceEventKind::Fault:
    return "fault";
  case TraceEventKind::AttemptBegin:
    return "attemptBegin";
  case TraceEventKind::AttemptEnd:
    return "attemptEnd";
  case TraceEventKind::Retry:
    return "retry";
  case TraceEventKind::Degrade:
    return "degrade";
  case TraceEventKind::Abort:
    return "abort";
  case TraceEventKind::PowerLoss:
    return "powerLoss";
  case TraceEventKind::Checkpoint:
    return "checkpoint";
  case TraceEventKind::Restore:
    return "restore";
  }
  return "?";
}

std::vector<TraceEvent> TraceBuffer::drain() const {
  std::vector<TraceEvent> Out;
  Out.reserve(Ring.size());
  for (size_t I = 0; I < Ring.size(); ++I)
    Out.push_back(event(I));
  return Out;
}

namespace {

void appendU64(std::string &Out, uint64_t Value) {
  char Buffer[24];
  std::snprintf(Buffer, sizeof(Buffer), "%" PRIu64, Value);
  Out += Buffer;
}

void appendEscaped(std::string &Out, const std::string &Text) {
  for (char C : Text) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
}

/// {"name":"...","ph":"?","ts":N,"pid":1,"tid":T — common event prefix.
void beginEvent(std::string &Out, const char *Name, char Phase, uint64_t Ts,
                int Tid) {
  Out += "{\"name\":\"";
  Out += Name;
  Out += "\",\"ph\":\"";
  Out += Phase;
  Out += "\",\"ts\":";
  appendU64(Out, Ts);
  Out += ",\"pid\":1,\"tid\":";
  appendU64(Out, static_cast<uint64_t>(Tid));
}

void appendMetadata(std::string &Out, const char *Name, int Tid,
                    const std::string &Value) {
  Out += "{\"name\":\"";
  Out += Name;
  Out += "\",\"ph\":\"M\",\"pid\":1,\"tid\":";
  appendU64(Out, static_cast<uint64_t>(Tid));
  Out += ",\"args\":{\"name\":\"";
  appendEscaped(Out, Value);
  Out += "\"}}";
}

} // namespace

std::string renderChromeTrace(const std::vector<TrialTraceEvent> &Events,
                              const MetricsRegistry &Registry,
                              const std::string &AppName) {
  std::string Out = "{\"traceEvents\":[";
  bool First = true;
  auto sep = [&] {
    if (!First)
      Out += ',';
    First = false;
  };

  sep();
  appendMetadata(Out, "process_name", 0, AppName);
  int LastAttempt = -1;
  for (const TrialTraceEvent &TE : Events) {
    if (TE.Attempt != LastAttempt) {
      LastAttempt = TE.Attempt;
      char Track[32];
      std::snprintf(Track, sizeof(Track), "attempt %d", TE.Attempt);
      sep();
      appendMetadata(Out, "thread_name", TE.Attempt, Track);
    }
    const TraceEvent &E = TE.Event;
    switch (E.Kind) {
    case TraceEventKind::RegionEnter:
      sep();
      beginEvent(Out, Registry.regionName(E.Region).c_str(), 'B', E.At,
                 TE.Attempt);
      Out += '}';
      break;
    case TraceEventKind::RegionExit:
      sep();
      beginEvent(Out, Registry.regionName(E.Region).c_str(), 'E', E.At,
                 TE.Attempt);
      Out += '}';
      break;
    case TraceEventKind::Fault:
      sep();
      beginEvent(Out, "fault", 'i', E.At, TE.Attempt);
      Out += ",\"s\":\"t\",\"args\":{\"op\":\"";
      Out += opKindName(E.Op);
      Out += "\",\"region\":\"";
      appendEscaped(Out, Registry.regionName(E.Region));
      Out += "\",\"flippedBits\":";
      appendU64(Out, E.Arg);
      Out += "}}";
      break;
    case TraceEventKind::AttemptBegin:
    case TraceEventKind::AttemptEnd:
    case TraceEventKind::Retry:
    case TraceEventKind::Degrade:
    case TraceEventKind::Abort:
    case TraceEventKind::PowerLoss:
    case TraceEventKind::Checkpoint:
    case TraceEventKind::Restore:
      sep();
      beginEvent(Out, traceEventKindName(E.Kind), 'i', E.At, TE.Attempt);
      Out += ",\"s\":\"t\",\"args\":{\"value\":";
      appendU64(Out, E.Arg);
      Out += "}}";
      break;
    }
  }
  Out += "],\"displayTimeUnit\":\"ms\"}";
  return Out;
}

} // namespace obs
} // namespace enerj
