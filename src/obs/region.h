//===- obs/region.h - Region labels for attribution ------------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RegionScope: the annotation an application drops around a kernel or
/// phase so telemetry can attribute operations, faults, energy, and
/// storage to it. With no simulator installed, or no telemetry attached
/// to it, constructing a RegionScope does nothing (a null check and a
/// branch) — apps carry their labels unconditionally.
///
///   void run(uint64_t Seed) {
///     obs::RegionScope Phase("butterflies");
///     ... approximate work attributed to "butterflies" ...
///   }
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_OBS_REGION_H
#define ENERJ_OBS_REGION_H

#include "obs/telemetry.h"
#include "runtime/simulator.h"

#include <string_view>

namespace enerj {
namespace obs {

/// RAII region label. Nestable; the innermost scope owns attribution.
class RegionScope {
public:
  explicit RegionScope(std::string_view Label) {
    Simulator *Sim = Simulator::current();
    if (!Sim)
      return;
    // Pre-region checkpointing (env::CheckpointKind::PreRegion) hooks the
    // same annotation sites, with or without telemetry attached.
    if (env::PowerMeter *Power = Sim->powerMeter())
      Power->onRegionEnter();
    if (!Sim->telemetry())
      return;
    Tel = Sim->telemetry();
    uint32_t Region = Tel->Metrics.internRegion(Label);
    Tel->Metrics.enterRegion(Region);
    Forced = !Tel->forcedRegion().empty() && Label == Tel->forcedRegion();
    if (Forced)
      Tel->pushForced();
    if (Tel->traceEnabled())
      Tel->Trace.push(TraceEvent{Sim->now(), 0, TraceEventKind::RegionEnter,
                                 OpKind::PreciseInt, Region});
    At = Sim;
  }

  ~RegionScope() {
    if (!Tel)
      return;
    if (Tel->traceEnabled())
      Tel->Trace.push(TraceEvent{At->now(), 0, TraceEventKind::RegionExit,
                                 OpKind::PreciseInt,
                                 Tel->Metrics.currentRegion()});
    if (Forced)
      Tel->popForced();
    Tel->Metrics.exitRegion();
  }

  RegionScope(const RegionScope &) = delete;
  RegionScope &operator=(const RegionScope &) = delete;

private:
  Telemetry *Tel = nullptr;
  Simulator *At = nullptr;
  bool Forced = false;
};

} // namespace obs
} // namespace enerj

#endif // ENERJ_OBS_REGION_H
