//===- obs/profile.cpp - Per-site energy/fault attribution ----------------===//
//
// The attribution math: every component factor of the aggregate
// EnergyReport is distributed over its sites proportionally to modeled
// energy, so the shares of one component sum to exactly that component's
// slice of TotalFactor and the grand total telescopes. Slices with no
// sites to carry them (no arithmetic ops, no tagged storage) fall into
// the "(unattributed)" residual row; the row is dropped when the
// residual is zero to rounding (< 1e-12).
//
// The profile JSON is schema "enerj-profile" version 1, pinned like the
// eval grid's JSON: key names and order only change with a version bump,
// doubles render as %.17g, and the document is byte-identical at any
// thread count (tests/validate_profile_json.py is the CI gate).
//
//===----------------------------------------------------------------------===//

#include "obs/profile.h"

#include "energy/model.h"
#include "harness/trial.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <set>
#include <utility>

using namespace enerj;
using namespace enerj::obs;
using harness::Trial;
using harness::TrialResult;
using harness::TrialRunner;
using harness::TrialStats;

namespace {

// Server split (the harness's setting) and the default abstract-unit
// constants — the profiler decomposes exactly what computeEnergy priced.
constexpr double CpuShare = 0.55;
constexpr double DramShare = 0.45;

bool isAluKind(OpKind Kind) {
  return storageClassOf(Kind) == StorageClass::Alu;
}

/// One ALU operation's modeled energy in abstract units under \p Config.
double opUnits(OpKind Kind, const FaultConfig &Config,
               const EnergyConstants &Constants) {
  bool IsFp = Kind == OpKind::PreciseFp || Kind == OpKind::ApproxFp;
  bool IsApprox = Kind == OpKind::ApproxInt || Kind == OpKind::ApproxFp;
  double Unit = IsFp ? Constants.FpOpUnits : Constants.IntOpUnits;
  return Unit * instructionEnergyFactor(IsFp, IsApprox, Config, Constants);
}

/// Distributes \p Pool (one component's slice of TotalFactor) over
/// \p Rows proportionally to \p Weights. Returns the undistributed
/// remainder: the whole pool when the weights sum to zero.
double distribute(std::vector<ProfileRow *> &Rows,
                  const std::vector<double> &Weights, double Pool) {
  double Total = 0.0;
  for (double W : Weights)
    Total += W;
  if (Total <= 0.0)
    return Pool;
  for (size_t I = 0; I < Rows.size(); ++I)
    Rows[I]->EnergyShare = Pool * (Weights[I] / Total);
  return 0.0;
}

void buildRows(ProfileResult &Result) {
  const FaultConfig &Config = Result.Config;
  const MetricsRegistry &M = Result.Metrics;
  const EnergyConstants Constants;

  std::vector<ProfileRow> Rows;

  // Operation rows, one per registry site. Only ALU kinds carry
  // instruction energy; the memory-op rows keep their fault counters but
  // their energy lives in the storage rows below.
  std::vector<size_t> AluRows;
  std::vector<double> AluWeights;
  for (size_t Site = 0; Site < M.siteCount(); ++Site) {
    SiteKey Key = M.siteKey(Site);
    const SiteCounters &C = M.site(Site);
    ProfileRow Row;
    Row.Region = M.regionName(Key.Region);
    Row.Item = opKindName(Key.Kind);
    Row.Class = storageClassOf(Key.Kind);
    Row.Ops = C.Count;
    Row.Faults = C.Faults;
    Row.FlippedBits = C.FlippedBits;
    if (isAluKind(Key.Kind)) {
      AluRows.push_back(Rows.size());
      AluWeights.push_back(static_cast<double>(C.Count) *
                           opUnits(Key.Kind, Config, Constants));
    }
    Rows.push_back(std::move(Row));
  }

  // Storage rows, one per (region, technology) with a nonzero footprint.
  // The weight is the savings-adjusted byte-cycles: approximate bytes
  // that save power weigh less, exactly as in the component factor.
  std::vector<size_t> SramRows, DramRows;
  std::vector<double> SramWeights, DramWeights;
  const std::vector<StorageStats> &ByRegion = M.regionStorage();
  for (uint32_t Region = 0; Region < ByRegion.size(); ++Region) {
    const StorageStats &S = ByRegion[Region];
    if (S.sramTotal() > 0) {
      ProfileRow Row;
      Row.Region = M.regionName(Region);
      Row.Item = "sramStorage";
      Row.Class = StorageClass::Sram;
      Row.IsStorage = true;
      Row.PreciseByteCycles = S.SramPrecise;
      Row.ApproxByteCycles = S.SramApprox;
      SramRows.push_back(Rows.size());
      SramWeights.push_back(S.SramPrecise +
                            S.SramApprox * (1.0 - Config.sramPowerSaved()));
      Rows.push_back(std::move(Row));
    }
    if (S.dramTotal() > 0) {
      ProfileRow Row;
      Row.Region = M.regionName(Region);
      Row.Item = "dramStorage";
      Row.Class = StorageClass::Dram;
      Row.IsStorage = true;
      Row.PreciseByteCycles = S.DramPrecise;
      Row.ApproxByteCycles = S.DramApprox;
      DramRows.push_back(Rows.size());
      DramWeights.push_back(S.DramPrecise +
                            S.DramApprox * (1.0 - Config.dramPowerSaved()));
      Rows.push_back(std::move(Row));
    }
  }

  // Distribute each component's slice of TotalFactor over its rows.
  const EnergyReport &E = Result.Energy;
  double InstructionShare = 0.0;
  {
    std::vector<ProfileRow *> Ptrs;
    for (size_t I : AluRows)
      Ptrs.push_back(&Rows[I]);
    InstructionShare = distribute(
        Ptrs, AluWeights,
        CpuShare * (1.0 - Constants.SramShareOfCpu) * E.InstructionFactor);
  }
  double SramShare = 0.0;
  {
    std::vector<ProfileRow *> Ptrs;
    for (size_t I : SramRows)
      Ptrs.push_back(&Rows[I]);
    SramShare = distribute(Ptrs, SramWeights,
                           CpuShare * Constants.SramShareOfCpu * E.SramFactor);
  }
  double DramShare_ = 0.0;
  {
    std::vector<ProfileRow *> Ptrs;
    for (size_t I : DramRows)
      Ptrs.push_back(&Rows[I]);
    DramShare_ = distribute(Ptrs, DramWeights, DramShare * E.DramFactor);
  }

  std::sort(Rows.begin(), Rows.end(),
            [](const ProfileRow &A, const ProfileRow &B) {
              if (A.EnergyShare != B.EnergyShare)
                return A.EnergyShare > B.EnergyShare;
              if (A.Region != B.Region)
                return A.Region < B.Region;
              return A.Item < B.Item;
            });

  double Residual = InstructionShare + SramShare + DramShare_;
  if (Residual > 1e-12 || Residual < -1e-12) {
    ProfileRow Row;
    Row.Region = "(unattributed)";
    Row.Item = "-";
    Row.EnergyShare = Residual;
    Rows.push_back(std::move(Row));
  }

  Result.ShareSum = 0.0;
  for (const ProfileRow &Row : Rows)
    Result.ShareSum += Row.EnergyShare;
  Result.Rows = std::move(Rows);
}

/// Measures the forced-precise QoS delta for every distinct region among
/// the top-K rows: all (region, seed) probe trials fan out through one
/// runner, then per-region means aggregate in trial order.
void measureQosDeltas(ProfileResult &Result, const ProfileOptions &Options) {
  std::set<std::string> Seen{"main", "(unattributed)"};
  std::vector<std::string> Regions;
  size_t Top = std::min(Result.Rows.size(),
                        static_cast<size_t>(std::max(Options.TopK, 0)));
  for (size_t I = 0; I < Top; ++I)
    if (Seen.insert(Result.Rows[I].Region).second)
      Regions.push_back(Result.Rows[I].Region);
  if (Regions.empty())
    return;

  std::vector<Trial> Trials;
  Trials.reserve(Regions.size() * static_cast<size_t>(Result.Seeds));
  for (const std::string &Region : Regions)
    for (int Seed = 1; Seed <= Result.Seeds; ++Seed) {
      Trial T;
      T.App = Result.App;
      T.Config = Result.Config;
      T.WorkloadSeed = static_cast<uint64_t>(Seed);
      T.Obs.ForceRegionPrecise = Region;
      Trials.push_back(std::move(T));
    }
  TrialRunner Runner(Options.Threads);
  std::vector<TrialResult> Forced = Runner.run(Trials);

  for (size_t R = 0; R < Regions.size(); ++R) {
    std::vector<double> Qos;
    Qos.reserve(static_cast<size_t>(Result.Seeds));
    for (int Seed = 0; Seed < Result.Seeds; ++Seed)
      Qos.push_back(
          Forced[R * static_cast<size_t>(Result.Seeds) +
                 static_cast<size_t>(Seed)]
              .QosError);
    double Delta = Result.Qos.Mean - TrialStats::over(Qos).Mean;
    for (size_t I = 0; I < Top; ++I)
      if (Result.Rows[I].Region == Regions[R]) {
        Result.Rows[I].HasQosDelta = true;
        Result.Rows[I].QosDelta = Delta;
      }
  }
}

} // namespace

ProfileResult enerj::obs::runProfile(const ProfileOptions &Options) {
  ProfileResult Result;
  Result.App = Options.App;
  Result.Config = FaultConfig::preset(Options.Level);
  Result.Seeds = Options.Seeds;
  Result.TopK = Options.TopK;

  std::vector<Trial> Trials;
  Trials.reserve(static_cast<size_t>(Options.Seeds));
  for (int Seed = 1; Seed <= Options.Seeds; ++Seed) {
    Trial T;
    T.App = Options.App;
    T.Config = Result.Config;
    T.WorkloadSeed = static_cast<uint64_t>(Seed);
    T.Obs.Metrics = true;
    T.Obs.Trace = Options.Trace && Seed == 1;
    Trials.push_back(std::move(T));
  }
  TrialRunner Runner(Options.Threads);
  std::vector<TrialResult> Results = Runner.run(Trials);

  // Aggregate in seed order — bitwise identical at any thread count.
  std::vector<double> Qos;
  Qos.reserve(Results.size());
  for (TrialResult &R : Results) {
    Qos.push_back(R.QosError);
    Result.Stats.Ops += R.Stats.Ops;
    Result.Stats.Storage += R.Stats.Storage;
    Result.Metrics.merge(R.Metrics);
    Result.LedgerTicks += R.ClockCycles;
  }
  Result.Qos = TrialStats::over(Qos);
  Result.Energy = computeEnergy(Result.Stats, Result.Config);
  if (!Results.empty())
    Result.Seed1 = std::move(Results.front());

  buildRows(Result);
  if (Options.QosDelta)
    measureQosDeltas(Result, Options);
  return Result;
}

//===----------------------------------------------------------------------===//
// Renderers
//===----------------------------------------------------------------------===//

namespace {

void appendDouble(std::string &Out, double Value) {
  char Buffer[40];
  std::snprintf(Buffer, sizeof(Buffer), "%.17g", Value);
  Out += Buffer;
}

void appendU64(std::string &Out, uint64_t Value) {
  char Buffer[24];
  std::snprintf(Buffer, sizeof(Buffer), "%" PRIu64, Value);
  Out += Buffer;
}

void appendStats(std::string &Out, const char *Key, const TrialStats &S) {
  Out += '"';
  Out += Key;
  Out += "\":{\"count\":";
  appendU64(Out, static_cast<uint64_t>(S.Count));
  Out += ",\"mean\":";
  appendDouble(Out, S.Mean);
  Out += ",\"stddev\":";
  appendDouble(Out, S.Stddev);
  Out += ",\"min\":";
  appendDouble(Out, S.Min);
  Out += ",\"max\":";
  appendDouble(Out, S.Max);
  Out += ",\"ci95\":";
  appendDouble(Out, S.Ci95Half);
  Out += '}';
}

uint64_t totalFlippedBits(const MetricsRegistry &M) {
  uint64_t Total = 0;
  for (size_t Site = 0; Site < M.siteCount(); ++Site)
    Total += M.site(Site).FlippedBits;
  return Total;
}

} // namespace

std::string enerj::obs::renderProfileJson(const ProfileResult &Result) {
  std::string Out = "{\"tool\":\"enerj-profile\",\"version\":1,\"app\":\"";
  Out += Result.App->name();
  Out += "\",\"level\":\"";
  Out += approxLevelName(Result.Config.Level);
  Out += "\",\"seeds\":";
  appendU64(Out, static_cast<uint64_t>(Result.Seeds));
  Out += ",\"topK\":";
  appendU64(Out, static_cast<uint64_t>(Result.TopK));
  Out += ',';
  appendStats(Out, "qos", Result.Qos);
  const EnergyReport &E = Result.Energy;
  Out += ",\"energy\":{\"instruction\":";
  appendDouble(Out, E.InstructionFactor);
  Out += ",\"sram\":";
  appendDouble(Out, E.SramFactor);
  Out += ",\"dram\":";
  appendDouble(Out, E.DramFactor);
  Out += ",\"cpu\":";
  appendDouble(Out, E.CpuFactor);
  Out += ",\"total\":";
  appendDouble(Out, E.TotalFactor);
  Out += "},\"shareSum\":";
  appendDouble(Out, Result.ShareSum);
  Out += ",\"ticks\":{\"ledger\":";
  appendU64(Out, Result.LedgerTicks);
  Out += ",\"registry\":";
  appendU64(Out, Result.Metrics.totalTicks());
  Out += "},\"ops\":";
  appendU64(Out, Result.Metrics.totalOps());
  Out += ",\"faults\":";
  appendU64(Out, Result.Metrics.totalFaults());
  Out += ",\"flippedBits\":";
  appendU64(Out, totalFlippedBits(Result.Metrics));
  Out += ",\"sites\":[";
  for (size_t I = 0; I < Result.Rows.size(); ++I) {
    const ProfileRow &Row = Result.Rows[I];
    if (I)
      Out += ',';
    Out += "{\"region\":\"";
    Out += Row.Region;
    Out += "\",\"item\":\"";
    Out += Row.Item;
    Out += "\",\"class\":\"";
    Out += storageClassName(Row.Class);
    Out += "\",\"storage\":";
    Out += Row.IsStorage ? "true" : "false";
    Out += ",\"ops\":";
    appendU64(Out, Row.Ops);
    Out += ",\"faults\":";
    appendU64(Out, Row.Faults);
    Out += ",\"flippedBits\":";
    appendU64(Out, Row.FlippedBits);
    Out += ",\"preciseByteCycles\":";
    appendDouble(Out, Row.PreciseByteCycles);
    Out += ",\"approxByteCycles\":";
    appendDouble(Out, Row.ApproxByteCycles);
    Out += ",\"energyShare\":";
    appendDouble(Out, Row.EnergyShare);
    Out += ",\"qosDelta\":";
    if (Row.HasQosDelta)
      appendDouble(Out, Row.QosDelta);
    else
      Out += "null";
    Out += '}';
  }
  Out += "],\"dramGaps\":[";
  const Log2Histogram &Gaps = Result.Metrics.dramGaps();
  for (int B = 0; B < Log2Histogram::NumBuckets; ++B) {
    if (B)
      Out += ',';
    appendU64(Out, Gaps.Buckets[B]);
  }
  Out += "]}";
  return Out;
}

std::string enerj::obs::renderProfileText(const ProfileResult &Result) {
  char Line[256];
  std::string Out;
  std::snprintf(Line, sizeof(Line),
                "Profile: %s at level %s, %d seed(s)\n",
                Result.App->name(), approxLevelName(Result.Config.Level),
                Result.Seeds);
  Out += Line;
  std::snprintf(Line, sizeof(Line),
                "QoS error: mean %.6f, stddev %.6f, min %.6f, max %.6f\n",
                Result.Qos.Mean, Result.Qos.Stddev, Result.Qos.Min,
                Result.Qos.Max);
  Out += Line;
  const EnergyReport &E = Result.Energy;
  std::snprintf(Line, sizeof(Line),
                "Energy factor: total %.4f (instruction %.4f, sram %.4f, "
                "dram %.4f)\n",
                E.TotalFactor, E.InstructionFactor, E.SramFactor,
                E.DramFactor);
  Out += Line;
  std::snprintf(Line, sizeof(Line),
                "Clock: %" PRIu64 " ledger tick(s), %" PRIu64
                " registry tick(s); %" PRIu64 " op(s), %" PRIu64
                " fault(s), %" PRIu64 " flipped bit(s)\n\n",
                Result.LedgerTicks, Result.Metrics.totalTicks(),
                Result.Metrics.totalOps(), Result.Metrics.totalFaults(),
                totalFlippedBits(Result.Metrics));
  Out += Line;
  std::snprintf(Line, sizeof(Line),
                "%-16s %-12s %-5s %12s %9s %9s %8s %10s\n", "region", "item",
                "class", "ops", "faults", "flipped", "share%", "qos-delta");
  Out += Line;
  Out += std::string(88, '-');
  Out += '\n';
  for (const ProfileRow &Row : Result.Rows) {
    char Delta[16];
    if (Row.HasQosDelta)
      std::snprintf(Delta, sizeof(Delta), "%+10.6f", Row.QosDelta);
    else
      std::snprintf(Delta, sizeof(Delta), "%10s", "-");
    std::snprintf(Line, sizeof(Line),
                  "%-16s %-12s %-5s %12" PRIu64 " %9" PRIu64 " %9" PRIu64
                  " %7.3f%% %s\n",
                  Row.Region.c_str(), Row.Item.c_str(),
                  storageClassName(Row.Class), Row.Ops, Row.Faults,
                  Row.FlippedBits, Row.EnergyShare * 100.0, Delta);
    Out += Line;
  }
  std::snprintf(Line, sizeof(Line),
                "\nShare sum %.12f of total factor %.12f\n", Result.ShareSum,
                E.TotalFactor);
  Out += Line;
  return Out;
}
