//===- obs/telemetry.h - Per-simulator telemetry bundle --------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bundle a Simulator reports into when telemetry is attached: one
/// MetricsRegistry, an optional TraceBuffer, and the forced-precise
/// control used by the profiler's QoS-delta measurement. Telemetry is
/// attached by the harness (Trial::Obs); with none attached the
/// simulator's hot paths test a single null pointer and do nothing else,
/// which is the "zero cost when disabled" contract the overhead bench
/// pins.
///
/// Crucially, *observing* never perturbs the *observed*: fault detection
/// XOR-compares the pre/post bits of an operation (support/bits.h
/// popcount) instead of consuming RNG draws, so a telemetry-enabled run
/// executes the identical fault stream — and produces bit-identical
/// results — to a disabled one. Only ForceRegionPrecise deliberately
/// changes execution (that is its purpose).
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_OBS_TELEMETRY_H
#define ENERJ_OBS_TELEMETRY_H

#include "obs/metrics.h"
#include "obs/trace.h"

#include <string>

namespace enerj {
namespace obs {

/// What the harness wants collected for a trial. Default-constructed =
/// everything off = the zero-cost path.
struct TelemetryRequest {
  bool Metrics = false;       ///< Collect the per-site registry.
  bool Trace = false;         ///< Record the event ring buffer.
  size_t TraceCapacity = 4096;
  /// When non-empty: execute every op inside regions with this label
  /// precisely (the profiler's "what if this site were @Precise" probe).
  std::string ForceRegionPrecise;

  bool enabled() const {
    return Metrics || Trace || !ForceRegionPrecise.empty();
  }
};

/// The live collection state for one Simulator. Owned by the harness
/// attempt, outliving the simulator it observes.
class Telemetry {
public:
  explicit Telemetry(const TelemetryRequest &Request)
      : Trace(Request.TraceCapacity), TraceEnabled(Request.Trace),
        ForcedRegion(Request.ForceRegionPrecise) {}

  MetricsRegistry Metrics;
  TraceBuffer Trace;

  bool traceEnabled() const { return TraceEnabled; }
  const std::string &forcedRegion() const { return ForcedRegion; }

  /// True while execution is inside (any nesting of) the forced-precise
  /// region; the simulator's fault paths become pass-throughs.
  bool forcedPrecise() const { return ForcedDepth > 0; }

  /// RegionScope bookkeeping for the forced-precise nesting depth.
  void pushForced() { ++ForcedDepth; }
  void popForced() { --ForcedDepth; }

  /// The one simulator entry point: records a completed op and, when the
  /// op corrupted bits and tracing is on, a Fault event at logical time
  /// \p Now.
  void onOp(OpKind Kind, unsigned FlippedBits, uint64_t Now) {
    Metrics.recordOp(Kind, FlippedBits);
    if (FlippedBits != 0 && TraceEnabled)
      Trace.push(TraceEvent{Now, FlippedBits, TraceEventKind::Fault, Kind,
                            Metrics.currentRegion()});
  }

private:
  bool TraceEnabled;
  std::string ForcedRegion;
  int ForcedDepth = 0;
};

} // namespace obs
} // namespace enerj

#endif // ENERJ_OBS_TELEMETRY_H
