//===- bench/reliability_bounds.cpp - Static bound vs Monte-Carlo cost ----===//
//
// The selling point of the reliability analysis is that one abstract
// fixpoint replaces thousands of fault-injection trials. This benchmark
// makes that trade concrete: for each ISA evaluation kernel it times
// (a) one analyzeProgram call and (b) a Monte-Carlo estimate of the
// exact-match rate at the same level, and prints the per-kernel bound,
// the measured rate, and both costs side by side.
//
//   ./reliability_bounds [trials] [level]   (default 200 trials, medium)
//
//===----------------------------------------------------------------------===//

#include "analysis/reliability/bounds.h"

#include "exec/compiled.h"
#include "fault/rates.h"
#include "support/rng.h"

#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace enerj;
using Clock = std::chrono::steady_clock;

namespace {

double millisSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

} // namespace

int main(int Argc, char **Argv) {
  int Trials = Argc > 1 ? std::atoi(Argv[1]) : 200;
  if (Trials < 1)
    Trials = 200;
  ApproxLevel Level = ApproxLevel::Medium;
  if (Argc > 2) {
    std::string Name = Argv[2];
    bool Found = false;
    for (ApproxLevel Candidate :
         {ApproxLevel::None, ApproxLevel::Mild, ApproxLevel::Medium,
          ApproxLevel::Aggressive})
      if (Name == approxLevelName(Candidate)) {
        Level = Candidate;
        Found = true;
      }
    if (!Found) {
      std::fprintf(stderr, "unknown level '%s'\n", Name.c_str());
      return 2;
    }
  }

  const char *KernelDir = std::getenv("ENERJ_FEJ_DIR");
  std::string Dir =
      (KernelDir ? std::string(KernelDir) : std::string("examples/fej")) +
      "/isa";
  exec::ProgramCache Cache(Dir);
  FaultRates Rates = FaultRates::of(FaultConfig::preset(Level));

  std::printf("reliability bounds vs Monte-Carlo @ %s, %d trials\n",
              approxLevelName(Level), Trials);
  std::printf("%-14s %12s %12s %12s %12s\n", "kernel", "bound",
              "mc-rate", "static-ms", "mc-ms");
  for (const char *Name :
       {"barcode", "fft", "floodfill", "lu", "montecarlo", "raytracer",
        "sor", "sparsematmult", "trikernel"}) {
    const exec::CompiledKernel &Kernel = Cache.get(Name, Level);

    Clock::time_point StaticStart = Clock::now();
    analysis::reliability::ReliabilityReport Report =
        analysis::reliability::analyzeProgram(Kernel.Binary, Rates);
    double StaticMs = millisSince(StaticStart);

    Clock::time_point McStart = Clock::now();
    FaultConfig Base = FaultConfig::preset(Level);
    int Exact = 0;
    for (int Seed = 1; Seed <= Trials; ++Seed) {
      FaultConfig Config = Base;
      Config.Seed = mixSeed(Base.Seed, static_cast<uint64_t>(Seed));
      exec::FastMachine M(Kernel.Binary, Config);
      exec::FastResult Run = M.run();
      if (!Run.Trapped && M.intReg(1) == Kernel.RefInt &&
          std::bit_cast<uint64_t>(M.fpReg(1)) ==
              std::bit_cast<uint64_t>(Kernel.RefFp))
        ++Exact;
    }
    double McMs = millisSince(McStart);

    std::printf("%-14s %12.6g %12.4f %12.3f %12.3f\n", Name,
                Report.ProgramBound, static_cast<double>(Exact) / Trials,
                StaticMs, McMs);
  }
  return 0;
}
