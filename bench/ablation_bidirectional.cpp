//===- bench/ablation_bidirectional.cpp - Section 2.3 ablation ------------===//
//
// Measures what EnerJ's bidirectional typing buys: for FEnerJ kernels
// whose approximate storage is fed by precise-operand arithmetic, the
// optimization reclassifies those operations onto the approximate units.
// The harness reports the approximate-operation fraction and the
// instruction-energy factor with the optimization off and on.
//
//===----------------------------------------------------------------------===//

#include "energy/model.h"
#include "fenerj/fenerj.h"

#include <cstdio>

using namespace enerj;
using namespace enerj::fenerj;

namespace {

struct Kernel {
  const char *Name;
  const char *Source;
};

/// FEnerJ kernels in the style the paper describes: approximate
/// accumulators fed by expressions over precise inputs.
const Kernel Kernels[] = {
    {"axpy",
     R"({
       let @approx float[] y = new @approx float[64];
       let float a = 2.5;
       let int i = 0;
       while (i < y.length) {
         y[i] := a * 1.5 + 0.25;
         i = i + 1;
       };
       0;
     })"},
    {"horner",
     R"({
       let @approx float acc = 0.0;
       let float x = 0.75;
       let int i = 0;
       while (i < 100) {
         acc = acc * x + 1.0;
         i = i + 1;
       };
       endorse(acc) > 0.0;
     })"},
    {"table-fill",
     R"(
       class Cell {
         @approx int weight;
         int set(@approx int w) { this.weight := w; 0; }
       }
       {
         let Cell c = new Cell();
         let int i = 0;
         while (i < 200) {
           c.set(i * 3 + 7);
           i = i + 1;
         };
         0;
       })"},
};

/// Runs a kernel and prices its dynamic operations with the Section 5.4
/// per-instruction model (storage factors stay 1: this ablation isolates
/// operator selection).
void measure(const Kernel &K, bool Bidirectional, double &ApproxFraction,
             double &InstructionFactor) {
  DiagnosticEngine Diags;
  ClassTable Table;
  std::optional<Program> Prog = parseProgram(K.Source, Diags);
  if (!Prog) {
    std::fprintf(stderr, "kernel %s failed to parse:\n%s", K.Name,
                 Diags.str().c_str());
    std::exit(1);
  }
  if (!Table.build(*Prog, Diags)) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    std::exit(1);
  }
  CheckOptions Options;
  Options.Bidirectional = Bidirectional;
  CheckResult Check = typeCheckEx(*Prog, Table, Diags, Options);
  if (!Check.Ok) {
    std::fprintf(stderr, "kernel %s rejected:\n%s", K.Name,
                 Diags.str().c_str());
    std::exit(1);
  }
  InterpOptions RunOptions;
  RunOptions.ContextApproxOps = &Check.ContextApproxOps;
  Interpreter Interp(*Prog, Table, RunOptions);
  EvalResult Result = Interp.run();
  if (Result.Trapped) {
    std::fprintf(stderr, "kernel %s trapped: %s\n", K.Name,
                 Result.TrapMessage.c_str());
    std::exit(1);
  }
  RunStats Stats;
  Stats.Ops = Interp.opStats();
  uint64_t Approx = Stats.Ops.ApproxInt + Stats.Ops.ApproxFp;
  ApproxFraction = Stats.Ops.total()
                       ? static_cast<double>(Approx) / Stats.Ops.total()
                       : 0.0;
  InstructionFactor =
      computeEnergy(Stats, FaultConfig::preset(ApproxLevel::Medium))
          .InstructionFactor;
}

} // namespace

int main() {
  std::printf("Section 2.3 ablation: bidirectional typing (approximate "
              "operator selection\nwhen only the result type is "
              "approximate), Medium energy model\n\n");
  std::printf("%-12s %14s %14s %14s %14s\n", "Kernel", "approx-ops off",
              "approx-ops on", "instr-E off", "instr-E on");
  for (int I = 0; I < 74; ++I)
    std::putchar('-');
  std::printf("\n");

  for (const Kernel &K : Kernels) {
    double FracOff, FracOn, EnergyOff, EnergyOn;
    measure(K, /*Bidirectional=*/false, FracOff, EnergyOff);
    measure(K, /*Bidirectional=*/true, FracOn, EnergyOn);
    std::printf("%-12s %13.1f%% %13.1f%% %14.3f %14.3f\n", K.Name,
                FracOff * 100, FracOn * 100, EnergyOff, EnergyOn);
  }

  std::printf("\nExpected shape: without the optimization, expressions "
              "over precise operands\nrun on precise units even when "
              "their results are only used approximately;\nbidirectional "
              "typing recovers those operations, raising the approximate\n"
              "fraction and lowering instruction energy at no annotation "
              "cost (Section 2.3).\n");
  return 0;
}
