//===- bench/ablation_layout.cpp - Section 4.1 layout-granularity study ---===//
//
// How much declared-approximate data actually lands in approximate
// storage under the cache-line-granularity layout of Section 4.1, across
// object shapes and line sizes. The paper notes the 64-byte-line
// constraint costs little because most approximate data sits in large
// arrays, and that finer granularity would recover the rest.
//
//===----------------------------------------------------------------------===//

#include "arch/layout.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace enerj;

namespace {

struct Shape {
  const char *Name;
  std::vector<FieldDecl> Fields;
};

std::vector<FieldDecl> mixedFields(int PreciseCount, int ApproxCount,
                                   uint64_t Bytes) {
  std::vector<FieldDecl> Fields;
  for (int I = 0; I < PreciseCount; ++I)
    Fields.push_back({"p" + std::to_string(I), Bytes, false});
  for (int I = 0; I < ApproxCount; ++I)
    Fields.push_back({"a" + std::to_string(I), Bytes, true});
  return Fields;
}

} // namespace

int main() {
  const std::vector<Shape> Shapes = {
      {"tiny (2p+2a x4B)", mixedFields(2, 2, 4)},
      {"small (2p+6a x8B)", mixedFields(2, 6, 8)},
      {"medium (4p+28a x8B)", mixedFields(4, 28, 8)},
      {"large (4p+124a x8B)", mixedFields(4, 124, 8)},
      {"approx-only (16a x8B)", mixedFields(0, 16, 8)},
  };
  const std::vector<uint64_t> LineSizes = {16, 32, 64, 128};

  std::printf("Section 4.1 layout study: fraction of declared-approximate "
              "bytes stored\napproximately, by object shape and cache-line "
              "size\n\n");
  std::printf("%-24s", "Object shape");
  for (uint64_t Line : LineSizes)
    std::printf(" %7lluB", static_cast<unsigned long long>(Line));
  std::printf("\n");
  for (int I = 0; I < 60; ++I)
    std::putchar('-');
  std::printf("\n");

  for (const Shape &S : Shapes) {
    std::printf("%-24s", S.Name);
    for (uint64_t Line : LineSizes) {
      LayoutResult Result = layoutObject(S.Fields, Line);
      uint64_t DeclaredApprox = 0;
      for (const FieldDecl &F : S.Fields)
        if (F.Approx)
          DeclaredApprox += F.Bytes;
      double Fraction =
          DeclaredApprox
              ? static_cast<double>(Result.ApproxBytes) / DeclaredApprox
              : 0.0;
      std::printf(" %7.0f%%", Fraction * 100.0);
    }
    std::printf("\n");
  }

  std::printf("\nArrays of approximate primitives (first line precise, "
              "rest approximate):\n\n%-24s", "Array length (8B elems)");
  for (uint64_t Line : LineSizes)
    std::printf(" %7lluB", static_cast<unsigned long long>(Line));
  std::printf("\n");
  for (int I = 0; I < 60; ++I)
    std::putchar('-');
  std::printf("\n");
  for (uint64_t Count : {8u, 64u, 1024u, 65536u}) {
    std::printf("%-24llu", static_cast<unsigned long long>(Count));
    for (uint64_t Line : LineSizes) {
      LayoutResult Result = layoutArray(Count, 8, true, Line);
      double Fraction =
          static_cast<double>(Result.ApproxBytes) / (Count * 8);
      std::printf(" %7.0f%%", Fraction * 100.0);
    }
    std::printf("\n");
  }

  std::printf("\nExpected shape (paper): the 64-byte constraint barely "
              "hurts large arrays\n(their data dominates), while small "
              "mixed objects lose approximate coverage;\nfiner lines "
              "recover it.\n");
  return 0;
}
