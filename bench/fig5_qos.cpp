//===- bench/fig5_qos.cpp - Reproduce Figure 5 ----------------------------===//
//
// Output error (application-specific QoS metric, 0 = identical to the
// precise run, 1 = meaningless) for the three approximation levels
// varied together; each number is the mean over 20 runs, exactly as in
// Figure 5. The 540 trials of the grid run in parallel; the means are
// bitwise identical to the old serial loops at any thread count.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"
#include "harness/eval.h"

#include <cstdio>

using namespace enerj;
using namespace enerj::apps;

int main() {
  constexpr int Runs = 20;
  std::printf("Figure 5: output error at the three approximation levels "
              "(mean of %d runs)\n\n", Runs);
  std::printf("%-14s %10s %10s %10s\n", "Application", "mild", "medium",
              "aggressive");
  bench::printRule(48);

  harness::EvalOptions Options;
  Options.Seeds = Runs;
  harness::EvalResult Grid = harness::runEval(Options);

  for (const Application *App : Grid.Apps) {
    double Error[3];
    for (size_t Level = 0; Level < Grid.Levels.size(); ++Level)
      Error[Level] = Grid.cell(*App, Grid.Levels[Level])->Qos.Mean;
    std::printf("%-14s %10.4f %10.4f %10.4f\n", App->name(), Error[0],
                Error[1], Error[2]);
  }

  std::printf("\nExpected shape (paper): negligible error for every app "
              "at Mild; sensitivity\nvaries widely at Medium/Aggressive — "
              "FFT and SOR degrade most, while\nMonteCarlo, SparseMatMult, "
              "the ImageJ stand-in, and Raytracer stay close to\ntheir "
              "precise outputs. Every run produces an output (no "
              "crashes).\n");
  return 0;
}
