//===- bench/fig3_approx_fraction.cpp - Reproduce Figure 3 ----------------===//
//
// For each application, the fraction of approximate storage (DRAM and
// SRAM byte-seconds) and the fraction of dynamic operations executed
// approximately (integer and FP units) — the four bar groups of
// Figure 3. Measured by one Medium-level trial per app, fanned out over
// the parallel trial runner.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"
#include "harness/eval.h"

#include <cstdio>

using namespace enerj;
using namespace enerj::apps;

int main() {
  std::printf("Figure 3: proportion of approximate storage and "
              "computation per benchmark\n");
  std::printf("(fraction of byte-seconds for storage; fraction of dynamic "
              "operations for the units)\n\n");
  std::printf("%-14s %10s %10s %10s %10s\n", "Application", "DRAM",
              "SRAM", "int ops", "FP ops");
  bench::printRule(60);

  harness::EvalOptions Options;
  Options.Levels = {ApproxLevel::Medium};
  Options.Seeds = 1;
  harness::EvalResult Grid = harness::runEval(Options);

  for (const harness::EvalCell &Cell : Grid.Cells) {
    const OperationStats &Ops = Cell.Seed1.Stats.Ops;
    const StorageStats &Storage = Cell.Seed1.Stats.Storage;
    auto Percent = [](double Fraction) { return Fraction * 100.0; };
    std::printf("%-14s %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n",
                Cell.App->name(), Percent(Storage.dramApproxFraction()),
                Percent(Storage.sramApproxFraction()),
                Percent(Ops.approxIntFraction()),
                Percent(Ops.approxFpFraction()));
  }

  std::printf("\nExpected shape (paper): FP-heavy apps approximate nearly "
              "all FP operations;\ninteger approximation is limited by "
              "loop/control code except for the pixel-\ndominated ImageJ "
              "stand-in; DRAM approximation is high for array-heavy apps "
              "and\nnear zero for MonteCarlo and the jMonkeyEngine "
              "stand-in, whose data stays on\nthe stack.\n");
  return 0;
}
