//===- bench/table2_strategies.cpp - Reproduce Table 2 --------------------===//
//
// Prints the approximation-strategy configuration table (Table 2): the
// per-level error probabilities / widths and the energy saved by each
// strategy, exactly as the simulator consumes them.
//
//===----------------------------------------------------------------------===//

#include "fault/config.h"
#include "harness/eval.h"

#include <cmath>
#include <cstdio>

using namespace enerj;

int main() {
  // The same three levels the evaluation grid enumerates, in Table 2
  // order (the single source of truth lives in the harness).
  const std::vector<ApproxLevel> &Levels = harness::evalLevels();
  FaultConfig Mild = FaultConfig::preset(Levels[0]);
  FaultConfig Medium = FaultConfig::preset(Levels[1]);
  FaultConfig Aggressive = FaultConfig::preset(Levels[2]);

  std::printf("Table 2: approximation strategies simulated in the "
              "evaluation\n");
  std::printf("(paper values; * marks the authors' educated guesses)\n\n");
  std::printf("%-46s %12s %12s %12s\n", "", "Mild", "Medium", "Aggressive");
  std::printf("%-46s %12.0e %12.0e %12.0e\n",
              "DRAM refresh: per-second bit flip probability",
              Mild.dramFlipPerSecond(), Medium.dramFlipPerSecond(),
              Aggressive.dramFlipPerSecond());
  std::printf("%-46s %11.0f%% %11.0f%% %11.0f%%\n", "  Memory power saved",
              Mild.dramPowerSaved() * 100, Medium.dramPowerSaved() * 100,
              Aggressive.dramPowerSaved() * 100);
  std::printf("%-46s %12.1e %12.1e %12.1e\n",
              "SRAM read upset probability", Mild.sramReadUpset(),
              Medium.sramReadUpset(), Aggressive.sramReadUpset());
  std::printf("%-46s %12.1e %12.1e %12.1e\n",
              "SRAM write failure probability", Mild.sramWriteFailure(),
              Medium.sramWriteFailure(), Aggressive.sramWriteFailure());
  std::printf("%-46s %11.0f%% %11.0f%% %11.0f%%\n", "  Supply power saved",
              Mild.sramPowerSaved() * 100, Medium.sramPowerSaved() * 100,
              Aggressive.sramPowerSaved() * 100);
  std::printf("%-46s %12u %12u %12u\n", "float mantissa bits",
              Mild.floatMantissaBits(), Medium.floatMantissaBits(),
              Aggressive.floatMantissaBits());
  std::printf("%-46s %12u %12u %12u\n", "double mantissa bits",
              Mild.doubleMantissaBits(), Medium.doubleMantissaBits(),
              Aggressive.doubleMantissaBits());
  std::printf("%-46s %11.0f%% %11.0f%% %11.0f%%\n",
              "  Energy saved per FP operation",
              Mild.fpEnergySaved() * 100, Medium.fpEnergySaved() * 100,
              Aggressive.fpEnergySaved() * 100);
  std::printf("%-46s %12.0e %12.0e %12.0e\n",
              "Arithmetic timing error probability",
              Mild.timingErrorProbability(),
              Medium.timingErrorProbability(),
              Aggressive.timingErrorProbability());
  std::printf("%-46s %11.0f%% %11.0f%% %11.0f%%\n",
              "  Energy saved per int operation",
              Mild.aluEnergySaved() * 100, Medium.aluEnergySaved() * 100,
              Aggressive.aluEnergySaved() * 100);
  return 0;
}
