//===- bench/micro_simulator.cpp - Simulator overhead microbenchmarks -----===//
//
// google-benchmark microbenchmarks of the simulator's hot paths: the
// per-operation cost of approximate arithmetic, storage fault injection,
// and the ledger. These bound how large a workload the table/figure
// harnesses can afford.
//
//===----------------------------------------------------------------------===//

#include "core/enerj.h"

#include <benchmark/benchmark.h>

using namespace enerj;

namespace {

void BM_PlainDoubleAdd(benchmark::State &State) {
  double Acc = 0.0;
  double Step = 1.0000001;
  for (auto _ : State) {
    Acc += Step;
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(BM_PlainDoubleAdd);

void BM_ApproxAddNoSimulator(benchmark::State &State) {
  Approx<double> Acc = 0.0;
  Approx<double> Step = 1.0000001;
  for (auto _ : State) {
    Acc += Step;
    benchmark::DoNotOptimize(&Acc);
  }
}
BENCHMARK(BM_ApproxAddNoSimulator);

void BM_ApproxAddUnderSimulator(benchmark::State &State) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::Medium));
  SimulatorScope Scope(Sim);
  Approx<double> Acc = 0.0;
  Approx<double> Step = 1.0000001;
  for (auto _ : State) {
    Acc += Step;
    benchmark::DoNotOptimize(&Acc);
  }
}
BENCHMARK(BM_ApproxAddUnderSimulator);

void BM_ApproxIntAddUnderSimulator(benchmark::State &State) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::Medium));
  SimulatorScope Scope(Sim);
  Approx<int32_t> Acc = 0;
  Approx<int32_t> Step = 3;
  for (auto _ : State) {
    Acc += Step;
    benchmark::DoNotOptimize(&Acc);
  }
}
BENCHMARK(BM_ApproxIntAddUnderSimulator);

void BM_PreciseCountedAdd(benchmark::State &State) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::Medium));
  SimulatorScope Scope(Sim);
  Precise<int32_t> Acc = 0;
  for (auto _ : State) {
    Acc += 1;
    benchmark::DoNotOptimize(&Acc);
  }
}
BENCHMARK(BM_PreciseCountedAdd);

void BM_ApproxArrayReadWrite(benchmark::State &State) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::Medium));
  SimulatorScope Scope(Sim);
  ApproxArray<double> Data(1024, 1.0);
  size_t Index = 0;
  for (auto _ : State) {
    Data.set(Index, Data.get(Index) + Approx<double>(0.5));
    Index = (Index + 7) & 1023;
  }
}
BENCHMARK(BM_ApproxArrayReadWrite);

void BM_SramFaultInjection(benchmark::State &State) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::Aggressive));
  uint64_t Value = 0xDEADBEEF;
  for (auto _ : State) {
    Value = Sim.sramRead(Value);
    benchmark::DoNotOptimize(Value);
  }
}
BENCHMARK(BM_SramFaultInjection);

void BM_LedgerLeaseRelease(benchmark::State &State) {
  MemoryLedger Ledger;
  for (auto _ : State) {
    LeaseHandle Handle = Ledger.lease(Region::Sram, 8, 0);
    Ledger.tick();
    Ledger.release(Handle);
  }
}
BENCHMARK(BM_LedgerLeaseRelease);

void BM_EnergyModel(benchmark::State &State) {
  RunStats Stats;
  Stats.Ops.PreciseInt = 1000;
  Stats.Ops.ApproxFp = 5000;
  Stats.Storage.DramApprox = 1e6;
  Stats.Storage.SramPrecise = 1e5;
  FaultConfig Config = FaultConfig::preset(ApproxLevel::Medium);
  for (auto _ : State) {
    EnergyReport Report = computeEnergy(Stats, Config);
    benchmark::DoNotOptimize(Report);
  }
}
BENCHMARK(BM_EnergyModel);

} // namespace

BENCHMARK_MAIN();
