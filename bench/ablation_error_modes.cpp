//===- bench/ablation_error_modes.cpp - Section 6.2 error-mode ablation ---===//
//
// The three functional-unit error models of Section 4.2 — single bit
// flip, last value, random value — compared at the Aggressive level with
// only the timing strategy enabled. The paper reports the random-value
// model (the most realistic one, used everywhere else) causes notably
// more QoS loss than the other two (~40% vs ~25% on their suite).
//
//===----------------------------------------------------------------------===//

#include "apps/app.h"
#include "bench_common.h"
#include "harness/eval.h"

#include <cstdio>

using namespace enerj;
using namespace enerj::apps;

int main() {
  constexpr int Runs = 10;
  std::printf("Section 6.2 ablation: functional-unit error modes "
              "(Aggressive timing errors only, mean of %d runs)\n\n",
              Runs);
  std::printf("%-14s %10s %10s %10s\n", "Application", "bitflip",
              "lastvalue", "random");
  bench::printRule(48);

  const std::vector<ErrorMode> Modes = {
      ErrorMode::SingleBitFlip, ErrorMode::LastValue,
      ErrorMode::RandomValue};
  std::vector<FaultConfig> Configs;
  for (ErrorMode Mode : Modes) {
    FaultConfig Config = FaultConfig::preset(ApproxLevel::Aggressive, Mode);
    Config.EnableDram = false;
    Config.EnableSram = false;
    Config.EnableFpWidth = false;
    Configs.push_back(Config);
  }

  const std::vector<const Application *> &Apps = allApplications();
  std::vector<std::vector<double>> Error =
      harness::meanQosGrid(Apps, Configs, Runs);
  double Mean[3] = {0, 0, 0};
  int AppCount = 0;
  for (size_t A = 0; A < Apps.size(); ++A) {
    for (size_t Column = 0; Column < Modes.size(); ++Column)
      Mean[Column] += Error[A][Column];
    ++AppCount;
    std::printf("%-14s %10.4f %10.4f %10.4f\n", Apps[A]->name(),
                Error[A][0], Error[A][1], Error[A][2]);
  }
  std::printf("%-14s %10.4f %10.4f %10.4f\n", "MEAN", Mean[0] / AppCount,
              Mean[1] / AppCount, Mean[2] / AppCount);

  std::printf("\nExpected shape (paper): the random-value model degrades "
              "output quality more\nthan single-bit-flip or last-value "
              "(25%% vs 40%% on the paper's suite).\n");
  return 0;
}
