//===- bench/obs_overhead.cpp - Telemetry overhead measurement ------------===//
//
// Pins the observability layer's cost model: with telemetry disabled
// the simulator's hot paths test one null pointer, so a disabled run
// must cost essentially what the pre-telemetry harness cost; enabling
// metrics (and metrics + trace) pays a bounded per-op increment. The
// bench runs the same trial grid in all three modes and reports
// wall-clock per mode, per-op cost, and the enabled/disabled ratio.
//
// Usage: obs_overhead [repetitions]   (default 3)
//
//===----------------------------------------------------------------------===//

#include "harness/trial.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace enerj;
using namespace enerj::harness;

namespace {

std::vector<Trial> grid(const obs::TelemetryRequest &Obs) {
  std::vector<Trial> Trials;
  for (const apps::Application *App : apps::allApplications())
    for (int Seed = 1; Seed <= 3; ++Seed) {
      Trial T;
      T.App = App;
      T.Config = FaultConfig::preset(ApproxLevel::Medium);
      T.WorkloadSeed = static_cast<uint64_t>(Seed);
      T.Obs = Obs;
      Trials.push_back(T);
    }
  return Trials;
}

struct Mode {
  const char *Name;
  obs::TelemetryRequest Obs;
};

} // namespace

int main(int Argc, char **Argv) {
  int Reps = 3;
  if (Argc > 1)
    Reps = std::atoi(Argv[1]);
  if (Reps < 1)
    Reps = 1;

  Mode Modes[3];
  Modes[0].Name = "disabled";
  Modes[1].Name = "metrics";
  Modes[1].Obs.Metrics = true;
  Modes[2].Name = "metrics+trace";
  Modes[2].Obs.Metrics = true;
  Modes[2].Obs.Trace = true;

  // One throwaway pass warms allocators and code paths so the first
  // measured mode is not penalized.
  TrialRunner Runner(1);
  Runner.run(grid(Modes[0].Obs));

  std::printf("Telemetry overhead: nine apps x 3 seeds at medium, "
              "%d repetition(s), single thread\n\n", Reps);
  std::printf("%-14s %12s %14s %12s\n", "mode", "seconds", "ops", "ns/op");
  std::printf("------------------------------------------------------\n");

  double Baseline = 0.0;
  for (const Mode &M : Modes) {
    std::vector<Trial> Trials = grid(M.Obs);
    uint64_t Ops = 0;
    auto Start = std::chrono::steady_clock::now();
    for (int Rep = 0; Rep < Reps; ++Rep) {
      std::vector<TrialResult> Results = Runner.run(Trials);
      Ops = 0;
      for (const TrialResult &R : Results)
        Ops += R.Stats.Ops.total();
    }
    auto End = std::chrono::steady_clock::now();
    double Seconds = std::chrono::duration<double>(End - Start).count();
    double PerOp = Ops ? Seconds / Reps / static_cast<double>(Ops) * 1e9
                       : 0.0;
    std::printf("%-14s %12.4f %14llu %12.2f\n", M.Name, Seconds,
                static_cast<unsigned long long>(Ops * Reps), PerOp);
    if (Baseline == 0.0)
      Baseline = Seconds;
    else
      std::printf("%-14s %11.2fx relative to disabled\n", "",
                  Seconds / Baseline);
  }
  return 0;
}
