//===- bench/obs_overhead.cpp - Telemetry overhead measurement ------------===//
//
// Pins the observability layer's cost model on BOTH engines: with
// telemetry disabled the hot paths test one null pointer, so a disabled
// run must cost essentially what the pre-telemetry harness cost;
// enabling metrics (and metrics + trace) pays a bounded per-op
// increment. The "journal" mode arms exactly the telemetry the flight
// recorder rides on (the structured trace, no per-site metrics) — the
// cost of `eval --journal-dir` relative to a plain eval — and CI gates
// its ratio against the committed baseline (tests/check_bench_obs.py:
// armed must stay within ~1.3x of disarmed).
//
// The bench runs the same trial grid (nine apps x 3 seeds at medium,
// single thread) per mode per engine and reports wall-clock, per-op
// cost, and the enabled/disabled ratio; with an output path it also
// writes the machine-readable BENCH_obs.json.
//
// Usage: obs_overhead [repetitions] [output.json]   (default 3, no JSON)
//
//===----------------------------------------------------------------------===//

#include "exec/compiled.h"
#include "harness/trial.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

using namespace enerj;
using namespace enerj::harness;

namespace {

std::vector<Trial> grid(const obs::TelemetryRequest &Obs,
                        exec::ProgramCache *Kernels) {
  std::vector<Trial> Trials;
  for (const apps::Application *App : apps::allApplications()) {
    const exec::CompiledKernel *Kernel =
        Kernels ? &Kernels->get(App->name(), ApproxLevel::Medium) : nullptr;
    for (int Seed = 1; Seed <= 3; ++Seed) {
      Trial T;
      T.App = App;
      T.Config = FaultConfig::preset(ApproxLevel::Medium);
      T.WorkloadSeed = static_cast<uint64_t>(Seed);
      T.Obs = Obs;
      T.Kernel = Kernel;
      T.Kernels = Kernels;
      Trials.push_back(T);
    }
  }
  return Trials;
}

struct Mode {
  const char *Name;
  obs::TelemetryRequest Obs;
};

struct Measurement {
  std::string Mode;
  double Seconds = 0.0;
  double NsPerOp = 0.0;
  double Ratio = 1.0;
};

/// Times every mode of one engine over \p Reps repetitions and prints
/// the table; Ratio is relative to the engine's own disabled mode.
std::vector<Measurement> timeEngine(const char *Engine,
                                    const std::vector<Mode> &Modes, int Reps,
                                    exec::ProgramCache *Kernels) {
  TrialRunner Runner(1);
  // One throwaway pass warms allocators, code paths, and (on the
  // compiled engine) the one-time kernel lowering, so the first
  // measured mode is not penalized.
  Runner.run(grid(Modes[0].Obs, Kernels));

  std::printf("%s engine\n", Engine);
  std::printf("%-14s %12s %14s %12s %8s\n", "mode", "seconds", "ops",
              "ns/op", "ratio");
  std::printf(
      "---------------------------------------------------------------\n");

  std::vector<Measurement> Out;
  double Baseline = 0.0;
  for (const Mode &M : Modes) {
    std::vector<Trial> Trials = grid(M.Obs, Kernels);
    uint64_t Ops = 0;
    auto Start = std::chrono::steady_clock::now();
    for (int Rep = 0; Rep < Reps; ++Rep) {
      std::vector<TrialResult> Results = Runner.run(Trials);
      Ops = 0;
      for (const TrialResult &R : Results)
        Ops += R.Stats.Ops.total();
    }
    auto End = std::chrono::steady_clock::now();
    Measurement Row;
    Row.Mode = M.Name;
    Row.Seconds = std::chrono::duration<double>(End - Start).count();
    Row.NsPerOp =
        Ops ? Row.Seconds / Reps / static_cast<double>(Ops) * 1e9 : 0.0;
    if (Baseline == 0.0)
      Baseline = Row.Seconds;
    Row.Ratio = Baseline > 0.0 ? Row.Seconds / Baseline : 1.0;
    std::printf("%-14s %12.4f %14llu %12.2f %7.2fx\n", M.Name, Row.Seconds,
                static_cast<unsigned long long>(Ops * Reps), Row.NsPerOp,
                Row.Ratio);
    Out.push_back(Row);
  }
  std::printf("\n");
  return Out;
}

void renderEngineJson(std::ofstream &Out, const char *Engine,
                      const std::vector<Measurement> &Rows, bool Last) {
  Out << "    {\n      \"engine\": \"" << Engine << "\",\n"
      << "      \"modes\": [\n";
  char Buffer[256];
  for (size_t I = 0; I < Rows.size(); ++I) {
    std::snprintf(Buffer, sizeof(Buffer),
                  "        {\"mode\": \"%s\", \"seconds\": %.4f, "
                  "\"nsPerOp\": %.2f, \"ratio\": %.4f}%s\n",
                  Rows[I].Mode.c_str(), Rows[I].Seconds, Rows[I].NsPerOp,
                  Rows[I].Ratio, I + 1 < Rows.size() ? "," : "");
    Out << Buffer;
  }
  Out << "      ]\n    }" << (Last ? "\n" : ",\n");
}

} // namespace

int main(int Argc, char **Argv) {
  int Reps = 3;
  std::string OutPath;
  if (Argc > 1)
    Reps = std::atoi(Argv[1]);
  if (Reps < 1)
    Reps = 1;
  if (Argc > 2)
    OutPath = Argv[2];

  std::vector<Mode> InterpModes(4);
  InterpModes[0].Name = "disabled";
  InterpModes[1].Name = "metrics";
  InterpModes[1].Obs.Metrics = true;
  InterpModes[2].Name = "metrics+trace";
  InterpModes[2].Obs.Metrics = true;
  InterpModes[2].Obs.Trace = true;
  // What `eval --journal-dir` arms: the structured trace alone.
  InterpModes[3].Name = "journal";
  InterpModes[3].Obs.Trace = true;

  // The compiled engine's metrics ride the batched fault injector and
  // its trace carries the harness/fault markers the journal needs.
  std::vector<Mode> CompiledModes(3);
  CompiledModes[0].Name = "disabled";
  CompiledModes[1].Name = "metrics";
  CompiledModes[1].Obs.Metrics = true;
  CompiledModes[2].Name = "journal";
  CompiledModes[2].Obs.Trace = true;

  std::printf("Telemetry overhead: nine apps x 3 seeds at medium, "
              "%d repetition(s), single thread\n\n",
              Reps);

  std::vector<Measurement> Interp =
      timeEngine("interp", InterpModes, Reps, nullptr);

  exec::ProgramCache Kernels(std::string(ENERJ_FEJ_DIR) + "/isa");
  std::vector<Measurement> Compiled =
      timeEngine("compiled", CompiledModes, Reps, &Kernels);

  if (OutPath.empty())
    return 0;

  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "obs_overhead: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  Out << "{\n  \"tool\": \"obs_overhead\",\n  \"version\": 1,\n"
      << "  \"reps\": " << Reps << ",\n"
      << "  \"trialsPerMode\": 27,\n"
      << "  \"engines\": [\n";
  renderEngineJson(Out, "interp", Interp, false);
  renderEngineJson(Out, "compiled", Compiled, true);
  Out << "  ]\n}\n";
  Out.close();
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
