//===- bench/ablation_strategies.cpp - Section 6.2 strategy ablation ------===//
//
// The relative impact of the approximation strategies, measured by
// enabling each in isolation at the Aggressive level (Section 6.2's
// in-isolation experiment). Also separates SRAM reads from writes, since
// the paper reports write failures hurt much more than read upsets.
//
//===----------------------------------------------------------------------===//

#include "apps/app.h"
#include "bench_common.h"
#include "harness/eval.h"

#include <cstdio>

using namespace enerj;
using namespace enerj::apps;

namespace {

FaultConfig onlyStrategy(bool Dram, bool Sram, bool FpWidth, bool Timing) {
  FaultConfig Config = FaultConfig::preset(ApproxLevel::Aggressive);
  Config.EnableDram = Dram;
  Config.EnableSram = Sram;
  Config.EnableFpWidth = FpWidth;
  Config.EnableTiming = Timing;
  return Config;
}

} // namespace

int main() {
  constexpr int Runs = 10;
  std::printf("Section 6.2 ablation: QoS impact of each strategy in "
              "isolation (Aggressive, mean of %d runs)\n\n", Runs);
  std::printf("%-14s %10s %10s %10s %10s %10s\n", "Application",
              "DRAM-only", "SRAM-only", "FP-width", "timing", "all");
  bench::printRule(72);

  double Mean[5] = {0, 0, 0, 0, 0};
  const std::vector<FaultConfig> Configs = {
      onlyStrategy(true, false, false, false),
      onlyStrategy(false, true, false, false),
      onlyStrategy(false, false, true, false),
      onlyStrategy(false, false, false, true),
      onlyStrategy(true, true, true, true),
  };

  const std::vector<const Application *> &Apps = allApplications();
  std::vector<std::vector<double>> Error =
      harness::meanQosGrid(Apps, Configs, Runs);
  int AppCount = 0;
  for (size_t A = 0; A < Apps.size(); ++A) {
    for (size_t Column = 0; Column < Configs.size(); ++Column)
      Mean[Column] += Error[A][Column];
    ++AppCount;
    std::printf("%-14s %10.4f %10.4f %10.4f %10.4f %10.4f\n",
                Apps[A]->name(), Error[A][0], Error[A][1], Error[A][2],
                Error[A][3], Error[A][4]);
  }
  std::printf("%-14s %10.4f %10.4f %10.4f %10.4f %10.4f\n", "MEAN",
              Mean[0] / AppCount, Mean[1] / AppCount, Mean[2] / AppCount,
              Mean[3] / AppCount, Mean[4] / AppCount);

  std::printf("\nExpected shape (paper): DRAM decay is nearly negligible; "
              "FP width reduction\ncosts at most ~0.12 error; functional-"
              "unit timing errors have the greatest\nimpact; SRAM sits in "
              "between, dominated by write failures.\n");
  return 0;
}
