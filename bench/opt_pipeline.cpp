//===- bench/opt_pipeline.cpp - Optimizer impact across the corpus --------===//
//
// The perf trajectory for the qualifier-aware optimizer: every ISA-subset
// kernel in examples/fej/isa/ is compiled, assembled, and run at -O0 and
// at -O1 (the validated default pipeline). For each app the bench reports
// the static instruction-count and Table-2 energy-factor reduction plus
// the measured dynamic cost — trials per second over repeated seeded
// machine runs — and writes the whole table to BENCH_opt.json so CI can
// track the trend across commits.
//
// Usage: opt_pipeline [trials] [output.json]
//
//===----------------------------------------------------------------------===//

#include "analysis/opt/pipeline.h"
#include "fenerj/codegen.h"
#include "fenerj/fenerj.h"
#include "isa/assembler.h"
#include "isa/machine.h"
#include "isa/verifier.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace enerj;
using namespace enerj::fenerj;
namespace opt = enerj::analysis::opt;
namespace fs = std::filesystem;

namespace {

struct AppResult {
  std::string Name;
  size_t OpsBefore = 0, OpsAfter = 0;
  double EnergyFactorBefore = 1.0, EnergyFactorAfter = 1.0;
  uint64_t DynBefore = 0, DynAfter = 0; ///< Instructions per trial.
  double TrialsPerSecO0 = 0.0, TrialsPerSecO1 = 0.0;
};

std::optional<std::string> readFile(const fs::path &Path) {
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// Seeded machine runs over one binary; returns trials/sec and the
/// per-trial dynamic instruction count (identical across seeds only at
/// level None, so the first trial's count is reported as representative).
double timeTrials(const isa::IsaProgram &Binary, int Trials,
                  uint64_t &DynOut) {
  using Clock = std::chrono::steady_clock;
  FaultConfig Config = FaultConfig::preset(ApproxLevel::Medium);
  Clock::time_point Start = Clock::now();
  for (int Seed = 1; Seed <= Trials; ++Seed) {
    Config.Seed = static_cast<uint64_t>(Seed) * 7919;
    isa::Machine M(Binary, Config);
    isa::MachineResult Result = M.run(50'000'000);
    if (Seed == 1)
      DynOut = Result.InstructionsExecuted;
  }
  double Seconds =
      std::chrono::duration<double>(Clock::now() - Start).count();
  return Seconds > 0 ? Trials / Seconds : 0.0;
}

} // namespace

int main(int Argc, char **Argv) {
  int Trials = 30;
  std::string OutPath = "BENCH_opt.json";
  if (Argc > 1)
    Trials = std::max(1, std::atoi(Argv[1]));
  if (Argc > 2)
    OutPath = Argv[2];

  fs::path KernelDir = fs::path(ENERJ_FEJ_DIR) / "isa";
  std::vector<fs::path> Files;
  for (const fs::directory_entry &Entry : fs::directory_iterator(KernelDir))
    if (Entry.path().extension() == ".fej")
      Files.push_back(Entry.path());
  std::sort(Files.begin(), Files.end());
  if (Files.empty()) {
    std::fprintf(stderr, "opt_pipeline: no kernels under %s\n",
                 KernelDir.string().c_str());
    return 1;
  }

  std::printf("Optimizer impact across the ISA corpus (%d trials per "
              "config, level medium)\n\n",
              Trials);
  std::printf("%-14s %6s %6s %7s %9s %9s %10s %10s\n", "app", "ops0",
              "ops1", "dynΔ%", "factor0", "factor1", "trials/s0",
              "trials/s1");
  for (int I = 0; I < 78; ++I)
    std::putchar('-');
  std::printf("\n");

  std::vector<AppResult> Results;
  for (const fs::path &File : Files) {
    std::optional<std::string> Source = readFile(File);
    if (!Source) {
      std::fprintf(stderr, "opt_pipeline: cannot read %s\n",
                   File.string().c_str());
      return 1;
    }
    DiagnosticEngine Diags;
    ClassTable Table;
    std::optional<Program> Prog = compile(*Source, Table, Diags);
    if (!Prog) {
      std::fprintf(stderr, "%s: %s\n", File.filename().string().c_str(),
                   Diags.str().c_str());
      return 1;
    }
    CodegenResult Code = compileToIsa(*Prog);
    if (!Code.Ok) {
      std::fprintf(stderr, "%s: %s\n", File.filename().string().c_str(),
                   Code.Error.c_str());
      return 1;
    }
    std::vector<std::string> AsmErrors;
    std::optional<isa::IsaProgram> Binary =
        isa::assemble(Code.Assembly, AsmErrors);
    if (!Binary) {
      for (const std::string &E : AsmErrors)
        std::fprintf(stderr, "%s: assembler: %s\n",
                     File.filename().string().c_str(), E.c_str());
      return 1;
    }
    std::vector<isa::VerifyError> VerifyErrors = isa::verify(*Binary);
    if (!VerifyErrors.empty()) {
      for (const isa::VerifyError &E : VerifyErrors)
        std::fprintf(stderr, "%s: verifier: %s\n",
                     File.filename().string().c_str(), E.str().c_str());
      return 1;
    }

    isa::IsaProgram Optimized = *Binary;
    opt::OptReport Report = opt::optimizeProgram(Optimized);
    if (!Report.Ok) {
      std::fprintf(stderr, "%s: optimizer: %s\n",
                   File.filename().string().c_str(), Report.Error.c_str());
      return 1;
    }

    AppResult R;
    R.Name = File.stem().string();
    R.OpsBefore = Report.OpsBefore;
    R.OpsAfter = Report.OpsAfter;
    R.EnergyFactorBefore = Report.EnergyBefore.factor();
    R.EnergyFactorAfter = Report.EnergyAfter.factor();
    R.TrialsPerSecO0 = timeTrials(*Binary, Trials, R.DynBefore);
    R.TrialsPerSecO1 = timeTrials(Optimized, Trials, R.DynAfter);
    Results.push_back(R);

    double DynDelta =
        R.DynBefore > 0
            ? 100.0 * (static_cast<double>(R.DynBefore) -
                       static_cast<double>(R.DynAfter)) /
                  static_cast<double>(R.DynBefore)
            : 0.0;
    std::printf("%-14s %6zu %6zu %6.1f%% %9.4f %9.4f %10.0f %10.0f\n",
                R.Name.c_str(), R.OpsBefore, R.OpsAfter, DynDelta,
                R.EnergyFactorBefore, R.EnergyFactorAfter, R.TrialsPerSecO0,
                R.TrialsPerSecO1);
  }

  double LogSpeedupSum = 0.0;
  int SpeedupCount = 0;
  for (const AppResult &R : Results)
    if (R.TrialsPerSecO0 > 0 && R.TrialsPerSecO1 > 0) {
      LogSpeedupSum += std::log(R.TrialsPerSecO1 / R.TrialsPerSecO0);
      ++SpeedupCount;
    }
  double GeomeanSpeedup =
      SpeedupCount > 0 ? std::exp(LogSpeedupSum / SpeedupCount) : 1.0;
  std::printf("\ngeomean -O1 speedup: %.3fx over %d apps\n", GeomeanSpeedup,
              SpeedupCount);

  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "opt_pipeline: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  Out << "{\n"
      << "  \"tool\": \"opt_pipeline\",\n"
      << "  \"version\": 1,\n"
      << "  \"level\": \"medium\",\n"
      << "  \"trials\": " << Trials << ",\n"
      << "  \"apps\": [\n";
  char Buffer[512];
  for (size_t I = 0; I < Results.size(); ++I) {
    const AppResult &R = Results[I];
    std::snprintf(
        Buffer, sizeof(Buffer),
        "    {\"name\": \"%s\", \"opsBefore\": %zu, \"opsAfter\": %zu, "
        "\"dynBefore\": %llu, \"dynAfter\": %llu, "
        "\"energyFactorBefore\": %.6f, \"energyFactorAfter\": %.6f, "
        "\"trialsPerSecO0\": %.1f, \"trialsPerSecO1\": %.1f}%s\n",
        R.Name.c_str(), R.OpsBefore, R.OpsAfter,
        static_cast<unsigned long long>(R.DynBefore),
        static_cast<unsigned long long>(R.DynAfter), R.EnergyFactorBefore,
        R.EnergyFactorAfter, R.TrialsPerSecO0, R.TrialsPerSecO1,
        I + 1 < Results.size() ? "," : "");
    Out << Buffer;
  }
  std::snprintf(Buffer, sizeof(Buffer),
                "  ],\n  \"geomeanSpeedup\": %.4f\n}\n", GeomeanSpeedup);
  Out << Buffer;
  Out.close();
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
