//===- bench/analysis_bench.cpp - interprocedural analysis timing ---------===//
//
// Times the three stages of the whole-program analysis pipeline —
// CallGraph::build, ConstraintSystem::build, and the demand + taint
// solvers — on synthetic layered programs of growing size. Each layer
// is a class whose context-polymorphic methods call into the next
// layer, and main drives layer 0 through both a precise and an approx
// instance, so every layer instantiates twice: a program with L layers
// and M methods per layer yields ~2*L*M call-graph instances.
//
//   ./analysis_bench [max_layers]   (default 24; sizes double up to it)
//
//===----------------------------------------------------------------------===//

#include "analysis/callgraph.h"
#include "analysis/constraints.h"
#include "fenerj/fenerj.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace enerj;
using namespace enerj::analysis;

namespace {

/// One synthetic layer: METHODS context methods that mix an @approx
/// field with a precise gain and forward to the same method one layer
/// down. The last layer recurses once so the SCC machinery is on the
/// timed path too.
std::string makeProgram(unsigned Layers, unsigned Methods) {
  std::string Src;
  for (unsigned L = 0; L < Layers; ++L) {
    std::string Cls = "L" + std::to_string(L);
    std::string Next = "L" + std::to_string(L + 1);
    Src += "class " + Cls + " {\n";
    Src += "  @approx int acc;\n";
    Src += "  int gain;\n";
    if (L + 1 < Layers)
      Src += "  @context " + Next + " next;\n";
    Src += "  int setup() {\n";
    Src += "    this.gain := " + std::to_string(L + 3) + ";\n";
    if (L + 1 < Layers) {
      Src += "    this.next := new @context " + Next + "();\n";
      Src += "    this.next.setup();\n";
    }
    Src += "    0;\n  }\n";
    for (unsigned M = 0; M < Methods; ++M) {
      std::string Name = "m" + std::to_string(M);
      Src += "  int " + Name + "(int v) {\n";
      Src += "    this.acc := this.acc + v * this.gain;\n";
      if (L + 1 < Layers)
        Src += "    this.next." + Name + "(v + 1);\n";
      else if (M == 0)
        Src += "    if (v > 0) { this." + Name + "(v - 1); } else { 0; };\n";
      Src += "    endorse(this.acc) % 7;\n  }\n";
    }
    Src += "}\n";
  }
  Src += "{\n  let @precise L0 p = new @precise L0();\n";
  Src += "  let @approx L0 a = new @approx L0();\n";
  Src += "  p.setup(); a.setup();\n  let int total = 0;\n";
  for (unsigned M = 0; M < Methods; ++M) {
    std::string Name = "m" + std::to_string(M);
    Src += "  total = total + p." + Name + "(2) + a." + Name + "(2);\n";
  }
  Src += "  total;\n}\n";
  return Src;
}

double millisSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned MaxLayers = 24;
  if (Argc > 1) {
    long Parsed = std::strtol(Argv[1], nullptr, 10);
    if (Parsed < 1 || Parsed > 512) {
      std::fprintf(stderr, "usage: analysis_bench [max_layers 1..512]\n");
      return 2;
    }
    MaxLayers = static_cast<unsigned>(Parsed);
  }

  std::printf("%8s %6s %10s %8s %8s %10s %10s %10s\n", "layers", "insts",
              "slots", "edges", "build", "constr", "demand", "taint");
  std::printf("%s\n", std::string(78, '-').c_str());

  const unsigned Methods = 4;
  for (unsigned Layers = 3; Layers <= MaxLayers; Layers *= 2) {
    std::string Source = makeProgram(Layers, Methods);
    fenerj::DiagnosticEngine Diags;
    fenerj::ClassTable Table;
    std::optional<fenerj::Program> Prog =
        fenerj::compile(Source, Table, Diags);
    if (!Prog) {
      std::fprintf(stderr, "generated program failed to compile:\n%s",
                   Diags.str().c_str());
      return 1;
    }

    auto T0 = std::chrono::steady_clock::now();
    CallGraph Graph = CallGraph::build(*Prog, Table);
    double BuildMs = millisSince(T0);

    auto T1 = std::chrono::steady_clock::now();
    ConstraintSystem CS = ConstraintSystem::build(*Prog, Table, Graph);
    double ConstrMs = millisSince(T1);

    auto T2 = std::chrono::steady_clock::now();
    CS.solveDemand();
    unsigned Relaxed = 0;
    for (unsigned D = 0; D < CS.decls().size(); ++D)
      if (CS.relaxable(D))
        ++Relaxed;
    double DemandMs = millisSince(T2);

    auto T3 = std::chrono::steady_clock::now();
    ConstraintSystem::TaintState Taint = CS.solveTaint();
    double TaintMs = millisSince(T3);

    // Keep the results alive so nothing is optimized away.
    unsigned RawCount = 0;
    for (unsigned S = 0; S < CS.slots().size(); ++S)
      if (Taint.Raw[S])
        ++RawCount;

    std::printf("%8u %6u %10zu %8zu %7.2fms %8.2fms %8.2fms %8.2fms"
                "   (relaxed %u, raw %u)\n",
                Layers, Graph.instanceCount(), CS.slots().size(),
                Graph.edges().size(), BuildMs, ConstrMs, DemandMs, TaintMs,
                Relaxed, RawCount);
  }
  return 0;
}
