//===- bench/reliability_curve.cpp - SLO success vs approximation level ---===//
//
// The resilience companion to Figures 4 and 5: for each approximation
// level, how often do the nine applications meet a QoS SLO outright, how
// often does the policy have to intervene (retry or degrade), and what
// does recovery cost? The "claimed" energy column prices only the
// accepted run (the paper's optimistic accounting); the "effective"
// column charges every re-executed attempt, which is the energy a
// deployment that enforces the SLO would actually spend. The gap between
// the two columns is the price of reliability at that level.
//
// Usage: reliability_curve [slo] [max-retries] [seeds]
//   defaults: slo 0.10, 1 retry per ladder level, 10 seeds.
//
// Like every harness, the trials fan out over the parallel TrialRunner
// and the numbers are bitwise identical at any thread count.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"
#include "harness/eval.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

using namespace enerj;
using namespace enerj::harness;

int main(int Argc, char **Argv) {
  resilience::ResiliencePolicy Policy;
  Policy.Enabled = true;
  Policy.Slo = Argc > 1 ? std::atof(Argv[1]) : 0.10;
  Policy.MaxRetries = Argc > 2 ? std::atoi(Argv[2]) : 1;
  int Seeds = Argc > 3 ? std::atoi(Argv[3]) : 10;
  if (Policy.Slo <= 0.0 || Policy.Slo > 1.0 || Policy.MaxRetries < 0 ||
      Seeds < 1) {
    std::fprintf(stderr,
                 "usage: reliability_curve [slo (0,1]] [max-retries >= 0] "
                 "[seeds >= 1]\n");
    return 2;
  }

  std::printf("Reliability curve: per-level SLO success and retry-adjusted "
              "energy\n");
  std::printf("SLO %.3f, %d retry(ies) per ladder level, %d seed(s), all "
              "nine apps\n\n",
              Policy.Slo, Policy.MaxRetries, Seeds);
  std::printf("%-11s %9s %9s %9s %9s %9s %11s %11s\n", "level", "trials",
              "ok", "retried", "degraded", "failed", "claimed", "effective");
  bench::printRule(86);

  for (ApproxLevel Level : evalLevels()) {
    EvalOptions Options;
    Options.Levels = {Level};
    Options.Seeds = Seeds;
    Options.Policy = Policy;
    EvalResult Grid = runEval(Options);

    resilience::OutcomeCounts Totals;
    double ClaimedSum = 0.0, EffectiveSum = 0.0;
    for (const EvalCell &Cell : Grid.Cells) {
      Totals.Ok += Cell.Outcomes.Ok;
      Totals.SloViolated += Cell.Outcomes.SloViolated;
      Totals.Aborted += Cell.Outcomes.Aborted;
      Totals.Retried += Cell.Outcomes.Retried;
      Totals.Degraded += Cell.Outcomes.Degraded;
      ClaimedSum += Cell.EnergyFactor.Mean;
      EffectiveSum += Cell.EffectiveEnergy.Mean;
    }
    double Cells = static_cast<double>(Grid.Cells.size());
    std::printf("%-11s %9" PRIu64 " %8.1f%% %8.1f%% %8.1f%% %8.1f%% "
                "%11.3f %11.3f\n",
                approxLevelName(Level), Totals.total(),
                100.0 * Totals.Ok / Totals.total(),
                100.0 * Totals.Retried / Totals.total(),
                100.0 * Totals.Degraded / Totals.total(),
                100.0 * (Totals.SloViolated + Totals.Aborted) /
                    Totals.total(),
                ClaimedSum / Cells, EffectiveSum / Cells);
  }

  std::printf("\n'ok' met the SLO on the first attempt; 'failed' is "
              "sloViolated + aborted after\nevery permitted attempt. "
              "'claimed' prices only each accepted run (the paper's\n"
              "accounting); 'effective' charges every re-executed attempt "
              "as well — the cost\nof actually enforcing the SLO. Both "
              "are normalized to precise execution (1.0).\n");
  return 0;
}
