//===- bench/power_trace.cpp - Survival under intermittent supply ---------===//
//
// The headline numbers for the power-environment subsystem: the full
// nine-app, three-level evaluation grid is run end to end through
// harness::runEval under a brownout and a harvesting supply trace, each
// once without checkpointing and once with a periodic checkpoint
// policy. For every (trace, checkpoint, level) the bench reports the
// survival rate, the loss/checkpoint/re-execution counters, and the
// retry-adjusted effective energy factor (re-execution energy charged
// through PowerStats::overheadRatio). CI gates the committed baseline
// (tests/check_bench_power.py): survival must not slide, and
// checkpointing must keep paying for itself in re-executed ops.
//
// Usage: power_trace [seeds] [output.json]
//
//===----------------------------------------------------------------------===//

#include "fault/config.h"
#include "harness/eval.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

using namespace enerj;
using namespace enerj::harness;

namespace {

struct LevelRow {
  const char *Level = "";
  uint64_t Trials = 0;
  uint64_t Survived = 0;
  uint64_t Losses = 0;
  uint64_t Checkpoints = 0;
  uint64_t ReExecutedOps = 0;
  double EnergyMean = 0.0;
  double EffectiveEnergyMean = 0.0;
};

struct ConfigRun {
  std::string Trace;
  std::string Checkpoint;
  double Seconds = 0.0;
  std::vector<LevelRow> Levels;
};

/// Runs the full grid under (trace preset, checkpoint spec) and folds
/// the cells into one row per level, in evalLevels() order.
ConfigRun runConfig(const std::string &Trace, const std::string &Checkpoint,
                    int Seeds) {
  using Clock = std::chrono::steady_clock;
  EvalOptions Options;
  Options.Seeds = Seeds;
  std::string Error;
  auto Spec = env::PowerTraceSpec::preset(Trace, &Error);
  auto Policy = env::CheckpointPolicy::parse(Checkpoint, &Error);
  if (!Spec || !Policy) {
    std::fprintf(stderr, "power_trace: %s\n", Error.c_str());
    std::exit(1);
  }
  Options.Power.Trace = *Spec;
  Options.Power.Checkpoint = *Policy;
  Options.PowerArmed = true;

  Clock::time_point Start = Clock::now();
  EvalResult Result = runEval(Options);
  ConfigRun Run;
  Run.Trace = Trace;
  Run.Checkpoint = Checkpoint;
  Run.Seconds = std::chrono::duration<double>(Clock::now() - Start).count();

  for (ApproxLevel Level : Result.Levels) {
    LevelRow Row;
    Row.Level = approxLevelName(Level);
    double EnergySum = 0.0, EffectiveSum = 0.0;
    uint64_t Cells = 0;
    for (const EvalCell &Cell : Result.Cells) {
      if (Cell.Level != Level)
        continue;
      Row.Trials += static_cast<uint64_t>(Result.Seeds);
      Row.Survived += Cell.PowerSurvived;
      Row.Losses += Cell.PowerLosses;
      Row.Checkpoints += Cell.PowerCheckpoints;
      Row.ReExecutedOps += Cell.PowerReExecutedOps;
      EnergySum += Cell.EnergyFactor.Mean;
      EffectiveSum += Cell.EffectiveEnergy.Mean;
      ++Cells;
    }
    Row.EnergyMean = Cells ? EnergySum / Cells : 0.0;
    Row.EffectiveEnergyMean = Cells ? EffectiveSum / Cells : 0.0;
    Run.Levels.push_back(Row);
  }
  return Run;
}

void printRun(const ConfigRun &Run) {
  std::printf("trace %-9s checkpoint %-13s (%.2fs)\n", Run.Trace.c_str(),
              Run.Checkpoint.c_str(), Run.Seconds);
  std::printf("  %-10s %9s %8s %8s %12s %8s %8s\n", "level", "survival",
              "losses", "ckpts", "reexecOps", "energy", "effEnergy");
  for (const LevelRow &Row : Run.Levels)
    std::printf("  %-10s %5llu/%-3llu %8llu %8llu %12llu %8.4f %8.4f\n",
                Row.Level,
                static_cast<unsigned long long>(Row.Survived),
                static_cast<unsigned long long>(Row.Trials),
                static_cast<unsigned long long>(Row.Losses),
                static_cast<unsigned long long>(Row.Checkpoints),
                static_cast<unsigned long long>(Row.ReExecutedOps),
                Row.EnergyMean, Row.EffectiveEnergyMean);
  std::printf("\n");
}

void appendRun(std::string &Out, const ConfigRun &Run) {
  char Buffer[256];
  Out += "    {\"trace\": \"" + Run.Trace + "\", \"checkpoint\": \"" +
         Run.Checkpoint + "\",\n     \"levels\": [\n";
  for (size_t I = 0; I < Run.Levels.size(); ++I) {
    const LevelRow &Row = Run.Levels[I];
    std::snprintf(Buffer, sizeof(Buffer),
                  "       {\"level\": \"%s\", \"trials\": %llu, "
                  "\"survived\": %llu, \"losses\": %llu, "
                  "\"checkpoints\": %llu, \"reExecutedOps\": %llu, "
                  "\"energyMean\": %.6f, \"effectiveEnergyMean\": %.6f}%s\n",
                  Row.Level, static_cast<unsigned long long>(Row.Trials),
                  static_cast<unsigned long long>(Row.Survived),
                  static_cast<unsigned long long>(Row.Losses),
                  static_cast<unsigned long long>(Row.Checkpoints),
                  static_cast<unsigned long long>(Row.ReExecutedOps),
                  Row.EnergyMean, Row.EffectiveEnergyMean,
                  I + 1 < Run.Levels.size() ? "," : "");
    Out += Buffer;
  }
  std::snprintf(Buffer, sizeof(Buffer), "     ], \"seconds\": %.4f}",
                Run.Seconds);
  Out += Buffer;
}

} // namespace

int main(int Argc, char **Argv) {
  int Seeds = 10;
  std::string OutPath = "BENCH_power.json";
  if (Argc > 1)
    Seeds = std::max(1, std::atoi(Argv[1]));
  if (Argc > 2)
    OutPath = Argv[2];

  std::printf("Intermittent-supply survival: 9 apps x 3 levels x %d seeds\n\n",
              Seeds);

  const char *Traces[] = {"brownout", "harvest"};
  const char *Checkpoints[] = {"none", "periodic:2000"};
  std::vector<ConfigRun> Runs;
  for (const char *Trace : Traces)
    for (const char *Checkpoint : Checkpoints) {
      Runs.push_back(runConfig(Trace, Checkpoint, Seeds));
      printRun(Runs.back());
    }

  std::string Json = "{\n  \"tool\": \"power_trace\",\n  \"version\": 1,\n";
  Json += "  \"seeds\": " + std::to_string(Seeds) + ",\n  \"configs\": [\n";
  for (size_t I = 0; I < Runs.size(); ++I) {
    appendRun(Json, Runs[I]);
    Json += I + 1 < Runs.size() ? ",\n" : "\n";
  }
  Json += "  ]\n}\n";

  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "power_trace: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  Out << Json;
  Out.close();
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
