//===- bench/exec_grid.cpp - Compiled vs interpreted eval throughput ------===//
//
// The headline number for the compiled execution path: the full
// nine-app, three-level evaluation grid is run end to end through
// harness::runEval twice — once on the classic interpreter path
// (apps::qosUnder per trial) and once with --exec-mode compiled (one
// FEnerJ -> ISA -> optimizer lowering per cell, batched fault
// injection per trial) — and the bench reports trials per second for
// both plus the speedup. CI gates the speedup against the committed
// baseline (tests/check_bench_exec.py): it must stay >= 5x and within
// 2x of the recorded value.
//
// Usage: exec_grid [seeds] [output.json]
//
//===----------------------------------------------------------------------===//

#include "harness/eval.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

using namespace enerj;
using namespace enerj::harness;

namespace {

/// Runs the full default grid in the given mode; returns wall seconds.
double timeGrid(ExecMode Mode, int Seeds, int &TrialsOut) {
  using Clock = std::chrono::steady_clock;
  EvalOptions Options;
  Options.Seeds = Seeds;
  Options.Exec = Mode;
  if (Mode == ExecMode::Compiled)
    Options.KernelDir = std::string(ENERJ_FEJ_DIR) + "/isa";
  Clock::time_point Start = Clock::now();
  EvalResult Result = runEval(Options);
  double Seconds =
      std::chrono::duration<double>(Clock::now() - Start).count();
  TrialsOut = static_cast<int>(Result.Cells.size()) * Seeds;
  return Seconds;
}

} // namespace

int main(int Argc, char **Argv) {
  int Seeds = 10;
  std::string OutPath = "BENCH_exec.json";
  if (Argc > 1)
    Seeds = std::max(1, std::atoi(Argv[1]));
  if (Argc > 2)
    OutPath = Argv[2];

  std::printf("Eval grid throughput: interpreter vs compiled "
              "(9 apps x 3 levels x %d seeds)\n\n",
              Seeds);

  int Trials = 0;
  // Compiled first so its one-time per-cell lowering cost is inside its
  // own measurement, not hidden behind a warm cache.
  double CompiledSeconds = timeGrid(ExecMode::Compiled, Seeds, Trials);
  double InterpSeconds = timeGrid(ExecMode::Interp, Seeds, Trials);
  double InterpRate = Trials / InterpSeconds;
  double CompiledRate = Trials / CompiledSeconds;
  double Speedup = CompiledRate / InterpRate;

  std::printf("%-10s %8s %12s\n", "mode", "seconds", "trials/sec");
  std::printf("%-10s %8.3f %12.0f\n", "interp", InterpSeconds, InterpRate);
  std::printf("%-10s %8.3f %12.0f\n", "compiled", CompiledSeconds,
              CompiledRate);
  std::printf("\nspeedup: %.1fx over %d trials per mode\n", Speedup, Trials);

  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "exec_grid: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  char Buffer[512];
  std::snprintf(Buffer, sizeof(Buffer),
                "{\n"
                "  \"tool\": \"exec_grid\",\n"
                "  \"version\": 1,\n"
                "  \"seeds\": %d,\n"
                "  \"trials\": %d,\n"
                "  \"interpSeconds\": %.4f,\n"
                "  \"compiledSeconds\": %.4f,\n"
                "  \"interpTrialsPerSec\": %.1f,\n"
                "  \"compiledTrialsPerSec\": %.1f,\n"
                "  \"speedup\": %.2f\n"
                "}\n",
                Seeds, Trials, InterpSeconds, CompiledSeconds, InterpRate,
                CompiledRate, Speedup);
  Out << Buffer;
  Out.close();
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
