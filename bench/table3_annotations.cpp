//===- bench/table3_annotations.cpp - Reproduce Table 3 -------------------===//
//
// Prints the per-application table of Section 6 (Table 3): the QoS
// metric, lines of code, the dynamically measured proportion of FP
// arithmetic, declaration counts, the fraction annotated, and the number
// of endorsement sites. "Proportion FP" comes from each app's seed-1
// trial on the parallel runner; the annotation columns are hand-counted
// over this reproduction's sources (see apps/*.cpp).
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"
#include "harness/eval.h"

#include <cstdio>

using namespace enerj;
using namespace enerj::apps;

int main() {
  std::printf("Table 3: applications, QoS metrics, and annotation "
              "density\n\n");
  std::printf("%-14s %-42s %6s %7s %7s %6s %9s\n", "Application",
              "Error metric", "LoC", "FP%", "Decls", "Ann%", "Endorse");
  bench::printRule(98);

  // Measure the FP proportion with the Medium configuration; the
  // dynamic op mix barely depends on the level.
  harness::EvalOptions Options;
  Options.Levels = {ApproxLevel::Medium};
  Options.Seeds = 1;
  harness::EvalResult Grid = harness::runEval(Options);

  for (const harness::EvalCell &Cell : Grid.Cells) {
    AnnotationStats Ann = Cell.App->annotations();
    std::printf("%-14s %-42s %6d %6.1f%% %7d %5.0f%% %9d\n",
                Cell.App->name(), Cell.App->qosMetricName(),
                Ann.LinesOfCode,
                Cell.Seed1.Stats.Ops.fpProportion() * 100, Ann.TotalDecls,
                Ann.annotatedFraction() * 100, Ann.Endorsements);
  }

  std::printf("\nPaper reference (Java apps): annotations touch at most "
              "34%% of declarations;\nendorsements are rare except for "
              "ZXing (247 sites, frequent approximate\nconditions on "
              "pixel values) — the barcode stand-in shows the same "
              "pattern at\nits smaller scale.\n");
  return 0;
}
