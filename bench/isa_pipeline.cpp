//===- bench/isa_pipeline.cpp - Compiled kernels on the ISA machine -------===//
//
// The Section 4 pipeline as an experiment: FEnerJ kernels are compiled
// to the approximation-aware ISA, verified, and executed at every level.
// For each kernel the harness reports the result error against the
// fault-free run and the machine-level energy estimate — the ISA-level
// analogue of Figures 4/5, demonstrating that one binary spans the whole
// accuracy/energy trade-off space.
//
//===----------------------------------------------------------------------===//

#include "analysis/opt/pipeline.h"
#include "energy/model.h"
#include "fenerj/codegen.h"
#include "fenerj/fenerj.h"
#include "isa/assembler.h"
#include "isa/machine.h"
#include "isa/verifier.h"

#include <cmath>
#include <cstdio>
#include <cstring>

using namespace enerj;
using namespace enerj::fenerj;

namespace {

struct Kernel {
  const char *Name;
  const char *Source;
};

const Kernel Kernels[] = {
    {"vec-scale",
     R"({
       let @approx float[] v = new @approx float[96];
       let int i = 0;
       while (i < v.length) { v[i] := cast<@approx float>(i) * 0.25; i = i + 1; };
       let @approx float sum = 0.0;
       i = 0;
       while (i < v.length) { sum = sum + v[i] * 1.5; i = i + 1; };
       endorse(sum);
     })"},
    {"smooth",
     R"({
       let @approx float[] g = new @approx float[64];
       let int i = 0;
       while (i < g.length) { g[i] := cast<@approx float>(i % 9); i = i + 1; };
       let int sweep = 0;
       while (sweep < 4) {
         i = 1;
         while (i < g.length - 1) {
           g[i] := (g[i - 1] + g[i] + g[i + 1]) / 3.0;
           i = i + 1;
         };
         sweep = sweep + 1;
       };
       let @approx float total = 0.0;
       i = 0;
       while (i < g.length) { total = total + g[i]; i = i + 1; };
       endorse(total);
     })"},
    {"int-acc",
     R"({
       let @approx int acc = 0;
       let int i = 0;
       while (i < 500) { acc = acc + i % 17; i = i + 1; };
       let int out = endorse(acc);
       0.0 + cast<float>(out);
     })"},
};

} // namespace

int main(int Argc, char **Argv) {
  bool Optimize = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "-O1") == 0) {
      Optimize = true;
    } else if (std::strcmp(Argv[I], "-O0") == 0) {
      Optimize = false;
    } else {
      std::fprintf(stderr, "usage: isa_pipeline [-O0|-O1]\n");
      return 2;
    }
  }

  std::printf("Section 4 pipeline: FEnerJ kernels compiled to the "
              "approximate ISA, one binary\nper kernel, executed at every "
              "level (result error vs the fault-free run;\nmachine-level "
              "energy estimate)%s\n\n",
              Optimize ? " — optimizer at -O1" : "");
  std::printf("%-11s %-11s %14s %12s %10s %8s\n", "kernel", "level",
              "f1 (last)", "mean err", "energy", "terrs");
  for (int I = 0; I < 72; ++I)
    std::putchar('-');
  std::printf("\n");

  for (const Kernel &K : Kernels) {
    DiagnosticEngine Diags;
    ClassTable Table;
    std::optional<Program> Prog = compile(K.Source, Table, Diags);
    if (!Prog) {
      std::fprintf(stderr, "%s: %s\n", K.Name, Diags.str().c_str());
      return 1;
    }
    CodegenResult Code = compileToIsa(*Prog);
    if (!Code.Ok) {
      std::fprintf(stderr, "%s: %s\n", K.Name, Code.Error.c_str());
      return 1;
    }
    std::vector<std::string> AsmErrors;
    std::optional<enerj::isa::IsaProgram> Binary =
        enerj::isa::assemble(Code.Assembly, AsmErrors);
    if (!Binary) {
      for (const std::string &E : AsmErrors)
        std::fprintf(stderr, "%s: assembler: %s\n", K.Name, E.c_str());
      return 1;
    }
    std::vector<enerj::isa::VerifyError> VerifyErrors =
        enerj::isa::verify(*Binary);
    if (!VerifyErrors.empty()) {
      for (const enerj::isa::VerifyError &E : VerifyErrors)
        std::fprintf(stderr, "%s: verifier: %s\n", K.Name, E.str().c_str());
      return 1;
    }
    if (Optimize) {
      namespace opt = enerj::analysis::opt;
      opt::OptReport Report = opt::optimizeProgram(*Binary);
      if (!Report.Ok) {
        std::fprintf(stderr, "%s: optimizer: %s\n", K.Name,
                     Report.Error.c_str());
        return 1;
      }
    }

    constexpr int Runs = 10;
    double Reference = 0.0;
    for (ApproxLevel Level : {ApproxLevel::None, ApproxLevel::Mild,
                              ApproxLevel::Medium,
                              ApproxLevel::Aggressive}) {
      // Mean relative error over several fault seeds, like Figure 5.
      double ErrorSum = 0.0;
      double LastValue = 0.0;
      uint64_t TimingErrors = 0;
      EnergyReport Energy;
      bool Trapped = false;
      for (int Seed = 1; Seed <= Runs; ++Seed) {
        FaultConfig Config = FaultConfig::preset(Level);
        Config.Seed = static_cast<uint64_t>(Seed) * 7919;
        enerj::isa::Machine M(*Binary, Config);
        enerj::isa::MachineResult Result = M.run(50'000'000);
        if (Result.Trapped) {
          Trapped = true;
          break;
        }
        LastValue = M.fpReg(1);
        if (Level == ApproxLevel::None)
          Reference = LastValue;
        double RelError =
            Reference != 0.0
                ? std::fabs(LastValue - Reference) / std::fabs(Reference)
                : std::fabs(LastValue - Reference);
        if (!std::isfinite(RelError) || RelError > 1.0)
          RelError = 1.0;
        ErrorSum += RelError;
        TimingErrors += M.stats().Ops.TimingErrors;
        Energy = computeEnergy(M.stats(), Config);
      }
      if (Trapped) {
        std::printf("%-11s %-11s trap\n", K.Name, approxLevelName(Level));
        continue;
      }
      std::printf("%-11s %-11s %14.6g %12.2e %10.3f %8.1f\n", K.Name,
                  approxLevelName(Level), LastValue, ErrorSum / Runs,
                  Energy.TotalFactor,
                  static_cast<double>(TimingErrors) / Runs);
    }
  }

  std::printf("\nExpected shape: exact at level None (the `.a` hints are "
              "ignored by a precise\nmicroarchitecture); energy falls and "
              "error grows with aggressiveness, matching\nthe "
              "library-level Figures 4/5.\n");
  return 0;
}
