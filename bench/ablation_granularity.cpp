//===- bench/ablation_granularity.cpp - Line-size sweep (Section 4.1) -----===//
//
// Sweeps the approximate-storage granularity: the paper's evaluation
// assumes 64-byte cache lines and notes that "a finer granularity of
// approximate memory storage would mitigate or eliminate the resulting
// loss of approximation". This harness measures the approximate-DRAM
// fraction and total energy of every application at 16/64/256-byte
// lines (Medium level).
//
//===----------------------------------------------------------------------===//

#include "apps/app.h"
#include "bench_common.h"
#include "energy/model.h"

#include <cstdio>

using namespace enerj;
using namespace enerj::apps;

int main() {
  const uint64_t LineSizes[] = {16, 64, 256};
  std::printf("Section 4.1 granularity sweep: approximate DRAM fraction "
              "and normalized energy\nby cache-line size (Medium "
              "configuration)\n\n");
  std::printf("%-14s | %8s %8s %8s | %8s %8s %8s\n", "", "DRAM%", "DRAM%",
              "DRAM%", "energy", "energy", "energy");
  std::printf("%-14s | %7luB %7luB %7luB | %7luB %7luB %7luB\n",
              "Application", LineSizes[0], LineSizes[1], LineSizes[2],
              LineSizes[0], LineSizes[1], LineSizes[2]);
  bench::printRule(78);

  for (const Application *App : allApplications()) {
    double DramFraction[3], Energy[3];
    for (int Column = 0; Column < 3; ++Column) {
      FaultConfig Config = FaultConfig::preset(ApproxLevel::Medium);
      Config.CacheLineBytes = LineSizes[Column];
      AppRun Run = runApproximate(*App, Config, /*WorkloadSeed=*/1);
      DramFraction[Column] = Run.Stats.Storage.dramApproxFraction() * 100;
      Energy[Column] = computeEnergy(Run.Stats, Config).TotalFactor;
    }
    std::printf("%-14s | %7.1f%% %7.1f%% %7.1f%% | %8.3f %8.3f %8.3f\n",
                App->name(), DramFraction[0], DramFraction[1],
                DramFraction[2], Energy[0], Energy[1], Energy[2]);
  }

  std::printf("\nExpected shape (paper): the impact of the 64-byte "
              "constraint is small because\nmost approximate data sits in "
              "large arrays whose interior lines are already\n"
              "approximate; coarser lines strand more data in the precise "
              "header line.\n");
  return 0;
}
