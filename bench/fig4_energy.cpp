//===- bench/fig4_energy.cpp - Reproduce Figure 4 -------------------------===//
//
// Estimated CPU/memory-system energy per benchmark, normalized to the
// fully precise baseline (bar "B" = 1.0), for the Mild, Medium, and
// Aggressive configurations — Figure 4's bar chart as a table, plus the
// per-level averages the paper quotes (19% / 24% / 26%). One trial per
// (app, level) cell, fanned out over the parallel trial runner.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"
#include "energy/model.h"
#include "harness/eval.h"

#include <cstdio>

using namespace enerj;
using namespace enerj::apps;

int main() {
  std::printf("Figure 4: estimated CPU/memory energy, normalized to the "
              "precise baseline\n\n");
  std::printf("%-14s %10s %10s %10s %10s\n", "Application", "B", "mild",
              "medium", "aggressive");
  bench::printRule(60);

  harness::EvalOptions Options;
  Options.Seeds = 1;
  harness::EvalResult Grid = harness::runEval(Options);

  double SavedSum[3] = {0, 0, 0};
  int AppCount = 0;
  for (const Application *App : Grid.Apps) {
    double Energy[3];
    for (size_t Level = 0; Level < Grid.Levels.size(); ++Level) {
      const harness::EvalCell *Cell = Grid.cell(*App, Grid.Levels[Level]);
      Energy[Level] = Cell->Seed1.Energy.TotalFactor;
      SavedSum[Level] += Cell->Seed1.Energy.saved();
    }
    ++AppCount;
    std::printf("%-14s %10.3f %10.3f %10.3f %10.3f\n", App->name(), 1.0,
                Energy[0], Energy[1], Energy[2]);
  }

  std::printf("\nAverage energy saved: mild %.1f%%, medium %.1f%%, "
              "aggressive %.1f%%\n", SavedSum[0] / AppCount * 100,
              SavedSum[1] / AppCount * 100, SavedSum[2] / AppCount * 100);
  std::printf("(paper: 19%% / 24%% / 26%%; per-app savings between 9%% "
              "and 48%%, growing with\nthe fraction of approximate "
              "FP work and approximate storage)\n");

  // Section 5.4 also gives the mobile power split (memory ~25% of power
  // rather than 45%): CPU savings matter more there. The Medium cells'
  // measured statistics are simply re-priced per setting.
  std::printf("\nMobile power setting (CPU-weighted, Medium level):\n");
  std::printf("%-14s %10s %10s\n", "Application", "server", "mobile");
  bench::printRule(36);
  for (const Application *App : Grid.Apps) {
    const harness::EvalCell *Cell = Grid.cell(*App, ApproxLevel::Medium);
    FaultConfig Config = FaultConfig::preset(ApproxLevel::Medium);
    EnergyReport Server =
        computeEnergy(Cell->Seed1.Stats, Config, PowerSetting::Server);
    EnergyReport Mobile =
        computeEnergy(Cell->Seed1.Stats, Config, PowerSetting::Mobile);
    std::printf("%-14s %10.3f %10.3f\n", App->name(), Server.TotalFactor,
                Mobile.TotalFactor);
  }
  std::printf("\nExpected shape: compute-bound apps (little approximate "
              "DRAM) save more under\nthe mobile split; DRAM-dominated "
              "apps save more under the server split.\n");
  return 0;
}
