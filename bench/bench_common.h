//===- bench/bench_common.h - Shared table formatting -----------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-width text-table formatting shared by the figure/table
/// harnesses. All measurement lives in src/harness (TrialRunner /
/// runEval) — there is exactly one measurement code path.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_BENCH_BENCH_COMMON_H
#define ENERJ_BENCH_BENCH_COMMON_H

#include <cstdio>

namespace enerj {
namespace bench {

/// Prints a rule line sized for \p Width columns.
inline void printRule(int Width) {
  for (int I = 0; I < Width; ++I)
    std::putchar('-');
  std::putchar('\n');
}

} // namespace bench
} // namespace enerj

#endif // ENERJ_BENCH_BENCH_COMMON_H
