//===- bench/bench_common.h - Shared harness helpers ------------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small shared helpers for the table/figure harnesses: fixed-width text
/// tables and the standard measurement loops (mean QoS over seeds,
/// stats-then-price energy measurement).
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_BENCH_BENCH_COMMON_H
#define ENERJ_BENCH_BENCH_COMMON_H

#include "apps/app.h"
#include "energy/model.h"

#include <cstdio>
#include <string>
#include <vector>

namespace enerj {
namespace bench {

/// The three approximation levels of the evaluation, in Table 2 order.
inline const std::vector<ApproxLevel> EvalLevels = {
    ApproxLevel::Mild, ApproxLevel::Medium, ApproxLevel::Aggressive};

/// Prints a rule line sized for \p Width columns.
inline void printRule(int Width) {
  for (int I = 0; I < Width; ++I)
    std::putchar('-');
  std::putchar('\n');
}

/// Mean QoS error of \p App under \p Config over workload seeds
/// [1, Runs]; matches the paper's "mean error over 20 runs".
inline double meanQos(const apps::Application &App, const FaultConfig &Config,
                      int Runs) {
  double Sum = 0.0;
  for (int Seed = 1; Seed <= Runs; ++Seed)
    Sum += apps::qosUnder(App, Config, static_cast<uint64_t>(Seed));
  return Sum / Runs;
}

/// Runs \p App once under \p Config and prices the measured statistics
/// with the same config (the Figure 4 pipeline).
inline EnergyReport measureEnergy(const apps::Application &App,
                                  const FaultConfig &Config,
                                  uint64_t Seed = 1) {
  apps::AppRun Run = apps::runApproximate(App, Config, Seed);
  return computeEnergy(Run.Stats, Config);
}

} // namespace bench
} // namespace enerj

#endif // ENERJ_BENCH_BENCH_COMMON_H
