# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/bits_test[1]_include.cmake")
include("/root/repo/build/tests/fault_config_test[1]_include.cmake")
include("/root/repo/build/tests/fault_models_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/memory_test[1]_include.cmake")
include("/root/repo/build/tests/energy_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/approx_test[1]_include.cmake")
include("/root/repo/build/tests/array_test[1]_include.cmake")
include("/root/repo/build/tests/approximable_test[1]_include.cmake")
include("/root/repo/build/tests/static_rules_test[1]_include.cmake")
include("/root/repo/build/tests/qos_test[1]_include.cmake")
include("/root/repo/build/tests/fenerj_lexer_test[1]_include.cmake")
include("/root/repo/build/tests/fenerj_parser_test[1]_include.cmake")
include("/root/repo/build/tests/fenerj_types_test[1]_include.cmake")
include("/root/repo/build/tests/fenerj_typecheck_test[1]_include.cmake")
include("/root/repo/build/tests/fenerj_interp_test[1]_include.cmake")
include("/root/repo/build/tests/fenerj_property_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/fenerj_printer_test[1]_include.cmake")
include("/root/repo/build/tests/fenerj_bidir_test[1]_include.cmake")
include("/root/repo/build/tests/object_test[1]_include.cmake")
include("/root/repo/build/tests/fenerj_corpus_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/fenerj_codegen_test[1]_include.cmake")
include("/root/repo/build/tests/torture_test[1]_include.cmake")
