# Empty compiler generated dependencies file for static_rules_test.
# This may be replaced when dependencies are built.
