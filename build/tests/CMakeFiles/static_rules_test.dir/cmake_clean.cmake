file(REMOVE_RECURSE
  "CMakeFiles/static_rules_test.dir/static_rules_test.cpp.o"
  "CMakeFiles/static_rules_test.dir/static_rules_test.cpp.o.d"
  "static_rules_test"
  "static_rules_test.pdb"
  "static_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
