# Empty compiler generated dependencies file for torture_test.
# This may be replaced when dependencies are built.
