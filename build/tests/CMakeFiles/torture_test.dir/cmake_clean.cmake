file(REMOVE_RECURSE
  "CMakeFiles/torture_test.dir/torture_test.cpp.o"
  "CMakeFiles/torture_test.dir/torture_test.cpp.o.d"
  "torture_test"
  "torture_test.pdb"
  "torture_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
