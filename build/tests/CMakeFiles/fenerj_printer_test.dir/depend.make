# Empty dependencies file for fenerj_printer_test.
# This may be replaced when dependencies are built.
