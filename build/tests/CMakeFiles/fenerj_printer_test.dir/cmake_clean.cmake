file(REMOVE_RECURSE
  "CMakeFiles/fenerj_printer_test.dir/fenerj_printer_test.cpp.o"
  "CMakeFiles/fenerj_printer_test.dir/fenerj_printer_test.cpp.o.d"
  "fenerj_printer_test"
  "fenerj_printer_test.pdb"
  "fenerj_printer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fenerj_printer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
