# Empty compiler generated dependencies file for fenerj_property_test.
# This may be replaced when dependencies are built.
