file(REMOVE_RECURSE
  "CMakeFiles/fenerj_property_test.dir/fenerj_property_test.cpp.o"
  "CMakeFiles/fenerj_property_test.dir/fenerj_property_test.cpp.o.d"
  "fenerj_property_test"
  "fenerj_property_test.pdb"
  "fenerj_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fenerj_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
