# Empty compiler generated dependencies file for fenerj_typecheck_test.
# This may be replaced when dependencies are built.
