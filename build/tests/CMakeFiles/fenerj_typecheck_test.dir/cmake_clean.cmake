file(REMOVE_RECURSE
  "CMakeFiles/fenerj_typecheck_test.dir/fenerj_typecheck_test.cpp.o"
  "CMakeFiles/fenerj_typecheck_test.dir/fenerj_typecheck_test.cpp.o.d"
  "fenerj_typecheck_test"
  "fenerj_typecheck_test.pdb"
  "fenerj_typecheck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fenerj_typecheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
