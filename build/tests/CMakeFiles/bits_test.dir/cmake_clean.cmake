file(REMOVE_RECURSE
  "CMakeFiles/bits_test.dir/bits_test.cpp.o"
  "CMakeFiles/bits_test.dir/bits_test.cpp.o.d"
  "bits_test"
  "bits_test.pdb"
  "bits_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
