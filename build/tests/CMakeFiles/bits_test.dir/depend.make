# Empty dependencies file for bits_test.
# This may be replaced when dependencies are built.
