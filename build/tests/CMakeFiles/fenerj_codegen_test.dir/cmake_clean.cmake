file(REMOVE_RECURSE
  "CMakeFiles/fenerj_codegen_test.dir/fenerj_codegen_test.cpp.o"
  "CMakeFiles/fenerj_codegen_test.dir/fenerj_codegen_test.cpp.o.d"
  "fenerj_codegen_test"
  "fenerj_codegen_test.pdb"
  "fenerj_codegen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fenerj_codegen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
