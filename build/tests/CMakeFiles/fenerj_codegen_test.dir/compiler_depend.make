# Empty compiler generated dependencies file for fenerj_codegen_test.
# This may be replaced when dependencies are built.
