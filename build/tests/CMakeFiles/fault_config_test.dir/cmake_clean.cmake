file(REMOVE_RECURSE
  "CMakeFiles/fault_config_test.dir/fault_config_test.cpp.o"
  "CMakeFiles/fault_config_test.dir/fault_config_test.cpp.o.d"
  "fault_config_test"
  "fault_config_test.pdb"
  "fault_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
