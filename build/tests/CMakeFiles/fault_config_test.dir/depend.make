# Empty dependencies file for fault_config_test.
# This may be replaced when dependencies are built.
