# Empty compiler generated dependencies file for fault_models_test.
# This may be replaced when dependencies are built.
