file(REMOVE_RECURSE
  "CMakeFiles/fault_models_test.dir/fault_models_test.cpp.o"
  "CMakeFiles/fault_models_test.dir/fault_models_test.cpp.o.d"
  "fault_models_test"
  "fault_models_test.pdb"
  "fault_models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
