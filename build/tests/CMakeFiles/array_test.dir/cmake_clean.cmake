file(REMOVE_RECURSE
  "CMakeFiles/array_test.dir/array_test.cpp.o"
  "CMakeFiles/array_test.dir/array_test.cpp.o.d"
  "array_test"
  "array_test.pdb"
  "array_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
