file(REMOVE_RECURSE
  "CMakeFiles/fenerj_types_test.dir/fenerj_types_test.cpp.o"
  "CMakeFiles/fenerj_types_test.dir/fenerj_types_test.cpp.o.d"
  "fenerj_types_test"
  "fenerj_types_test.pdb"
  "fenerj_types_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fenerj_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
