# Empty compiler generated dependencies file for fenerj_types_test.
# This may be replaced when dependencies are built.
