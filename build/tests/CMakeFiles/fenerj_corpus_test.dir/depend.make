# Empty dependencies file for fenerj_corpus_test.
# This may be replaced when dependencies are built.
