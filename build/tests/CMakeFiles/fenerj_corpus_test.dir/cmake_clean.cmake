file(REMOVE_RECURSE
  "CMakeFiles/fenerj_corpus_test.dir/fenerj_corpus_test.cpp.o"
  "CMakeFiles/fenerj_corpus_test.dir/fenerj_corpus_test.cpp.o.d"
  "fenerj_corpus_test"
  "fenerj_corpus_test.pdb"
  "fenerj_corpus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fenerj_corpus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
