file(REMOVE_RECURSE
  "CMakeFiles/fenerj_lexer_test.dir/fenerj_lexer_test.cpp.o"
  "CMakeFiles/fenerj_lexer_test.dir/fenerj_lexer_test.cpp.o.d"
  "fenerj_lexer_test"
  "fenerj_lexer_test.pdb"
  "fenerj_lexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fenerj_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
