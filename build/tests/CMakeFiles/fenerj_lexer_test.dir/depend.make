# Empty dependencies file for fenerj_lexer_test.
# This may be replaced when dependencies are built.
