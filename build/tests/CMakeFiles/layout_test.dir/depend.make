# Empty dependencies file for layout_test.
# This may be replaced when dependencies are built.
