file(REMOVE_RECURSE
  "CMakeFiles/fenerj_parser_test.dir/fenerj_parser_test.cpp.o"
  "CMakeFiles/fenerj_parser_test.dir/fenerj_parser_test.cpp.o.d"
  "fenerj_parser_test"
  "fenerj_parser_test.pdb"
  "fenerj_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fenerj_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
