# Empty dependencies file for fenerj_parser_test.
# This may be replaced when dependencies are built.
