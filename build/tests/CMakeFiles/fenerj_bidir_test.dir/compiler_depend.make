# Empty compiler generated dependencies file for fenerj_bidir_test.
# This may be replaced when dependencies are built.
