file(REMOVE_RECURSE
  "CMakeFiles/fenerj_bidir_test.dir/fenerj_bidir_test.cpp.o"
  "CMakeFiles/fenerj_bidir_test.dir/fenerj_bidir_test.cpp.o.d"
  "fenerj_bidir_test"
  "fenerj_bidir_test.pdb"
  "fenerj_bidir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fenerj_bidir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
