# Empty dependencies file for qos_test.
# This may be replaced when dependencies are built.
