file(REMOVE_RECURSE
  "CMakeFiles/qos_test.dir/qos_test.cpp.o"
  "CMakeFiles/qos_test.dir/qos_test.cpp.o.d"
  "qos_test"
  "qos_test.pdb"
  "qos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
