# Empty dependencies file for approximable_test.
# This may be replaced when dependencies are built.
