
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/approximable_test.cpp" "tests/CMakeFiles/approximable_test.dir/approximable_test.cpp.o" "gcc" "tests/CMakeFiles/approximable_test.dir/approximable_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/enerj_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/enerj_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/enerj_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/enerj_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
