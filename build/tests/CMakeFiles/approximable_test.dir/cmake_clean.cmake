file(REMOVE_RECURSE
  "CMakeFiles/approximable_test.dir/approximable_test.cpp.o"
  "CMakeFiles/approximable_test.dir/approximable_test.cpp.o.d"
  "approximable_test"
  "approximable_test.pdb"
  "approximable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approximable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
