# Empty compiler generated dependencies file for fenerj_interp_test.
# This may be replaced when dependencies are built.
