file(REMOVE_RECURSE
  "CMakeFiles/fenerj_interp_test.dir/fenerj_interp_test.cpp.o"
  "CMakeFiles/fenerj_interp_test.dir/fenerj_interp_test.cpp.o.d"
  "fenerj_interp_test"
  "fenerj_interp_test.pdb"
  "fenerj_interp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fenerj_interp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
