file(REMOVE_RECURSE
  "CMakeFiles/enerj_runtime.dir/simulator.cpp.o"
  "CMakeFiles/enerj_runtime.dir/simulator.cpp.o.d"
  "libenerj_runtime.a"
  "libenerj_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enerj_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
