# Empty compiler generated dependencies file for enerj_runtime.
# This may be replaced when dependencies are built.
