file(REMOVE_RECURSE
  "libenerj_runtime.a"
)
