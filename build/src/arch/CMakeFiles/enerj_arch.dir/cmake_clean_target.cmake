file(REMOVE_RECURSE
  "libenerj_arch.a"
)
