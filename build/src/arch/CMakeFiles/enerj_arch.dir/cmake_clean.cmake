file(REMOVE_RECURSE
  "CMakeFiles/enerj_arch.dir/layout.cpp.o"
  "CMakeFiles/enerj_arch.dir/layout.cpp.o.d"
  "CMakeFiles/enerj_arch.dir/memory.cpp.o"
  "CMakeFiles/enerj_arch.dir/memory.cpp.o.d"
  "libenerj_arch.a"
  "libenerj_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enerj_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
