# Empty dependencies file for enerj_arch.
# This may be replaced when dependencies are built.
