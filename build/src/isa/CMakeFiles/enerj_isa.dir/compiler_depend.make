# Empty compiler generated dependencies file for enerj_isa.
# This may be replaced when dependencies are built.
