file(REMOVE_RECURSE
  "CMakeFiles/enerj_isa.dir/assembler.cpp.o"
  "CMakeFiles/enerj_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/enerj_isa.dir/machine.cpp.o"
  "CMakeFiles/enerj_isa.dir/machine.cpp.o.d"
  "CMakeFiles/enerj_isa.dir/verifier.cpp.o"
  "CMakeFiles/enerj_isa.dir/verifier.cpp.o.d"
  "libenerj_isa.a"
  "libenerj_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enerj_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
