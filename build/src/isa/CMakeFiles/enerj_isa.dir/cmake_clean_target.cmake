file(REMOVE_RECURSE
  "libenerj_isa.a"
)
