file(REMOVE_RECURSE
  "CMakeFiles/enerj_qos.dir/metrics.cpp.o"
  "CMakeFiles/enerj_qos.dir/metrics.cpp.o.d"
  "libenerj_qos.a"
  "libenerj_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enerj_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
