file(REMOVE_RECURSE
  "libenerj_qos.a"
)
