# Empty dependencies file for enerj_qos.
# This may be replaced when dependencies are built.
