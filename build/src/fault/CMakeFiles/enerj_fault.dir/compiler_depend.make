# Empty compiler generated dependencies file for enerj_fault.
# This may be replaced when dependencies are built.
