
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/config.cpp" "src/fault/CMakeFiles/enerj_fault.dir/config.cpp.o" "gcc" "src/fault/CMakeFiles/enerj_fault.dir/config.cpp.o.d"
  "/root/repo/src/fault/models.cpp" "src/fault/CMakeFiles/enerj_fault.dir/models.cpp.o" "gcc" "src/fault/CMakeFiles/enerj_fault.dir/models.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/enerj_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
