file(REMOVE_RECURSE
  "CMakeFiles/enerj_fault.dir/config.cpp.o"
  "CMakeFiles/enerj_fault.dir/config.cpp.o.d"
  "CMakeFiles/enerj_fault.dir/models.cpp.o"
  "CMakeFiles/enerj_fault.dir/models.cpp.o.d"
  "libenerj_fault.a"
  "libenerj_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enerj_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
