file(REMOVE_RECURSE
  "libenerj_fault.a"
)
