# Empty dependencies file for enerj_apps.
# This may be replaced when dependencies are built.
