
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/barcode.cpp" "src/apps/CMakeFiles/enerj_apps.dir/barcode.cpp.o" "gcc" "src/apps/CMakeFiles/enerj_apps.dir/barcode.cpp.o.d"
  "/root/repo/src/apps/fft.cpp" "src/apps/CMakeFiles/enerj_apps.dir/fft.cpp.o" "gcc" "src/apps/CMakeFiles/enerj_apps.dir/fft.cpp.o.d"
  "/root/repo/src/apps/floodfill.cpp" "src/apps/CMakeFiles/enerj_apps.dir/floodfill.cpp.o" "gcc" "src/apps/CMakeFiles/enerj_apps.dir/floodfill.cpp.o.d"
  "/root/repo/src/apps/lu.cpp" "src/apps/CMakeFiles/enerj_apps.dir/lu.cpp.o" "gcc" "src/apps/CMakeFiles/enerj_apps.dir/lu.cpp.o.d"
  "/root/repo/src/apps/montecarlo.cpp" "src/apps/CMakeFiles/enerj_apps.dir/montecarlo.cpp.o" "gcc" "src/apps/CMakeFiles/enerj_apps.dir/montecarlo.cpp.o.d"
  "/root/repo/src/apps/raytracer.cpp" "src/apps/CMakeFiles/enerj_apps.dir/raytracer.cpp.o" "gcc" "src/apps/CMakeFiles/enerj_apps.dir/raytracer.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/apps/CMakeFiles/enerj_apps.dir/registry.cpp.o" "gcc" "src/apps/CMakeFiles/enerj_apps.dir/registry.cpp.o.d"
  "/root/repo/src/apps/sor.cpp" "src/apps/CMakeFiles/enerj_apps.dir/sor.cpp.o" "gcc" "src/apps/CMakeFiles/enerj_apps.dir/sor.cpp.o.d"
  "/root/repo/src/apps/sparsematmult.cpp" "src/apps/CMakeFiles/enerj_apps.dir/sparsematmult.cpp.o" "gcc" "src/apps/CMakeFiles/enerj_apps.dir/sparsematmult.cpp.o.d"
  "/root/repo/src/apps/trikernel.cpp" "src/apps/CMakeFiles/enerj_apps.dir/trikernel.cpp.o" "gcc" "src/apps/CMakeFiles/enerj_apps.dir/trikernel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/enerj_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/enerj_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/qos/CMakeFiles/enerj_qos.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/enerj_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/enerj_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/enerj_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
