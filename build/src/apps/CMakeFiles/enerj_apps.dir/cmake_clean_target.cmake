file(REMOVE_RECURSE
  "libenerj_apps.a"
)
