file(REMOVE_RECURSE
  "CMakeFiles/enerj_apps.dir/barcode.cpp.o"
  "CMakeFiles/enerj_apps.dir/barcode.cpp.o.d"
  "CMakeFiles/enerj_apps.dir/fft.cpp.o"
  "CMakeFiles/enerj_apps.dir/fft.cpp.o.d"
  "CMakeFiles/enerj_apps.dir/floodfill.cpp.o"
  "CMakeFiles/enerj_apps.dir/floodfill.cpp.o.d"
  "CMakeFiles/enerj_apps.dir/lu.cpp.o"
  "CMakeFiles/enerj_apps.dir/lu.cpp.o.d"
  "CMakeFiles/enerj_apps.dir/montecarlo.cpp.o"
  "CMakeFiles/enerj_apps.dir/montecarlo.cpp.o.d"
  "CMakeFiles/enerj_apps.dir/raytracer.cpp.o"
  "CMakeFiles/enerj_apps.dir/raytracer.cpp.o.d"
  "CMakeFiles/enerj_apps.dir/registry.cpp.o"
  "CMakeFiles/enerj_apps.dir/registry.cpp.o.d"
  "CMakeFiles/enerj_apps.dir/sor.cpp.o"
  "CMakeFiles/enerj_apps.dir/sor.cpp.o.d"
  "CMakeFiles/enerj_apps.dir/sparsematmult.cpp.o"
  "CMakeFiles/enerj_apps.dir/sparsematmult.cpp.o.d"
  "CMakeFiles/enerj_apps.dir/trikernel.cpp.o"
  "CMakeFiles/enerj_apps.dir/trikernel.cpp.o.d"
  "libenerj_apps.a"
  "libenerj_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enerj_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
