file(REMOVE_RECURSE
  "libenerj_energy.a"
)
