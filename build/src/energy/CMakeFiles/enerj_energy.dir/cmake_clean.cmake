file(REMOVE_RECURSE
  "CMakeFiles/enerj_energy.dir/model.cpp.o"
  "CMakeFiles/enerj_energy.dir/model.cpp.o.d"
  "libenerj_energy.a"
  "libenerj_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enerj_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
