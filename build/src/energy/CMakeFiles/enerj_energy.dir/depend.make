# Empty dependencies file for enerj_energy.
# This may be replaced when dependencies are built.
