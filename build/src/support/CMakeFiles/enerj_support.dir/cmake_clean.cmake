file(REMOVE_RECURSE
  "CMakeFiles/enerj_support.dir/rng.cpp.o"
  "CMakeFiles/enerj_support.dir/rng.cpp.o.d"
  "libenerj_support.a"
  "libenerj_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enerj_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
