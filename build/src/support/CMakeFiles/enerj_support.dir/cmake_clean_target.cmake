file(REMOVE_RECURSE
  "libenerj_support.a"
)
