# Empty compiler generated dependencies file for enerj_support.
# This may be replaced when dependencies are built.
