# Empty compiler generated dependencies file for fenerj.
# This may be replaced when dependencies are built.
