file(REMOVE_RECURSE
  "libfenerj.a"
)
