file(REMOVE_RECURSE
  "CMakeFiles/fenerj.dir/codegen.cpp.o"
  "CMakeFiles/fenerj.dir/codegen.cpp.o.d"
  "CMakeFiles/fenerj.dir/diag.cpp.o"
  "CMakeFiles/fenerj.dir/diag.cpp.o.d"
  "CMakeFiles/fenerj.dir/generator.cpp.o"
  "CMakeFiles/fenerj.dir/generator.cpp.o.d"
  "CMakeFiles/fenerj.dir/interp.cpp.o"
  "CMakeFiles/fenerj.dir/interp.cpp.o.d"
  "CMakeFiles/fenerj.dir/lexer.cpp.o"
  "CMakeFiles/fenerj.dir/lexer.cpp.o.d"
  "CMakeFiles/fenerj.dir/parser.cpp.o"
  "CMakeFiles/fenerj.dir/parser.cpp.o.d"
  "CMakeFiles/fenerj.dir/printer.cpp.o"
  "CMakeFiles/fenerj.dir/printer.cpp.o.d"
  "CMakeFiles/fenerj.dir/program.cpp.o"
  "CMakeFiles/fenerj.dir/program.cpp.o.d"
  "CMakeFiles/fenerj.dir/typecheck.cpp.o"
  "CMakeFiles/fenerj.dir/typecheck.cpp.o.d"
  "CMakeFiles/fenerj.dir/types.cpp.o"
  "CMakeFiles/fenerj.dir/types.cpp.o.d"
  "libfenerj.a"
  "libfenerj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fenerj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
