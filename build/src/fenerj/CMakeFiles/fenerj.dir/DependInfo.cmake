
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fenerj/codegen.cpp" "src/fenerj/CMakeFiles/fenerj.dir/codegen.cpp.o" "gcc" "src/fenerj/CMakeFiles/fenerj.dir/codegen.cpp.o.d"
  "/root/repo/src/fenerj/diag.cpp" "src/fenerj/CMakeFiles/fenerj.dir/diag.cpp.o" "gcc" "src/fenerj/CMakeFiles/fenerj.dir/diag.cpp.o.d"
  "/root/repo/src/fenerj/generator.cpp" "src/fenerj/CMakeFiles/fenerj.dir/generator.cpp.o" "gcc" "src/fenerj/CMakeFiles/fenerj.dir/generator.cpp.o.d"
  "/root/repo/src/fenerj/interp.cpp" "src/fenerj/CMakeFiles/fenerj.dir/interp.cpp.o" "gcc" "src/fenerj/CMakeFiles/fenerj.dir/interp.cpp.o.d"
  "/root/repo/src/fenerj/lexer.cpp" "src/fenerj/CMakeFiles/fenerj.dir/lexer.cpp.o" "gcc" "src/fenerj/CMakeFiles/fenerj.dir/lexer.cpp.o.d"
  "/root/repo/src/fenerj/parser.cpp" "src/fenerj/CMakeFiles/fenerj.dir/parser.cpp.o" "gcc" "src/fenerj/CMakeFiles/fenerj.dir/parser.cpp.o.d"
  "/root/repo/src/fenerj/printer.cpp" "src/fenerj/CMakeFiles/fenerj.dir/printer.cpp.o" "gcc" "src/fenerj/CMakeFiles/fenerj.dir/printer.cpp.o.d"
  "/root/repo/src/fenerj/program.cpp" "src/fenerj/CMakeFiles/fenerj.dir/program.cpp.o" "gcc" "src/fenerj/CMakeFiles/fenerj.dir/program.cpp.o.d"
  "/root/repo/src/fenerj/typecheck.cpp" "src/fenerj/CMakeFiles/fenerj.dir/typecheck.cpp.o" "gcc" "src/fenerj/CMakeFiles/fenerj.dir/typecheck.cpp.o.d"
  "/root/repo/src/fenerj/types.cpp" "src/fenerj/CMakeFiles/fenerj.dir/types.cpp.o" "gcc" "src/fenerj/CMakeFiles/fenerj.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/enerj_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/enerj_support.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/enerj_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/enerj_fault.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
