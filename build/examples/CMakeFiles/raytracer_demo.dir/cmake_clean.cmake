file(REMOVE_RECURSE
  "CMakeFiles/raytracer_demo.dir/raytracer_demo.cpp.o"
  "CMakeFiles/raytracer_demo.dir/raytracer_demo.cpp.o.d"
  "raytracer_demo"
  "raytracer_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raytracer_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
