# Empty compiler generated dependencies file for raytracer_demo.
# This may be replaced when dependencies are built.
