# Empty compiler generated dependencies file for fenerj_tool.
# This may be replaced when dependencies are built.
