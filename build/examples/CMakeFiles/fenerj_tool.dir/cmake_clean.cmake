file(REMOVE_RECURSE
  "CMakeFiles/fenerj_tool.dir/fenerj_tool.cpp.o"
  "CMakeFiles/fenerj_tool.dir/fenerj_tool.cpp.o.d"
  "fenerj_tool"
  "fenerj_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fenerj_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
