# Empty dependencies file for isa_demo.
# This may be replaced when dependencies are built.
