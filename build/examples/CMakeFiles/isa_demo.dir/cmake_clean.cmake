file(REMOVE_RECURSE
  "CMakeFiles/isa_demo.dir/isa_demo.cpp.o"
  "CMakeFiles/isa_demo.dir/isa_demo.cpp.o.d"
  "isa_demo"
  "isa_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
