file(REMOVE_RECURSE
  "CMakeFiles/benchmark_cli.dir/benchmark_cli.cpp.o"
  "CMakeFiles/benchmark_cli.dir/benchmark_cli.cpp.o.d"
  "benchmark_cli"
  "benchmark_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
