# Empty dependencies file for benchmark_cli.
# This may be replaced when dependencies are built.
