file(REMOVE_RECURSE
  "CMakeFiles/image_pipeline.dir/image_pipeline.cpp.o"
  "CMakeFiles/image_pipeline.dir/image_pipeline.cpp.o.d"
  "image_pipeline"
  "image_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
