# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_image_pipeline "/root/repo/build/examples/image_pipeline")
set_tests_properties(example_image_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fenerj_tool_demo "/root/repo/build/examples/fenerj_tool" "demo")
set_tests_properties(example_fenerj_tool_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_raytracer_demo "/root/repo/build/examples/raytracer_demo")
set_tests_properties(example_raytracer_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_isa_demo "/root/repo/build/examples/isa_demo")
set_tests_properties(example_isa_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_benchmark_cli "/root/repo/build/examples/benchmark_cli" "list")
set_tests_properties(example_benchmark_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_benchmark_cli_run "/root/repo/build/examples/benchmark_cli" "run" "montecarlo" "--level" "mild" "--seeds" "2")
set_tests_properties(example_benchmark_cli_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(fej_intpair "/root/repo/build/examples/fenerj_tool" "run" "/root/repo/examples/fej/intpair.fej")
set_tests_properties(fej_intpair PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(fej_floatset "/root/repo/build/examples/fenerj_tool" "run" "/root/repo/examples/fej/floatset.fej")
set_tests_properties(fej_floatset PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(fej_intpair_fuzz "/root/repo/build/examples/fenerj_tool" "fuzz" "/root/repo/examples/fej/intpair.fej" "5")
set_tests_properties(fej_intpair_fuzz PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;33;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(fej_blur_exec "/root/repo/build/examples/fenerj_tool" "exec" "/root/repo/examples/fej/blur.fej")
set_tests_properties(fej_blur_exec PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;35;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(fej_axpy_exec "/root/repo/build/examples/fenerj_tool" "exec" "/root/repo/examples/fej/axpy.fej")
set_tests_properties(fej_axpy_exec PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;37;add_test;/root/repo/examples/CMakeLists.txt;0;")
