# Empty compiler generated dependencies file for ablation_strategies.
# This may be replaced when dependencies are built.
