file(REMOVE_RECURSE
  "CMakeFiles/ablation_strategies.dir/ablation_strategies.cpp.o"
  "CMakeFiles/ablation_strategies.dir/ablation_strategies.cpp.o.d"
  "ablation_strategies"
  "ablation_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
