file(REMOVE_RECURSE
  "CMakeFiles/table3_annotations.dir/table3_annotations.cpp.o"
  "CMakeFiles/table3_annotations.dir/table3_annotations.cpp.o.d"
  "table3_annotations"
  "table3_annotations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_annotations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
