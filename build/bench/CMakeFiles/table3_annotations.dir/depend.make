# Empty dependencies file for table3_annotations.
# This may be replaced when dependencies are built.
