file(REMOVE_RECURSE
  "CMakeFiles/ablation_granularity.dir/ablation_granularity.cpp.o"
  "CMakeFiles/ablation_granularity.dir/ablation_granularity.cpp.o.d"
  "ablation_granularity"
  "ablation_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
