file(REMOVE_RECURSE
  "CMakeFiles/table2_strategies.dir/table2_strategies.cpp.o"
  "CMakeFiles/table2_strategies.dir/table2_strategies.cpp.o.d"
  "table2_strategies"
  "table2_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
