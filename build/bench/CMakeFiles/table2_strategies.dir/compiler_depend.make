# Empty compiler generated dependencies file for table2_strategies.
# This may be replaced when dependencies are built.
