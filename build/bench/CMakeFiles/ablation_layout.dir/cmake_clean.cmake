file(REMOVE_RECURSE
  "CMakeFiles/ablation_layout.dir/ablation_layout.cpp.o"
  "CMakeFiles/ablation_layout.dir/ablation_layout.cpp.o.d"
  "ablation_layout"
  "ablation_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
