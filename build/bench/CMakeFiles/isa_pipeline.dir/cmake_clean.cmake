file(REMOVE_RECURSE
  "CMakeFiles/isa_pipeline.dir/isa_pipeline.cpp.o"
  "CMakeFiles/isa_pipeline.dir/isa_pipeline.cpp.o.d"
  "isa_pipeline"
  "isa_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
