# Empty compiler generated dependencies file for isa_pipeline.
# This may be replaced when dependencies are built.
