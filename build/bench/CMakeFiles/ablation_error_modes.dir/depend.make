# Empty dependencies file for ablation_error_modes.
# This may be replaced when dependencies are built.
