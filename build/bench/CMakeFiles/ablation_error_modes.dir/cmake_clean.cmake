file(REMOVE_RECURSE
  "CMakeFiles/ablation_error_modes.dir/ablation_error_modes.cpp.o"
  "CMakeFiles/ablation_error_modes.dir/ablation_error_modes.cpp.o.d"
  "ablation_error_modes"
  "ablation_error_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_error_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
