# Empty dependencies file for fig5_qos.
# This may be replaced when dependencies are built.
