file(REMOVE_RECURSE
  "CMakeFiles/fig5_qos.dir/fig5_qos.cpp.o"
  "CMakeFiles/fig5_qos.dir/fig5_qos.cpp.o.d"
  "fig5_qos"
  "fig5_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
