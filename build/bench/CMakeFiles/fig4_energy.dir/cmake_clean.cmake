file(REMOVE_RECURSE
  "CMakeFiles/fig4_energy.dir/fig4_energy.cpp.o"
  "CMakeFiles/fig4_energy.dir/fig4_energy.cpp.o.d"
  "fig4_energy"
  "fig4_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
