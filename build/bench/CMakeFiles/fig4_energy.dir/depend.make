# Empty dependencies file for fig4_energy.
# This may be replaced when dependencies are built.
