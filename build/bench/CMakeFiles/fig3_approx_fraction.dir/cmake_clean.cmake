file(REMOVE_RECURSE
  "CMakeFiles/fig3_approx_fraction.dir/fig3_approx_fraction.cpp.o"
  "CMakeFiles/fig3_approx_fraction.dir/fig3_approx_fraction.cpp.o.d"
  "fig3_approx_fraction"
  "fig3_approx_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_approx_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
