# Empty compiler generated dependencies file for fig3_approx_fraction.
# This may be replaced when dependencies are built.
