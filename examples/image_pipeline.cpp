//===- examples/image_pipeline.cpp - Resilient phase + precise checksum ---===//
//
// The paper's motivating application pattern (Section 2.2): a
// fault-tolerant image-manipulation phase followed by a fault-sensitive
// checksum over the result. The pixels are approximate throughout the
// blur; the single endorsement at the phase boundary is the only place
// approximate data may reach the precise checksum.
//
//===----------------------------------------------------------------------===//

#include "core/enerj.h"

#include <cstdio>
#include <vector>

using namespace enerj;

namespace {

constexpr int32_t Side = 96;

/// Renders a deterministic test pattern into approximate pixel storage.
ApproxArray<int32_t> makeImage(uint64_t Seed) {
  Rng Workload(Seed);
  ApproxArray<int32_t> Image(Side * Side);
  for (int32_t Y = 0; Y < Side; ++Y)
    for (int32_t X = 0; X < Side; ++X) {
      int32_t Value = ((X / 12 + Y / 12) % 2) ? 220 : 35;
      Value += static_cast<int32_t>(Workload.nextInRange(-10, 10));
      Image[static_cast<size_t>(Y * Side + X)] = Approx<int32_t>(Value);
    }
  return Image;
}

/// Phase 1 (error-resilient): 3x3 box blur entirely on approximate data.
void blur(ApproxArray<int32_t> &Image) {
  ApproxArray<int32_t> Source(Image.size());
  for (size_t I = 0; I < Image.size(); ++I)
    Source[I] = Image.get(I);
  for (Precise<int32_t> Y = 1; Y < Side - 1; ++Y)
    for (Precise<int32_t> X = 1; X < Side - 1; ++X) {
      Approx<int32_t> Sum = 0;
      for (int32_t Dy = -1; Dy <= 1; ++Dy)
        for (int32_t Dx = -1; Dx <= 1; ++Dx) {
          Precise<int32_t> Index = (Y + Dy) * Side + (X + Dx);
          Sum += Source.get(static_cast<size_t>(Index.get()));
        }
      Precise<int32_t> Here = Y * Side + X;
      Image[static_cast<size_t>(Here.get())] = Sum / Approx<int32_t>(9);
    }
}

/// Phase 2 (fault-sensitive): Fletcher-style checksum. This code is
/// precise; the endorsement at the call boundary is the only gate.
uint32_t checksum(const std::vector<int32_t> &Pixels) {
  uint32_t A = 1, B = 0;
  for (int32_t Pixel : Pixels) {
    A = (A + static_cast<uint32_t>(Pixel & 0xFF)) % 65521;
    B = (B + A) % 65521;
  }
  return (B << 16) | A;
}

/// The phase boundary: endorse every pixel out of the approximate world.
std::vector<int32_t> endorseImage(const ApproxArray<int32_t> &Image) {
  std::vector<int32_t> Out;
  Out.reserve(Image.size());
  for (size_t I = 0; I < Image.size(); ++I)
    Out.push_back(endorse(Image.get(I)));
  return Out;
}

uint32_t runPipeline(uint64_t Seed) {
  ApproxArray<int32_t> Image = makeImage(Seed);
  blur(Image);
  return checksum(endorseImage(Image));
}

} // namespace

int main() {
  uint32_t Reference = runPipeline(7);
  std::printf("precise checksum:    %08x\n", Reference);

  for (ApproxLevel Level : {ApproxLevel::Mild, ApproxLevel::Medium,
                            ApproxLevel::Aggressive}) {
    FaultConfig Config = FaultConfig::preset(Level);
    Simulator Sim(Config);
    uint32_t Sum;
    {
      SimulatorScope Scope(Sim);
      Sum = runPipeline(7);
    }
    EnergyReport Energy = computeEnergy(Sim.stats(), Config);
    std::printf("%-10s checksum:  %08x (%s)   energy = %.3f "
                "(saves %4.1f%%)\n",
                approxLevelName(Level), Sum,
                Sum == Reference ? "matches " : "degraded",
                Energy.TotalFactor, Energy.saved() * 100);
  }

  std::printf("\nThe checksum itself is computed precisely every time; "
              "only the *image*\ndegrades. That is the paper's safety "
              "story: the type system confines faults\nto data the "
              "programmer declared expendable.\n");
  return 0;
}
