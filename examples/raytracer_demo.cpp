//===- examples/raytracer_demo.cpp - Render at every quality level --------===//
//
// Renders the Raytracer benchmark's scene at every approximation level
// and prints each frame as ASCII art next to its measured QoS error and
// energy estimate — the paper's "gradual degradation of perceptible
// output quality" (Section 6.2), visible in a terminal.
//
//===----------------------------------------------------------------------===//

#include "apps/app.h"
#include "core/enerj.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace enerj;
using namespace enerj::apps;

namespace {

/// Maps a [0,1] luminance to an ASCII shade.
char shadeChar(double Value) {
  static const char Ramp[] = " .:-=+*#%@";
  if (Value < 0)
    Value = 0;
  if (Value > 1)
    Value = 1;
  return Ramp[static_cast<size_t>(Value * 9.0 + 0.5)];
}

void printFrame(const std::vector<double> &Pixels, int Side) {
  // Terminal cells are ~2x taller than wide: sample every other row.
  for (int Y = 0; Y < Side; Y += 2) {
    for (int X = 0; X < Side; ++X)
      std::putchar(shadeChar(Pixels[static_cast<size_t>(Y * Side + X)]));
    std::putchar('\n');
  }
}

} // namespace

int main() {
  const Application *Raytracer = findApplication("raytracer");
  if (!Raytracer) {
    std::fprintf(stderr, "raytracer app not registered\n");
    return 1;
  }
  constexpr uint64_t Seed = 3;
  AppOutput Reference = runPrecise(*Raytracer, Seed);
  int Side = 40; // The app renders 40x40.

  std::printf("=== precise render ===\n");
  printFrame(Reference.Numeric, Side);

  for (ApproxLevel Level : {ApproxLevel::Mild, ApproxLevel::Medium,
                            ApproxLevel::Aggressive}) {
    FaultConfig Config = FaultConfig::preset(Level);
    AppRun Run = runApproximate(*Raytracer, Config, Seed);
    double Error = Raytracer->qosError(Reference, Run.Output);
    EnergyReport Energy = computeEnergy(Run.Stats, Config);
    std::printf("\n=== %s render ===  (QoS error %.4f, energy %.3f, "
                "saves %.1f%%)\n",
                approxLevelName(Level), Error, Energy.TotalFactor,
                Energy.saved() * 100);
    printFrame(Run.Output.Numeric, Side);
  }

  std::printf("\nUnder Mild approximation the image is indistinguishable "
              "from the precise one;\nnoise grows with aggressiveness "
              "while the program never crashes (Section 6.2).\n");
  return 0;
}
