//===- examples/benchmark_cli.cpp - Run any evaluation app from the CLI ---===//
//
// A command-line front end over the nine Section 6 applications:
//
//   benchmark_cli list
//   benchmark_cli run <app> [--level mild|medium|aggressive|none]
//                           [--mode random|bitflip|lastvalue]
//                           [--seeds N] [--line-bytes B]
//                           [--no-dram] [--no-sram] [--no-fp] [--no-timing]
//
// Prints the QoS error (mean over seeds), the operation/storage mix, and
// the energy estimate for the chosen configuration — a convenient way to
// explore the trade-off space beyond the fixed tables.
//
//===----------------------------------------------------------------------===//

#include "apps/app.h"
#include "energy/model.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace enerj;
using namespace enerj::apps;

namespace {

int listApps() {
  std::printf("%-14s %s\n", "name", "description");
  for (const Application *App : allApplications())
    std::printf("%-14s %s\n", App->name(), App->description());
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: benchmark_cli list\n"
               "       benchmark_cli run <app> [--level L] [--mode M]\n"
               "              [--seeds N] [--line-bytes B] [--seed S]\n"
               "              [--no-dram] [--no-sram] [--no-fp] "
               "[--no-timing]\n"
               "              [--timing-prob P] [--sram-read-prob P]\n"
               "              [--sram-write-prob P] "
               "[--dram-flip-per-sec P]\n"
               "              [--float-mantissa N] [--double-mantissa N]\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc >= 2 && std::strcmp(Argv[1], "list") == 0)
    return listApps();
  if (Argc < 3 || std::strcmp(Argv[1], "run") != 0)
    return usage();

  const Application *App = findApplication(Argv[2]);
  if (!App) {
    std::fprintf(stderr, "unknown application '%s' (try 'list')\n",
                 Argv[2]);
    return 1;
  }

  FaultConfig Config = FaultConfig::preset(ApproxLevel::Medium);
  int Seeds = 5;
  for (int Arg = 3; Arg < Argc; ++Arg) {
    std::string Flag = Argv[Arg];
    auto NextValue = [&]() -> const char * {
      if (Arg + 1 >= Argc) {
        std::fprintf(stderr, "%s needs a value\n", Flag.c_str());
        std::exit(2);
      }
      return Argv[++Arg];
    };
    if (Flag == "--level") {
      std::string Level = NextValue();
      if (Level == "none")
        Config.Level = ApproxLevel::None;
      else if (Level == "mild")
        Config.Level = ApproxLevel::Mild;
      else if (Level == "medium")
        Config.Level = ApproxLevel::Medium;
      else if (Level == "aggressive")
        Config.Level = ApproxLevel::Aggressive;
      else
        return usage();
    } else if (Flag == "--mode") {
      std::string Mode = NextValue();
      if (Mode == "random")
        Config.Mode = ErrorMode::RandomValue;
      else if (Mode == "bitflip")
        Config.Mode = ErrorMode::SingleBitFlip;
      else if (Mode == "lastvalue")
        Config.Mode = ErrorMode::LastValue;
      else
        return usage();
    } else if (Flag == "--seeds") {
      Seeds = std::atoi(NextValue());
      if (Seeds < 1)
        return usage();
    } else if (Flag == "--line-bytes") {
      Config.CacheLineBytes =
          static_cast<uint64_t>(std::atoll(NextValue()));
      if (Config.CacheLineBytes == 0)
        return usage();
    } else if (Flag == "--no-dram") {
      Config.EnableDram = false;
    } else if (Flag == "--no-sram") {
      Config.EnableSram = false;
    } else if (Flag == "--no-fp") {
      Config.EnableFpWidth = false;
    } else if (Flag == "--no-timing") {
      Config.EnableTiming = false;
    } else if (Flag == "--timing-prob") {
      Config.TimingErrorOverride = std::atof(NextValue());
    } else if (Flag == "--sram-read-prob") {
      Config.SramReadUpsetOverride = std::atof(NextValue());
    } else if (Flag == "--sram-write-prob") {
      Config.SramWriteFailureOverride = std::atof(NextValue());
    } else if (Flag == "--dram-flip-per-sec") {
      Config.DramFlipPerSecondOverride = std::atof(NextValue());
    } else if (Flag == "--float-mantissa") {
      Config.FloatMantissaOverride = std::atoi(NextValue());
    } else if (Flag == "--double-mantissa") {
      Config.DoubleMantissaOverride = std::atoi(NextValue());
    } else if (Flag == "--seed") {
      Config.Seed = static_cast<uint64_t>(std::atoll(NextValue()));
    } else {
      return usage();
    }
  }

  std::printf("%s — %s\nconfig: %s, %d seed(s), %llu-byte lines\n\n",
              App->name(), App->description(), Config.describe().c_str(),
              Seeds,
              static_cast<unsigned long long>(Config.CacheLineBytes));

  double ErrorSum = 0.0;
  RunStats LastStats;
  for (int Seed = 1; Seed <= Seeds; ++Seed) {
    AppOutput Reference = runPrecise(*App, static_cast<uint64_t>(Seed));
    AppRun Run =
        runApproximate(*App, Config, static_cast<uint64_t>(Seed));
    ErrorSum += App->qosError(Reference, Run.Output);
    LastStats = Run.Stats;
  }
  EnergyReport Energy = computeEnergy(LastStats, Config);

  std::printf("QoS error (%s): %.4f (mean of %d)\n", App->qosMetricName(),
              ErrorSum / Seeds, Seeds);
  std::printf("operations: %llu int (%.1f%% approx), %llu FP (%.1f%% "
              "approx)\n",
              static_cast<unsigned long long>(LastStats.Ops.totalInt()),
              LastStats.Ops.approxIntFraction() * 100,
              static_cast<unsigned long long>(LastStats.Ops.totalFp()),
              LastStats.Ops.approxFpFraction() * 100);
  std::printf("storage: DRAM %.1f%% approx, SRAM %.1f%% approx "
              "(byte-seconds)\n",
              LastStats.Storage.dramApproxFraction() * 100,
              LastStats.Storage.sramApproxFraction() * 100);
  std::printf("energy: %.3f of baseline (saves %.1f%%)\n",
              Energy.TotalFactor, Energy.saved() * 100);
  return 0;
}
