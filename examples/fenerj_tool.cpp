//===- examples/fenerj_tool.cpp - FEnerJ checker / interpreter CLI --------===//
//
// A command-line driver for the FEnerJ formal language:
//
//   fenerj_tool check <file.fej>       type-check only
//   fenerj_tool run <file.fej>         check, then evaluate precisely
//   fenerj_tool fuzz <file.fej> [n]    check, then evaluate under n random
//                                      perturbation seeds and report
//                                      whether the precise projection is
//                                      invariant (non-interference)
//   fenerj_tool lint <file.fej> [--json] [--Werror]
//                                      check, then run the enerj-lint
//                                      audits (endorsement, precision
//                                      slack, dead values, isa-flow,
//                                      interproc-flow); --Werror promotes
//                                      warnings to a failing exit status
//   fenerj_tool infer <file.fej>... [--json] [--suggest-annotations]
//                                      whole-program qualifier inference
//                                      over the instantiated call graph:
//                                      the maximal relaxation set with
//                                      zero new endorsements, reported
//                                      per app (Figure 3 style)
//   fenerj_tool eval [--apps a,b] [--levels l1,l2] [--seeds N]
//                    [--threads N] [--slo E] [--max-retries N]
//                    [--op-budget M] [--output-bound B] [--no-degrade]
//                    [--metrics] [--json] [--exec-mode interp|compiled]
//                    [--power-trace file|preset] [--checkpoint policy]
//                    [--journal-dir d] [--journal-sample N] [--progress]
//                    [--ledger file]
//                                      run the Section 6 evaluation grid
//                                      on the parallel trial runner; the
//                                      resilience flags arm the QoS SLO,
//                                      the retry/degradation ladder, and
//                                      the per-trial watchdog budget;
//                                      --metrics collects per-site
//                                      telemetry (JSON schema v3);
//                                      --power-trace meters every trial
//                                      against an intermittent supply
//                                      with checkpoint/restore accounting
//                                      (JSON schema v5); --journal-dir
//                                      captures flight-recorder journals
//                                      (all non-ok trials, sampled ok
//                                      trials); --progress heartbeats on
//                                      stderr; --ledger appends one
//                                      manifest line to a JSONL run
//                                      ledger
//   fenerj_tool replay <journal> [--blame]
//                                      re-execute a captured journal and
//                                      verify the digest bitwise;
//                                      --blame ranks the journaled fault
//                                      sites by QoS damage via forced-
//                                      precise counterfactual replay
//   fenerj_tool runs list <ledger.jsonl>
//   fenerj_tool runs diff <ledger.jsonl> <a> <b>
//   fenerj_tool runs check <ledger.jsonl> --baseline <file>
//                                      cross-run comparison over the run
//                                      ledger; check gates QoS / energy /
//                                      throughput against a committed
//                                      baseline's thresholds
//   fenerj_tool profile <app> [--level L] [--seeds N] [--threads N]
//                      [--top K] [--no-qos-delta] [--trace out.json]
//                      [--json]
//                                      per-site energy/fault attribution:
//                                      which region/operation pays the
//                                      energy bill and causes the QoS
//                                      loss; --trace exports the seed-1
//                                      timeline as Chrome/Perfetto
//                                      trace_event JSON
//   fenerj_tool demo                   run a built-in demo program
//
//===----------------------------------------------------------------------===//

#include "analysis/infer.h"
#include "analysis/isa_flow.h"
#include "analysis/lint.h"
#include "analysis/opt/pipeline.h"
#include "analysis/reliability/bounds.h"
#include "fenerj/codegen.h"
#include "fenerj/fenerj.h"
#include "harness/eval.h"
#include "isa/assembler.h"
#include "isa/machine.h"
#include "isa/verifier.h"
#include "obs/journal.h"
#include "obs/json_mini.h"
#include "obs/ledger.h"
#include "obs/profile.h"
#include "obs/trace.h"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

using namespace enerj::fenerj;

namespace {

const char *DemoProgram = R"(// The paper's IntPair (Section 2.5.1), runnable.
class IntPair {
  @context int x;
  @context int y;
  @approx int numAdditions;
  int addToBoth(@context int amount) {
    this.x := this.x + amount;
    this.y := this.y + amount;
    this.numAdditions := this.numAdditions + 1;
    0;
  }
}
{
  let @precise IntPair p = new @precise IntPair();
  let @approx IntPair a = new @approx IntPair();
  let int i = 0;
  while (i < 5) {
    p.addToBoth(i);
    a.addToBoth(i);
    i = i + 1;
  };
  p.x + p.y;   // Precise: always 20.
}
)";

int check(const std::string &Source, bool Quiet = false) {
  DiagnosticEngine Diags;
  ClassTable Table;
  std::optional<Program> Prog = compile(Source, Table, Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  if (!Quiet)
    std::printf("ok: program is well typed (%zu class(es))\n",
                Prog->Classes.size());
  return 0;
}

int run(const std::string &Source) {
  DiagnosticEngine Diags;
  ClassTable Table;
  std::optional<Program> Prog = compile(Source, Table, Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  Interpreter Interp(*Prog, Table, {});
  EvalResult Result = Interp.run();
  if (Result.Trapped) {
    std::fprintf(stderr, "trap: %s\n", Result.TrapMessage.c_str());
    return 1;
  }
  std::printf("result: %s\n", Result.Result.str().c_str());
  std::printf("-- precise projection --\n%s",
              Interp.preciseProjection(Result).c_str());
  return 0;
}

int fuzz(const std::string &Source, int Rounds) {
  DiagnosticEngine Diags;
  ClassTable Table;
  std::optional<Program> Prog = compile(Source, Table, Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  Interpreter Ref(*Prog, Table, {});
  EvalResult RefResult = Ref.run();
  if (RefResult.Trapped) {
    std::fprintf(stderr, "trap (precise run): %s\n",
                 RefResult.TrapMessage.c_str());
    return 1;
  }
  std::string RefProjection = Ref.preciseProjection(RefResult);
  int Violations = 0;
  for (int Round = 1; Round <= Rounds; ++Round) {
    RandomPerturber Perturb(static_cast<uint64_t>(Round), 1.0);
    InterpOptions Options;
    Options.Perturb = &Perturb;
    Interpreter Interp(*Prog, Table, Options);
    EvalResult Result = Interp.run();
    if (Result.Trapped) {
      std::printf("round %d: TRAP: %s\n", Round,
                  Result.TrapMessage.c_str());
      ++Violations;
      continue;
    }
    if (Interp.preciseProjection(Result) != RefProjection) {
      std::printf("round %d: PRECISE STATE CHANGED\n", Round);
      ++Violations;
    }
  }
  if (Violations == 0) {
    std::printf("non-interference held across %d fully-perturbed runs\n",
                Rounds);
    return 0;
  }
  std::printf("%d violation(s) — if the program is endorse-free this is "
              "a checker bug\n", Violations);
  return 1;
}

int compileIsa(const std::string &Source, bool Execute, bool Optimize) {
  DiagnosticEngine Diags;
  ClassTable Table;
  std::optional<Program> Prog = compile(Source, Table, Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  CodegenResult Code = compileToIsa(*Prog);
  if (!Code.Ok) {
    std::fprintf(stderr, "codegen error: %s\n", Code.Error.c_str());
    return 1;
  }
  std::vector<std::string> AsmErrors;
  std::optional<enerj::isa::IsaProgram> Binary =
      enerj::isa::assemble(Code.Assembly, AsmErrors);
  if (!Binary) {
    for (const std::string &E : AsmErrors)
      std::fprintf(stderr, "%s\n", E.c_str());
    return 1;
  }
  std::vector<enerj::isa::VerifyError> Violations =
      enerj::isa::verify(*Binary);
  for (const enerj::isa::VerifyError &E : Violations)
    std::fprintf(stderr, "verifier: %s\n", E.str().c_str());
  if (!Violations.empty())
    return 1;
  if (Optimize) {
    enerj::analysis::opt::OptReport Report =
        enerj::analysis::opt::optimizeProgram(*Binary);
    if (!Report.Ok) {
      std::fprintf(stderr, "opt: %s\n", Report.Error.c_str());
      return 1;
    }
    std::fprintf(stderr, "opt: %zu -> %zu instructions (%u removed, "
                         "%u rewritten)\n",
                 Report.OpsBefore, Report.OpsAfter, Report.totalRemoved(),
                 Report.totalRewritten());
  }
  if (!Execute) {
    if (Optimize)
      std::fputs(enerj::isa::disassemble(*Binary).c_str(), stdout);
    else
      std::fputs(Code.Assembly.c_str(), stdout);
    return 0;
  }
  for (enerj::ApproxLevel Level :
       {enerj::ApproxLevel::None, enerj::ApproxLevel::Mild,
        enerj::ApproxLevel::Medium, enerj::ApproxLevel::Aggressive}) {
    enerj::isa::Machine M(*Binary, enerj::FaultConfig::preset(Level));
    enerj::isa::MachineResult Result = M.run();
    if (Result.Trapped) {
      std::printf("%-10s trap: %s\n", enerj::approxLevelName(Level),
                  Result.TrapMessage.c_str());
      continue;
    }
    std::printf("%-10s r1 = %lld   f1 = %.9g   (%llu instructions)\n",
                enerj::approxLevelName(Level),
                static_cast<long long>(M.intReg(1)), M.fpReg(1),
                static_cast<unsigned long long>(
                    Result.InstructionsExecuted));
  }
  return 0;
}

std::string readFile(const char *Path, bool &Ok);

int lint(const std::string &Source, const char *FileName, bool Json,
         bool Werror) {
  DiagnosticEngine Diags;
  ClassTable Table;
  std::optional<Program> Prog = compile(Source, Table, Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  enerj::analysis::LintResult Result =
      enerj::analysis::runLint(*Prog, Table);
  std::string Rendered =
      Json ? enerj::analysis::renderLintJson(Result, FileName) + "\n"
           : enerj::analysis::renderLintText(Result, FileName);
  std::fputs(Rendered.c_str(), stdout);
  // Warnings and suggestions are advisory; only hard errors fail the run
  // — unless --Werror promotes warnings (suggestions stay advisory).
  // isa-flow *warnings* are exempt: they describe the compiled artifact
  // (scratch-register dead stores the codegen emits on nearly every
  // program), not the source; real qualifier-flow violations in the ISA
  // are errors and fail the run regardless.
  if (Result.hasErrors())
    return 1;
  if (Werror)
    for (const enerj::analysis::LintFinding &F : Result.Findings)
      if (F.Severity == enerj::analysis::LintSeverity::Warning &&
          F.Pass != enerj::analysis::LintPass::IsaFlow)
        return 1;
  return 0;
}

/// `fenerj_tool opt <file.fej|file.isa> [--passes a,b] [--level L]
/// [--json] [--emit]` — assemble (compiling first for .fej inputs), run
/// the validated pass pipeline, and report per-pass statistics. --emit
/// prints the optimized assembly to stdout (the report moves to stderr).
int optMode(int Argc, char **Argv) {
  const char *File = Argv[2];
  bool Json = false, Emit = false;
  enerj::analysis::opt::OptOptions Options;
  for (int Arg = 3; Arg < Argc; ++Arg) {
    std::string Flag = Argv[Arg];
    auto NextValue = [&]() -> std::string {
      if (Arg + 1 >= Argc) {
        std::fprintf(stderr, "%s needs a value\n", Flag.c_str());
        std::exit(2);
      }
      return Argv[++Arg];
    };
    if (Flag == "--json") {
      Json = true;
    } else if (Flag == "--emit") {
      Emit = true;
    } else if (Flag == "--passes") {
      std::string Error;
      if (!enerj::analysis::opt::parsePassList(NextValue(), Options.Passes,
                                               Error)) {
        std::fprintf(stderr, "%s (known: constprop, copyprop, cse, "
                             "endorse-elim, dce)\n", Error.c_str());
        return 2;
      }
    } else if (Flag == "--level") {
      std::string Name = NextValue();
      bool Found = false;
      for (enerj::ApproxLevel Level :
           {enerj::ApproxLevel::None, enerj::ApproxLevel::Mild,
            enerj::ApproxLevel::Medium, enerj::ApproxLevel::Aggressive})
        if (Name == enerj::approxLevelName(Level)) {
          Options.EnergyLevel = Level;
          Found = true;
        }
      if (!Found) {
        std::fprintf(stderr, "unknown level '%s' (none, mild, medium, "
                             "aggressive)\n", Name.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown opt flag '%s'\n", Flag.c_str());
      return 2;
    }
  }

  bool Ok = true;
  std::string Source = readFile(File, Ok);
  if (!Ok) {
    std::fprintf(stderr, "error: cannot read '%s'\n", File);
    return 1;
  }

  std::string Assembly;
  std::string Name = File;
  if (Name.size() >= 4 && Name.substr(Name.size() - 4) == ".isa") {
    Assembly = Source;
  } else {
    DiagnosticEngine Diags;
    ClassTable Table;
    std::optional<Program> Prog = compile(Source, Table, Diags);
    if (!Prog) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      return 1;
    }
    CodegenResult Code = compileToIsa(*Prog);
    if (!Code.Ok) {
      std::fprintf(stderr, "codegen error: %s\n", Code.Error.c_str());
      return 1;
    }
    Assembly = Code.Assembly;
  }
  std::vector<std::string> AsmErrors;
  std::optional<enerj::isa::IsaProgram> Binary =
      enerj::isa::assemble(Assembly, AsmErrors);
  if (!Binary) {
    for (const std::string &E : AsmErrors)
      std::fprintf(stderr, "%s\n", E.c_str());
    return 1;
  }

  enerj::analysis::opt::OptReport Report =
      enerj::analysis::opt::optimizeProgram(*Binary, Options);

  std::string Rendered;
  if (Json) {
    std::ostringstream Out;
    Out << "{\"tool\": \"fenerj-opt\", \"version\": 1, \"file\": \"" << File
        << "\", \"ok\": " << (Report.Ok ? "true" : "false")
        << ", \"error\": \"" << Report.Error << "\""
        << ", \"level\": \"" << enerj::approxLevelName(Options.EnergyLevel)
        << "\", \"opsBefore\": " << Report.OpsBefore
        << ", \"opsAfter\": " << Report.OpsAfter
        << ", \"removed\": " << Report.totalRemoved()
        << ", \"rewritten\": " << Report.totalRewritten();
    char Buffer[64];
    std::snprintf(Buffer, sizeof(Buffer), "%.6f",
                  Report.EnergyBefore.factor());
    Out << ", \"energyFactorBefore\": " << Buffer;
    std::snprintf(Buffer, sizeof(Buffer), "%.6f",
                  Report.EnergyAfter.factor());
    Out << ", \"energyFactorAfter\": " << Buffer << ", \"passes\": [";
    for (size_t Index = 0; Index < Report.Passes.size(); ++Index) {
      const enerj::analysis::opt::PassReport &Pass = Report.Passes[Index];
      if (Index)
        Out << ", ";
      std::snprintf(Buffer, sizeof(Buffer), "%.6f",
                    Pass.EnergyAfter.factor());
      Out << "{\"pass\": \"" << enerj::analysis::opt::passName(Pass.Kind)
          << "\", \"changed\": " << (Pass.Changed ? "true" : "false")
          << ", \"accepted\": " << (Pass.Accepted ? "true" : "false")
          << ", \"rewritten\": " << Pass.Rewritten
          << ", \"removed\": " << Pass.Removed
          << ", \"rejectReason\": \"" << Pass.RejectReason << "\""
          << ", \"opsAfter\": " << Pass.OpsAfter
          << ", \"energyFactor\": " << Buffer << "}";
    }
    Out << "]}\n";
    Rendered = Out.str();
  } else {
    std::ostringstream Out;
    Out << "== fenerj-opt: " << File << " ==\n";
    if (!Report.Error.empty())
      Out << "error: " << Report.Error << "\n";
    char Line[160];
    for (const enerj::analysis::opt::PassReport &Pass : Report.Passes) {
      std::snprintf(Line, sizeof(Line),
                    "  %-12s %-9s rewritten %3u  removed %3u  ops %4zu  "
                    "energy %.4f\n",
                    enerj::analysis::opt::passName(Pass.Kind),
                    !Pass.Changed ? "no-op"
                    : Pass.Accepted ? "validated"
                                    : "REJECTED",
                    Pass.Rewritten, Pass.Removed, Pass.OpsAfter,
                    Pass.EnergyAfter.factor());
      Out << Line;
      if (!Pass.Accepted && !Pass.RejectReason.empty())
        Out << "      reject: " << Pass.RejectReason << "\n";
    }
    std::snprintf(Line, sizeof(Line),
                  "  total: %zu -> %zu instructions, energy factor "
                  "%.4f -> %.4f (@%s)\n",
                  Report.OpsBefore, Report.OpsAfter,
                  Report.EnergyBefore.factor(), Report.EnergyAfter.factor(),
                  enerj::approxLevelName(Options.EnergyLevel));
    Out << Line;
    Rendered = Out.str();
  }
  std::fputs(Rendered.c_str(), Emit ? stderr : stdout);
  if (Emit && Report.Ok)
    std::fputs(enerj::isa::disassemble(*Binary).c_str(), stdout);
  return Report.Ok ? 0 : 1;
}

/// `fenerj_tool bound <file.fej|file.isa> [--level L] [--json]
/// [--per-site]` — run the static reliability analysis: lower bounds on
/// the probability that each output is bitwise equal to the fault-free
/// reference. The input goes through the same pipeline as a compiled
/// evaluation cell (compile, assemble, verify, flow-check, optimize), so
/// the reported bounds describe exactly the artifact the grid executes.
int boundMode(int Argc, char **Argv) {
  const char *File = Argv[2];
  bool Json = false, PerSite = false;
  std::string LedgerPath;
  enerj::ApproxLevel Level = enerj::ApproxLevel::Medium;
  for (int Arg = 3; Arg < Argc; ++Arg) {
    std::string Flag = Argv[Arg];
    auto NextValue = [&]() -> std::string {
      if (Arg + 1 >= Argc) {
        std::fprintf(stderr, "%s needs a value\n", Flag.c_str());
        std::exit(2);
      }
      return Argv[++Arg];
    };
    if (Flag == "--json") {
      Json = true;
    } else if (Flag == "--per-site") {
      PerSite = true;
    } else if (Flag == "--ledger") {
      LedgerPath = NextValue();
      if (LedgerPath.empty()) {
        std::fprintf(stderr, "--ledger needs a file path\n");
        return 2;
      }
    } else if (Flag == "--level") {
      std::string Name = NextValue();
      bool Found = false;
      for (enerj::ApproxLevel Candidate :
           {enerj::ApproxLevel::None, enerj::ApproxLevel::Mild,
            enerj::ApproxLevel::Medium, enerj::ApproxLevel::Aggressive})
        if (Name == enerj::approxLevelName(Candidate)) {
          Level = Candidate;
          Found = true;
        }
      if (!Found) {
        std::fprintf(stderr, "unknown level '%s' (none, mild, medium, "
                             "aggressive)\n", Name.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown bound flag '%s'\n", Flag.c_str());
      return 2;
    }
  }

  bool Ok = true;
  std::string Source = readFile(File, Ok);
  if (!Ok) {
    std::fprintf(stderr, "error: cannot read '%s'\n", File);
    return 1;
  }

  std::string Assembly;
  std::string Name = File;
  if (Name.size() >= 4 && Name.substr(Name.size() - 4) == ".isa") {
    Assembly = Source;
  } else {
    DiagnosticEngine Diags;
    ClassTable Table;
    std::optional<Program> Prog = compile(Source, Table, Diags);
    if (!Prog) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      return 1;
    }
    CodegenResult Code = compileToIsa(*Prog);
    if (!Code.Ok) {
      std::fprintf(stderr, "codegen error: %s\n", Code.Error.c_str());
      return 1;
    }
    Assembly = Code.Assembly;
  }
  std::vector<std::string> AsmErrors;
  std::optional<enerj::isa::IsaProgram> Binary =
      enerj::isa::assemble(Assembly, AsmErrors);
  if (!Binary) {
    for (const std::string &E : AsmErrors)
      std::fprintf(stderr, "%s\n", E.c_str());
    return 1;
  }
  std::vector<enerj::isa::VerifyError> Violations =
      enerj::isa::verify(*Binary);
  for (const enerj::isa::VerifyError &E : Violations)
    std::fprintf(stderr, "verifier: %s\n", E.str().c_str());
  if (!Violations.empty())
    return 1;
  enerj::analysis::IsaFlowResult Flow = enerj::analysis::verifyFlow(*Binary);
  for (const enerj::isa::VerifyError &E : Flow.Errors)
    std::fprintf(stderr, "flow: %s\n", E.str().c_str());
  if (!Flow.ok())
    return 1;
  enerj::analysis::opt::OptOptions OptOptions;
  OptOptions.EnergyLevel = Level;
  enerj::analysis::opt::OptReport OptReport =
      enerj::analysis::opt::optimizeProgram(*Binary, OptOptions);
  if (!OptReport.Ok) {
    std::fprintf(stderr, "opt: %s\n", OptReport.Error.c_str());
    return 1;
  }

  enerj::FaultRates Rates =
      enerj::FaultRates::of(enerj::FaultConfig::preset(Level));
  auto Started = std::chrono::steady_clock::now();
  enerj::analysis::reliability::ReliabilityReport Report =
      enerj::analysis::reliability::analyzeProgram(*Binary, Rates);
  double ElapsedSec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    Started)
          .count();

  auto Fmt = [](double Value) {
    char Buffer[48];
    std::snprintf(Buffer, sizeof(Buffer), "%.17g", Value);
    return std::string(Buffer);
  };
  // The JSON payload is also the ledger's grid digest, so build it in
  // text mode too.
  std::string PayloadJson;
  {
    std::ostringstream Out;
    Out << "{\"tool\": \"fenerj-bound\", \"version\": 1, \"file\": \""
        << File << "\", \"level\": \"" << enerj::approxLevelName(Level)
        << "\", \"conservative\": " << (Report.Conservative ? "true" : "false")
        << ", \"pathBound\": " << Fmt(Report.PathBound)
        << ", \"intOutputBound\": " << Fmt(Report.IntOutputBound)
        << ", \"fpOutputBound\": " << Fmt(Report.FpOutputBound)
        << ", \"programBound\": " << Fmt(Report.ProgramBound)
        << ", \"preciseMemBound\": " << Fmt(Report.PreciseMemBound)
        << ", \"approxMemBound\": " << Fmt(Report.ApproxMemBound)
        << ", \"loops\": " << Report.LoopCount
        << ", \"loopsUnrolled\": " << Report.LoopsUnrolled
        << ", \"loopsWidened\": " << Report.LoopsWidened
        << ", \"blockEvals\": " << Report.BlockEvals << ", \"sites\": [";
    for (size_t Index = 0; Index < Report.Sites.size(); ++Index) {
      const enerj::analysis::reliability::SiteBound &S = Report.Sites[Index];
      if (Index)
        Out << ", ";
      Out << "{\"block\": " << S.Block << ", \"index\": " << S.Index
          << ", \"line\": " << S.Line
          << ", \"op\": \"" << (S.Fp ? "fendorse" : "endorse")
          << "\", \"srcReg\": \"" << (S.Fp ? "f" : "r") << S.SrcReg
          << "\", \"bound\": " << Fmt(S.Bound)
          << ", \"visits\": " << S.Visits << "}";
    }
    Out << "]}";
    PayloadJson = Out.str();
  }
  auto AppendLedger = [&]() -> bool {
    if (LedgerPath.empty())
      return true;
    enerj::obs::LedgerEntry Entry;
    Entry.Command = "bound";
    Entry.PayloadVersion = 1;
    Entry.ConfigSummary = std::string("bound file=") + File +
                          " level=" + enerj::approxLevelName(Level);
    Entry.ConfigHash = enerj::obs::json::fnv1a(Entry.ConfigSummary);
    Entry.GridDigest = enerj::obs::json::fnv1a(PayloadJson);
    Entry.Apps = 1;
    Entry.Levels = 1;
    Entry.ElapsedSec = ElapsedSec;
    std::string Error;
    if (!enerj::obs::appendLedgerLine(LedgerPath, Entry, &Error)) {
      std::fprintf(stderr, "--ledger: %s\n", Error.c_str());
      return false;
    }
    return true;
  };
  if (Json) {
    std::fputs((PayloadJson + "\n").c_str(), stdout);
    return AppendLedger() ? 0 : 1;
  }

  std::ostringstream Out;
  Out << "== fenerj-bound: " << File << " @ "
      << enerj::approxLevelName(Level) << " ==\n";
  if (Report.Conservative)
    Out << "  (conservative fallback: irreducible control flow or "
           "budget exhausted)\n";
  char Line[160];
  auto Row = [&](const char *Label, double Value) {
    std::snprintf(Line, sizeof(Line), "  %-22s %.12g\n", Label, Value);
    Out << Line;
  };
  Row("path bound", Report.PathBound);
  Row("r1 (int output)", Report.IntOutputBound);
  Row("f1 (fp output)", Report.FpOutputBound);
  Row("program (QoS == 0)", Report.ProgramBound);
  Row("precise memory", Report.PreciseMemBound);
  Row("approx memory", Report.ApproxMemBound);
  std::snprintf(Line, sizeof(Line),
                "  loops: %u (%u unrolled, %u widened), %llu block "
                "evaluation(s)\n",
                Report.LoopCount, Report.LoopsUnrolled, Report.LoopsWidened,
                static_cast<unsigned long long>(Report.BlockEvals));
  Out << Line;
  if (PerSite) {
    if (Report.Sites.empty()) {
      Out << "  no endorsement sites\n";
    } else {
      Out << "  endorsement sites (weakest guarantee endorsed):\n";
      for (const enerj::analysis::reliability::SiteBound &S : Report.Sites) {
        std::snprintf(Line, sizeof(Line),
                      "    line %-4d %-8s %s%-3u bound %.12g  visits %llu\n",
                      S.Line, S.Fp ? "fendorse" : "endorse",
                      S.Fp ? "f" : "r", S.SrcReg, S.Bound,
                      static_cast<unsigned long long>(S.Visits));
        Out << Line;
      }
    }
  }
  std::fputs(Out.str().c_str(), stdout);
  return AppendLedger() ? 0 : 1;
}

int infer(int Argc, char **Argv) {
  bool Json = false;
  bool Suggest = false;
  std::vector<const char *> Files;
  for (int Arg = 2; Arg < Argc; ++Arg) {
    std::string Flag = Argv[Arg];
    if (Flag == "--json")
      Json = true;
    else if (Flag == "--suggest-annotations")
      Suggest = true;
    else if (!Flag.empty() && Flag[0] == '-') {
      std::fprintf(stderr, "unknown infer flag '%s'\n", Flag.c_str());
      return 2;
    } else
      Files.push_back(Argv[Arg]);
  }
  if (Files.empty()) {
    std::fprintf(stderr, "infer needs at least one .fej file\n");
    return 2;
  }
  std::vector<enerj::analysis::InferResult> Results;
  for (const char *File : Files) {
    bool Ok = true;
    std::string Source = readFile(File, Ok);
    if (!Ok) {
      std::fprintf(stderr, "error: cannot read '%s'\n", File);
      return 1;
    }
    DiagnosticEngine Diags;
    ClassTable Table;
    std::optional<Program> Prog = compile(Source, Table, Diags);
    if (!Prog) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      return 1;
    }
    Results.push_back(enerj::analysis::inferProgram(*Prog, Table, File));
  }
  if (Json) {
    std::fputs((enerj::analysis::renderInferJson(Results) + "\n").c_str(),
               stdout);
  } else {
    std::fputs(enerj::analysis::renderInferTable(Results).c_str(), stdout);
    if (Suggest)
      for (const enerj::analysis::InferResult &R : Results)
        std::fputs(enerj::analysis::renderInferSuggestions(R).c_str(),
                   stdout);
  }
  return 0;
}

/// Splits "a,b,c" on commas; empty segments are dropped.
std::vector<std::string> splitList(const std::string &Value) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (Start <= Value.size()) {
    size_t Comma = Value.find(',', Start);
    if (Comma == std::string::npos)
      Comma = Value.size();
    if (Comma > Start)
      Parts.push_back(Value.substr(Start, Comma - Start));
    Start = Comma + 1;
  }
  return Parts;
}

/// Strict full-string integer parse: "5x", "abc", "" and out-of-range
/// values are rejected, unlike atoi's silent truncation to 0 or a
/// prefix. A grid silently shrunk by a typo is a wrong measurement.
bool parseInt(const std::string &Value, long long &Out) {
  if (Value.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  Out = std::strtoll(Value.c_str(), &End, 10);
  return errno == 0 && End && *End == '\0';
}

bool parseUnsigned(const std::string &Value, unsigned long long &Out) {
  if (Value.empty() || Value[0] == '-')
    return false;
  errno = 0;
  char *End = nullptr;
  Out = std::strtoull(Value.c_str(), &End, 10);
  return errno == 0 && End && *End == '\0';
}

/// Strict full-string double parse; rejects trailing junk and non-finite
/// spellings like "nan"/"inf" (a NaN SLO would accept nothing).
bool parseDouble(const std::string &Value, double &Out) {
  if (Value.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  Out = std::strtod(Value.c_str(), &End);
  return errno == 0 && End && *End == '\0' && std::isfinite(Out);
}

int profile(int Argc, char **Argv) {
  if (Argc < 3 || Argv[2][0] == '-') {
    std::fprintf(stderr, "profile needs an application name; known:");
    for (const enerj::apps::Application *Known :
         enerj::apps::allApplications())
      std::fprintf(stderr, " %s", Known->name());
    std::fprintf(stderr, "\n");
    return 2;
  }
  enerj::obs::ProfileOptions Options;
  Options.App = enerj::apps::findApplication(Argv[2]);
  if (!Options.App) {
    std::fprintf(stderr, "unknown application '%s'; known:", Argv[2]);
    for (const enerj::apps::Application *Known :
         enerj::apps::allApplications())
      std::fprintf(stderr, " %s", Known->name());
    std::fprintf(stderr, "\n");
    return 2;
  }
  bool Json = false;
  std::string TracePath;
  std::string LedgerPath;
  for (int Arg = 3; Arg < Argc; ++Arg) {
    std::string Flag = Argv[Arg];
    auto NextValue = [&]() -> std::string {
      if (Arg + 1 >= Argc) {
        std::fprintf(stderr, "%s needs a value\n", Flag.c_str());
        std::exit(2);
      }
      return Argv[++Arg];
    };
    if (Flag == "--json") {
      Json = true;
    } else if (Flag == "--no-qos-delta") {
      Options.QosDelta = false;
    } else if (Flag == "--trace") {
      TracePath = NextValue();
      Options.Trace = true;
    } else if (Flag == "--ledger") {
      LedgerPath = NextValue();
      if (LedgerPath.empty()) {
        std::fprintf(stderr, "--ledger needs a file path\n");
        return 2;
      }
    } else if (Flag == "--level") {
      std::string Name = NextValue();
      bool Found = false;
      for (enerj::ApproxLevel Level :
           {enerj::ApproxLevel::None, enerj::ApproxLevel::Mild,
            enerj::ApproxLevel::Medium, enerj::ApproxLevel::Aggressive})
        if (Name == enerj::approxLevelName(Level)) {
          Options.Level = Level;
          Found = true;
        }
      if (!Found) {
        std::fprintf(stderr, "unknown level '%s' (none, mild, medium, "
                             "aggressive)\n", Name.c_str());
        return 2;
      }
    } else if (Flag == "--seeds") {
      long long Seeds = 0;
      if (!parseInt(NextValue(), Seeds) || Seeds < 1 || Seeds > 1000000) {
        std::fprintf(stderr,
                     "--seeds needs a positive integer (got '%s')\n",
                     Argv[Arg]);
        return 2;
      }
      Options.Seeds = static_cast<int>(Seeds);
    } else if (Flag == "--threads") {
      unsigned long long Threads = 0;
      if (!parseUnsigned(NextValue(), Threads) || Threads > 4096) {
        std::fprintf(stderr,
                     "--threads needs a non-negative integer (got '%s')\n",
                     Argv[Arg]);
        return 2;
      }
      Options.Threads = static_cast<unsigned>(Threads);
    } else if (Flag == "--top") {
      long long Top = 0;
      if (!parseInt(NextValue(), Top) || Top < 0 || Top > 10000) {
        std::fprintf(stderr,
                     "--top needs a non-negative integer (got '%s')\n",
                     Argv[Arg]);
        return 2;
      }
      Options.TopK = static_cast<int>(Top);
    } else {
      std::fprintf(stderr, "unknown profile flag '%s'\n", Flag.c_str());
      return 2;
    }
  }
  auto Started = std::chrono::steady_clock::now();
  enerj::obs::ProfileResult Result = enerj::obs::runProfile(Options);
  double ElapsedSec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    Started)
          .count();
  if (!TracePath.empty()) {
    std::string Trace = enerj::obs::renderChromeTrace(
        Result.Seed1.Trace, Result.Seed1.Metrics, Result.App->name());
    std::ofstream Out(TracePath);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", TracePath.c_str());
      return 1;
    }
    Out << Trace << '\n';
    if (!Out.flush()) {
      std::fprintf(stderr, "error: failed writing '%s'\n",
                   TracePath.c_str());
      return 1;
    }
  }
  std::string PayloadJson = enerj::obs::renderProfileJson(Result);
  std::string Rendered =
      Json ? PayloadJson + "\n" : enerj::obs::renderProfileText(Result);
  std::fputs(Rendered.c_str(), stdout);
  if (!LedgerPath.empty()) {
    enerj::obs::LedgerEntry Entry;
    Entry.Command = "profile";
    Entry.PayloadVersion = 1;
    Entry.ConfigSummary = std::string("profile app=") + Result.App->name() +
                          " level=" +
                          enerj::approxLevelName(Result.Config.Level) +
                          " seeds=" + std::to_string(Result.Seeds) +
                          " topK=" + std::to_string(Result.TopK) +
                          (Options.QosDelta ? " qosDelta=on"
                                            : " qosDelta=off");
    Entry.ConfigHash = enerj::obs::json::fnv1a(Entry.ConfigSummary);
    Entry.GridDigest = enerj::obs::json::fnv1a(PayloadJson);
    Entry.Apps = 1;
    Entry.Levels = 1;
    Entry.Seeds = Result.Seeds;
    Entry.Trials = static_cast<uint64_t>(Result.Seeds);
    Entry.Outcomes.Ok = static_cast<uint64_t>(Result.Seeds);
    Entry.QosMean = Result.Qos.Mean;
    Entry.EnergyMean = Result.Energy.TotalFactor;
    Entry.EffectiveEnergyMean = Result.Energy.TotalFactor;
    Entry.ElapsedSec = ElapsedSec;
    Entry.TrialsPerSec =
        ElapsedSec > 0.0 ? static_cast<double>(Entry.Trials) / ElapsedSec
                         : 0.0;
    std::string Error;
    if (!enerj::obs::appendLedgerLine(LedgerPath, Entry, &Error)) {
      std::fprintf(stderr, "--ledger: %s\n", Error.c_str());
      return 1;
    }
  }
  return 0;
}

int eval(int Argc, char **Argv) {
  enerj::harness::EvalOptions Options;
  bool Json = false;
  bool SawCheckpoint = false;
  std::string JournalDir;
  std::string LedgerPath;
  for (int Arg = 2; Arg < Argc; ++Arg) {
    std::string Flag = Argv[Arg];
    auto NextValue = [&]() -> std::string {
      if (Arg + 1 >= Argc) {
        std::fprintf(stderr, "%s needs a value\n", Flag.c_str());
        std::exit(2);
      }
      return Argv[++Arg];
    };
    if (Flag == "--json") {
      Json = true;
    } else if (Flag == "--apps") {
      std::vector<std::string> Names = splitList(NextValue());
      if (Names.empty()) {
        std::fprintf(stderr,
                     "--apps needs at least one application name\n");
        return 2;
      }
      for (const std::string &Name : Names) {
        const enerj::apps::Application *App =
            enerj::apps::findApplication(Name);
        if (!App) {
          std::fprintf(stderr, "unknown application '%s'; known:",
                       Name.c_str());
          for (const enerj::apps::Application *Known :
               enerj::apps::allApplications())
            std::fprintf(stderr, " %s", Known->name());
          std::fprintf(stderr, "\n");
          return 2;
        }
        Options.Apps.push_back(App);
      }
    } else if (Flag == "--levels") {
      std::vector<std::string> Names = splitList(NextValue());
      if (Names.empty()) {
        std::fprintf(stderr, "--levels needs at least one level name\n");
        return 2;
      }
      for (const std::string &Name : Names) {
        bool Found = false;
        for (enerj::ApproxLevel Level :
             {enerj::ApproxLevel::None, enerj::ApproxLevel::Mild,
              enerj::ApproxLevel::Medium, enerj::ApproxLevel::Aggressive})
          if (Name == enerj::approxLevelName(Level)) {
            Options.Levels.push_back(Level);
            Found = true;
          }
        if (!Found) {
          std::fprintf(stderr, "unknown level '%s' (none, mild, medium, "
                               "aggressive)\n", Name.c_str());
          return 2;
        }
      }
    } else if (Flag == "--seeds") {
      long long Seeds = 0;
      if (!parseInt(NextValue(), Seeds) || Seeds < 1 ||
          Seeds > 1000000) {
        std::fprintf(stderr,
                     "--seeds needs a positive integer (got '%s')\n",
                     Argv[Arg]);
        return 2;
      }
      Options.Seeds = static_cast<int>(Seeds);
    } else if (Flag == "--threads") {
      unsigned long long Threads = 0;
      if (!parseUnsigned(NextValue(), Threads) || Threads > 4096) {
        std::fprintf(stderr,
                     "--threads needs a non-negative integer (got '%s')\n",
                     Argv[Arg]);
        return 2;
      }
      Options.Threads = static_cast<unsigned>(Threads);
    } else if (Flag == "--slo") {
      double Slo = 0.0;
      if (!parseDouble(NextValue(), Slo) || Slo < 0.0 || Slo > 1.0) {
        std::fprintf(stderr,
                     "--slo needs a QoS error bound in [0, 1] (got '%s')\n",
                     Argv[Arg]);
        return 2;
      }
      Options.Policy.Slo = Slo;
      Options.Policy.Enabled = true;
    } else if (Flag == "--output-bound") {
      double Bound = 0.0;
      if (!parseDouble(NextValue(), Bound) || Bound < 0.0) {
        std::fprintf(stderr,
                     "--output-bound needs a non-negative magnitude "
                     "(got '%s')\n",
                     Argv[Arg]);
        return 2;
      }
      Options.Policy.OutputAbsBound = Bound;
      Options.Policy.Enabled = true;
    } else if (Flag == "--max-retries") {
      long long Retries = 0;
      if (!parseInt(NextValue(), Retries) || Retries < 0 ||
          Retries > 1000) {
        std::fprintf(stderr,
                     "--max-retries needs a non-negative integer "
                     "(got '%s')\n",
                     Argv[Arg]);
        return 2;
      }
      Options.Policy.MaxRetries = static_cast<int>(Retries);
      Options.Policy.Enabled = true;
    } else if (Flag == "--op-budget") {
      unsigned long long Budget = 0;
      if (!parseUnsigned(NextValue(), Budget) || Budget == 0) {
        std::fprintf(stderr,
                     "--op-budget needs a positive operation count "
                     "(got '%s')\n",
                     Argv[Arg]);
        return 2;
      }
      Options.Policy.OpBudget = Budget;
      Options.Policy.Enabled = true;
    } else if (Flag == "--no-degrade") {
      Options.Policy.Degrade = false;
      Options.Policy.Enabled = true;
    } else if (Flag == "--metrics") {
      Options.Metrics = true;
    } else if (Flag == "--exec-mode") {
      std::string Mode = NextValue();
      if (Mode == "interp") {
        Options.Exec = enerj::harness::ExecMode::Interp;
      } else if (Mode == "compiled") {
        Options.Exec = enerj::harness::ExecMode::Compiled;
      } else {
        std::fprintf(stderr,
                     "--exec-mode needs 'interp' or 'compiled' "
                     "(got '%s')\n",
                     Mode.c_str());
        return 2;
      }
      // Echo the mode (JSON schema v4) whenever it was given explicitly,
      // for either value; the flagless grid stays byte-identical to the
      // historical v2/v3 output.
      Options.EchoExecMode = true;
    } else if (Flag == "--power-trace") {
      std::string Spec = NextValue();
      std::string Error;
      std::optional<enerj::env::PowerTraceSpec> Trace;
      // A spec naming an existing file loads it; anything else must be a
      // synthetic preset. The two parsers produce their own diagnostics.
      if (std::ifstream(Spec).good())
        Trace = enerj::env::PowerTraceSpec::fromFile(Spec, &Error);
      else
        Trace = enerj::env::PowerTraceSpec::preset(Spec, &Error);
      if (!Trace) {
        std::fprintf(stderr, "--power-trace: %s\n", Error.c_str());
        return 2;
      }
      Options.Power.Trace = std::move(*Trace);
      Options.PowerArmed = true;
    } else if (Flag == "--checkpoint") {
      std::string Spec = NextValue();
      std::string Error;
      std::optional<enerj::env::CheckpointPolicy> Policy =
          enerj::env::CheckpointPolicy::parse(Spec, &Error);
      if (!Policy) {
        std::fprintf(stderr, "--checkpoint: %s\n", Error.c_str());
        return 2;
      }
      Options.Power.Checkpoint = std::move(*Policy);
      SawCheckpoint = true;
    } else if (Flag == "--journal-dir") {
      JournalDir = NextValue();
      if (JournalDir.empty()) {
        std::fprintf(stderr, "--journal-dir needs a directory\n");
        return 2;
      }
      Options.Journal = true;
    } else if (Flag == "--journal-sample") {
      long long Every = 0;
      if (!parseInt(NextValue(), Every) || Every < 0 || Every > 1000000) {
        std::fprintf(stderr,
                     "--journal-sample needs a non-negative ok-trial "
                     "stride, 0 = non-ok only (got '%s')\n",
                     Argv[Arg]);
        return 2;
      }
      Options.JournalOkSampleEvery = static_cast<int>(Every);
    } else if (Flag == "--progress") {
      Options.Progress = true;
    } else if (Flag == "--ledger") {
      LedgerPath = NextValue();
      if (LedgerPath.empty()) {
        std::fprintf(stderr, "--ledger needs a file path\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown eval flag '%s'\n", Flag.c_str());
      return 2;
    }
  }
  if (SawCheckpoint && !Options.PowerArmed) {
    std::fprintf(stderr,
                 "--checkpoint requires --power-trace (a checkpoint "
                 "policy is part of a power environment)\n");
    return 2;
  }
  Options.KernelDir = std::string(ENERJ_FEJ_DIR) + "/isa";
  enerj::harness::EvalResult Result;
  auto Started = std::chrono::steady_clock::now();
  try {
    Result = enerj::harness::runEval(Options);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "eval failed: %s\n", E.what());
    return 1;
  }
  double ElapsedSec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    Started)
          .count();
  // The payload JSON feeds the ledger's grid digest even in text mode;
  // render it once.
  std::string PayloadJson = enerj::harness::renderEvalJson(Result);
  std::string Rendered =
      Json ? PayloadJson + "\n" : enerj::harness::renderEvalText(Result);
  std::fputs(Rendered.c_str(), stdout);
  if (!JournalDir.empty()) {
    std::error_code DirError;
    std::filesystem::create_directories(JournalDir, DirError);
    std::string Error;
    std::vector<std::string> Written =
        enerj::obs::writeJournals(Result, JournalDir, &Error);
    if (!Error.empty()) {
      std::fprintf(stderr, "--journal-dir: %s\n", Error.c_str());
      return 1;
    }
    std::fprintf(stderr, "[journal] %zu journal(s) written to %s\n",
                 Written.size(), JournalDir.c_str());
  }
  if (!LedgerPath.empty()) {
    std::string Error;
    if (!enerj::obs::appendLedgerLine(
            LedgerPath,
            enerj::obs::ledgerEntryForEval(Result, PayloadJson, ElapsedSec),
            &Error)) {
      std::fprintf(stderr, "--ledger: %s\n", Error.c_str());
      return 1;
    }
  }
  return 0;
}

int replayMode(int Argc, char **Argv) {
  bool Blame = false;
  const char *File = nullptr;
  for (int Arg = 2; Arg < Argc; ++Arg) {
    std::string Flag = Argv[Arg];
    if (Flag == "--blame") {
      Blame = true;
    } else if (!Flag.empty() && Flag[0] == '-') {
      std::fprintf(stderr, "unknown replay flag '%s'\n", Flag.c_str());
      return 2;
    } else if (!File) {
      File = Argv[Arg];
    } else {
      std::fprintf(stderr, "replay takes exactly one journal file\n");
      return 2;
    }
  }
  if (!File) {
    std::fprintf(stderr,
                 "usage: fenerj_tool replay <journal.json> [--blame]\n");
    return 2;
  }
  bool Ok = true;
  std::string Text = readFile(File, Ok);
  if (!Ok) {
    std::fprintf(stderr, "error: cannot read '%s'\n", File);
    return 1;
  }
  enerj::obs::Journal J;
  std::string Error;
  if (!enerj::obs::parseJournalJson(Text, &J, &Error)) {
    std::fprintf(stderr, "%s: %s\n", File, Error.c_str());
    return 1;
  }
  try {
    if (Blame) {
      std::vector<enerj::obs::BlameRow> Rows = enerj::obs::blameJournal(J);
      std::fputs(enerj::obs::renderBlameText(J, Rows).c_str(), stdout);
      return 0;
    }
    enerj::obs::ReplayResult R = enerj::obs::replayJournal(
        J, std::string(ENERJ_FEJ_DIR) + "/isa");
    if (R.Match) {
      std::printf("replay: match\n  digest %s\n", R.RecordedJson.c_str());
      return 0;
    }
    std::printf("replay: MISMATCH\n  recorded %s\n  replayed %s\n",
                R.RecordedJson.c_str(), R.ReplayedJson.c_str());
    return 1;
  } catch (const std::exception &E) {
    std::fprintf(stderr, "replay failed: %s\n", E.what());
    return 1;
  }
}

int runsUsage() {
  std::fprintf(
      stderr,
      "usage: fenerj_tool runs list <ledger.jsonl>\n"
      "       fenerj_tool runs diff <ledger.jsonl> <a> <b>\n"
      "       fenerj_tool runs check <ledger.jsonl> --baseline <file>\n"
      "       (entry indexes are 0-based; negative counts from the end)\n");
  return 2;
}

/// Parses a "0x"-prefixed 16-digit hash spelling (the ledger's hash
/// format) strictly.
bool parseHex64(const std::string &Text, uint64_t &Out) {
  if (Text.size() < 3 || Text[0] != '0' || Text[1] != 'x')
    return false;
  errno = 0;
  char *End = nullptr;
  Out = std::strtoull(Text.c_str() + 2, &End, 16);
  return errno == 0 && End && *End == '\0';
}

int runsMode(int Argc, char **Argv) {
  if (Argc < 4)
    return runsUsage();
  std::string Sub = Argv[2];
  const char *Path = Argv[3];
  std::vector<enerj::obs::LedgerEntry> Entries;
  std::string Error;
  if (!enerj::obs::readLedger(Path, &Entries, &Error)) {
    std::fprintf(stderr, "runs: %s\n", Error.c_str());
    return 1;
  }
  auto Hash = [](uint64_t Value) {
    char Buffer[24];
    std::snprintf(Buffer, sizeof(Buffer), "0x%016llx",
                  static_cast<unsigned long long>(Value));
    return std::string(Buffer);
  };
  if (Sub == "list") {
    if (Argc != 4)
      return runsUsage();
    std::printf("%4s %-8s %-18s %8s %8s %12s %12s %12s\n", "idx", "command",
                "configHash", "trials", "ok", "qosMean", "effEnergy",
                "trials/s");
    for (size_t I = 0; I < Entries.size(); ++I) {
      const enerj::obs::LedgerEntry &E = Entries[I];
      std::printf("%4zu %-8s %-18s %8llu %8llu %12.6g %12.6g %12.6g\n", I,
                  E.Command.c_str(), Hash(E.ConfigHash).c_str(),
                  static_cast<unsigned long long>(E.Trials),
                  static_cast<unsigned long long>(E.Outcomes.Ok), E.QosMean,
                  E.EffectiveEnergyMean, E.TrialsPerSec);
    }
    return 0;
  }
  if (Sub == "diff") {
    if (Argc != 6)
      return runsUsage();
    auto Resolve = [&](const char *Text, size_t &Out) -> bool {
      long long Index = 0;
      if (!parseInt(Text, Index))
        return false;
      if (Index < 0)
        Index += static_cast<long long>(Entries.size());
      if (Index < 0 || Index >= static_cast<long long>(Entries.size()))
        return false;
      Out = static_cast<size_t>(Index);
      return true;
    };
    size_t IndexA = 0, IndexB = 0;
    if (!Resolve(Argv[4], IndexA) || !Resolve(Argv[5], IndexB)) {
      std::fprintf(stderr,
                   "runs diff: bad entry index (ledger has %zu entries)\n",
                   Entries.size());
      return 2;
    }
    const enerj::obs::LedgerEntry &A = Entries[IndexA];
    const enerj::obs::LedgerEntry &B = Entries[IndexB];
    std::printf("== runs diff [%zu] vs [%zu] ==\n", IndexA, IndexB);
    std::printf("  %-22s %s | %s\n", "command", A.Command.c_str(),
                B.Command.c_str());
    std::printf("  %-22s %s | %s  %s\n", "configHash",
                Hash(A.ConfigHash).c_str(), Hash(B.ConfigHash).c_str(),
                A.ConfigHash == B.ConfigHash ? "(same config)"
                                             : "(DIFFERENT config)");
    std::printf("  %-22s %s | %s  %s\n", "gridDigest",
                Hash(A.GridDigest).c_str(), Hash(B.GridDigest).c_str(),
                A.GridDigest == B.GridDigest ? "(bitwise-identical payload)"
                                             : "(payload differs)");
    std::printf("  %-22s %llu | %llu\n", "trials",
                static_cast<unsigned long long>(A.Trials),
                static_cast<unsigned long long>(B.Trials));
    auto Tally = [&](const char *Name, uint64_t ValueA, uint64_t ValueB) {
      std::printf("  %-22s %llu | %llu\n", Name,
                  static_cast<unsigned long long>(ValueA),
                  static_cast<unsigned long long>(ValueB));
    };
    Tally("outcomes.ok", A.Outcomes.Ok, B.Outcomes.Ok);
    Tally("outcomes.sloViolated", A.Outcomes.SloViolated,
          B.Outcomes.SloViolated);
    Tally("outcomes.aborted", A.Outcomes.Aborted, B.Outcomes.Aborted);
    Tally("outcomes.retried", A.Outcomes.Retried, B.Outcomes.Retried);
    Tally("outcomes.degraded", A.Outcomes.Degraded, B.Outcomes.Degraded);
    Tally("outcomes.powerFailed", A.Outcomes.PowerFailed,
          B.Outcomes.PowerFailed);
    auto Metric = [&](const char *Name, double ValueA, double ValueB) {
      std::printf("  %-22s %.17g | %.17g  (%+.3g)\n", Name, ValueA, ValueB,
                  ValueB - ValueA);
    };
    Metric("qosMean", A.QosMean, B.QosMean);
    Metric("energyMean", A.EnergyMean, B.EnergyMean);
    Metric("effectiveEnergyMean", A.EffectiveEnergyMean,
           B.EffectiveEnergyMean);
    Metric("trialsPerSec", A.TrialsPerSec, B.TrialsPerSec);
    return 0;
  }
  if (Sub == "check") {
    if (Argc != 6 || std::string(Argv[4]) != "--baseline")
      return runsUsage();
    bool Ok = true;
    std::string Text = readFile(Argv[5], Ok);
    if (!Ok) {
      std::fprintf(stderr, "runs check: cannot read '%s'\n", Argv[5]);
      return 1;
    }
    enerj::obs::json::Value Doc;
    if (!enerj::obs::json::parse(Text, &Doc, &Error) || !Doc.isObject()) {
      std::fprintf(stderr, "runs check: %s: %s\n", Argv[5],
                   Error.empty() ? "baseline is not a JSON object"
                                 : Error.c_str());
      return 1;
    }
    std::string Command = "eval";
    if (const enerj::obs::json::Value *V = Doc.find("command"))
      if (V->isString())
        Command = V->Text;
    bool HaveHash = false;
    uint64_t WantHash = 0;
    if (const enerj::obs::json::Value *V = Doc.find("configHash")) {
      if (!V->isString() || !parseHex64(V->Text, WantHash)) {
        std::fprintf(stderr,
                     "runs check: baseline configHash must be a 0x hash\n");
        return 1;
      }
      HaveHash = true;
    }
    // The baseline gates the *latest* comparable run: the last ledger
    // entry with the baseline's command (and configHash, when pinned).
    const enerj::obs::LedgerEntry *Entry = nullptr;
    size_t EntryIndex = 0;
    for (size_t I = 0; I < Entries.size(); ++I)
      if (Entries[I].Command == Command &&
          (!HaveHash || Entries[I].ConfigHash == WantHash)) {
        Entry = &Entries[I];
        EntryIndex = I;
      }
    if (!Entry) {
      std::fprintf(stderr,
                   "runs check: no ledger entry matches the baseline "
                   "(command '%s'%s)\n",
                   Command.c_str(),
                   HaveHash ? " with the pinned configHash" : "");
      return 1;
    }
    std::printf("== runs check: entry [%zu] (%s, configHash %s) vs %s ==\n",
                EntryIndex, Entry->Command.c_str(),
                Hash(Entry->ConfigHash).c_str(), Argv[5]);
    int Failures = 0;
    if (const enerj::obs::json::Value *V = Doc.find("gridDigest")) {
      uint64_t Want = 0;
      if (!V->isString() || !parseHex64(V->Text, Want)) {
        std::fprintf(stderr,
                     "runs check: baseline gridDigest must be a 0x hash\n");
        return 1;
      }
      bool Pass = Entry->GridDigest == Want;
      std::printf("  %-4s %-24s %s %s %s\n", Pass ? "ok" : "FAIL",
                  "gridDigest", Hash(Entry->GridDigest).c_str(),
                  Pass ? "==" : "!=", Hash(Want).c_str());
      if (!Pass)
        ++Failures;
    }
    auto Gate = [&](const char *Name, double Have, double Bound, bool Pass,
                    const char *Relation) {
      std::printf("  %-4s %-24s %.17g %s %.17g\n", Pass ? "ok" : "FAIL",
                  Name, Have, Relation, Bound);
      if (!Pass)
        ++Failures;
    };
    auto Threshold = [&](const char *Key, double &Out) -> bool {
      const enerj::obs::json::Value *V = Doc.find(Key);
      if (!V || !V->isNumber())
        return false;
      Out = V->asDouble();
      return true;
    };
    double Bound = 0.0;
    if (Threshold("qosMeanMax", Bound))
      Gate("qosMean", Entry->QosMean, Bound, Entry->QosMean <= Bound, "<=");
    if (Threshold("energyMeanMax", Bound))
      Gate("energyMean", Entry->EnergyMean, Bound,
           Entry->EnergyMean <= Bound, "<=");
    if (Threshold("effectiveEnergyMeanMax", Bound))
      Gate("effectiveEnergyMean", Entry->EffectiveEnergyMean, Bound,
           Entry->EffectiveEnergyMean <= Bound, "<=");
    if (Threshold("trialsPerSecMin", Bound))
      Gate("trialsPerSec", Entry->TrialsPerSec, Bound,
           Entry->TrialsPerSec >= Bound, ">=");
    if (Failures) {
      std::printf("runs check: %d gate(s) FAILED\n", Failures);
      return 1;
    }
    std::printf("runs check: all gates passed\n");
    return 0;
  }
  std::fprintf(stderr, "unknown runs subcommand '%s'\n", Sub.c_str());
  return runsUsage();
}

std::string readFile(const char *Path, bool &Ok) {
  std::ifstream In(Path);
  if (!In) {
    Ok = false;
    return {};
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Ok = true;
  return Buffer.str();
}

int usage() {
  std::fprintf(stderr,
               "usage: fenerj_tool check <file.fej>\n"
               "       fenerj_tool run <file.fej>\n"
               "       fenerj_tool fuzz <file.fej> [rounds]\n"
               "       fenerj_tool compile <file.fej> [-O1]  (emit ISA "
               "asm, optionally optimized)\n"
               "       fenerj_tool exec <file.fej> [-O1]     (compile + "
               "run at all levels)\n"
               "       fenerj_tool opt <file.fej|file.isa> [--passes a,b] "
               "[--level L]\n"
               "                       [--json] [--emit]\n"
               "                      (qualifier-aware optimizer with "
               "per-pass translation\n"
               "                       validation; --emit prints the "
               "optimized assembly)\n"
               "       fenerj_tool bound <file.fej|file.isa> [--level L] "
               "[--json] [--per-site]\n"
               "                       [--ledger f]\n"
               "                      (static reliability bounds: P(output "
               "bitwise-exact) lower\n"
               "                       bounds for the optimized binary at "
               "level L, default medium;\n"
               "                       --per-site lists endorsement-site "
               "bounds)\n"
               "       fenerj_tool lint <file.fej> [--json] [--Werror]\n"
               "                      (endorsement / precision-slack / "
               "dead-value / isa-flow /\n"
               "                       interproc-flow audits; --Werror "
               "fails on warnings)\n"
               "       fenerj_tool infer <file.fej>... [--json] "
               "[--suggest-annotations]\n"
               "                      (whole-program qualifier inference: "
               "maximal @approx\n"
               "                       relaxation with zero new "
               "endorsements, per app)\n"
               "       fenerj_tool eval [--apps a,b] [--levels l1,l2] "
               "[--seeds N] [--threads N]\n"
               "                        [--slo E] [--max-retries N] "
               "[--op-budget M]\n"
               "                        [--output-bound B] [--no-degrade] "
               "[--metrics] [--json]\n"
               "                        [--exec-mode interp|compiled]\n"
               "                        [--power-trace file|preset] "
               "[--checkpoint policy]\n"
               "                        [--journal-dir d] [--journal-sample "
               "N] [--progress]\n"
               "                        [--ledger file]\n"
               "                      (the Section 6 evaluation grid on "
               "the parallel trial runner;\n"
               "                       --slo/--max-retries/--op-budget arm "
               "the resilience policy,\n"
               "                       on either exec mode;\n"
               "                       --metrics adds per-site telemetry, "
               "JSON schema v3;\n"
               "                       --exec-mode compiled runs each "
               "cell's cached ISA kernel\n"
               "                       with batched fault injection, JSON "
               "schema v4;\n"
               "                       --power-trace meters every trial "
               "against an intermittent\n"
               "                       supply (steady[:r], "
               "brownout[:hi:lo], harvest[:seed], or a\n"
               "                       trace file), JSON schema v5; "
               "--checkpoint none|periodic:N|\n"
               "                       preregion sets the checkpoint "
               "policy;\n"
               "                       --journal-dir captures replayable "
               "flight-recorder journals\n"
               "                       (every non-ok trial, every "
               "--journal-sample'th ok trial);\n"
               "                       --progress heartbeats on stderr; "
               "--ledger appends one\n"
               "                       manifest line to a JSONL run "
               "ledger)\n"
               "       fenerj_tool replay <journal.json> [--blame]\n"
               "                      (re-execute a captured journal and "
               "verify its digest\n"
               "                       bitwise; --blame ranks journaled "
               "fault sites by QoS damage\n"
               "                       via forced-precise counterfactual "
               "replay)\n"
               "       fenerj_tool runs list <ledger.jsonl>\n"
               "       fenerj_tool runs diff <ledger.jsonl> <a> <b>\n"
               "       fenerj_tool runs check <ledger.jsonl> --baseline "
               "<file>\n"
               "                      (cross-run comparison over the run "
               "ledger; check gates\n"
               "                       QoS / energy / throughput against a "
               "baseline's thresholds)\n"
               "       fenerj_tool profile <app> [--level L] [--seeds N] "
               "[--threads N] [--top K]\n"
               "                           [--no-qos-delta] [--trace "
               "out.json] [--json] [--ledger f]\n"
               "                      (per-site energy/fault attribution "
               "with forced-precise QoS\n"
               "                       deltas; --trace exports a "
               "Chrome/Perfetto timeline)\n"
               "       fenerj_tool demo\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc >= 2 && std::string(Argv[1]) == "eval")
    return eval(Argc, Argv);
  if (Argc >= 2 && std::string(Argv[1]) == "profile")
    return profile(Argc, Argv);
  if (Argc >= 2 && std::string(Argv[1]) == "infer")
    return infer(Argc, Argv);
  if (Argc >= 2 && std::string(Argv[1]) == "replay")
    return replayMode(Argc, Argv);
  if (Argc >= 2 && std::string(Argv[1]) == "runs")
    return runsMode(Argc, Argv);
  if (Argc >= 2 && std::string(Argv[1]) == "demo") {
    std::printf("--- demo program ---\n%s--- check ---\n", DemoProgram);
    if (check(DemoProgram))
      return 1;
    std::printf("--- run ---\n");
    if (run(DemoProgram))
      return 1;
    std::printf("--- fuzz ---\n");
    return fuzz(DemoProgram, 10);
  }
  if (Argc < 3)
    return usage();
  if (std::string(Argv[1]) == "opt")
    return optMode(Argc, Argv);
  if (std::string(Argv[1]) == "bound")
    return boundMode(Argc, Argv);
  bool Ok = true;
  std::string Source = readFile(Argv[2], Ok);
  if (!Ok) {
    std::fprintf(stderr, "error: cannot read '%s'\n", Argv[2]);
    return 1;
  }
  std::string Mode = Argv[1];
  if (Mode == "check")
    return check(Source);
  if (Mode == "run")
    return run(Source);
  if (Mode == "fuzz")
    return fuzz(Source, Argc >= 4 ? std::atoi(Argv[3]) : 20);
  if (Mode == "compile" || Mode == "exec") {
    bool Optimize = false;
    for (int Arg = 3; Arg < Argc; ++Arg) {
      std::string Flag = Argv[Arg];
      if (Flag == "-O1")
        Optimize = true;
      else if (Flag == "-O0")
        Optimize = false;
      else {
        std::fprintf(stderr, "unknown %s flag '%s' (-O0 or -O1)\n",
                     Mode.c_str(), Flag.c_str());
        return 2;
      }
    }
    return compileIsa(Source, /*Execute=*/Mode == "exec", Optimize);
  }
  if (Mode == "lint" || Mode == "--lint") {
    bool Json = false, Werror = false;
    for (int Arg = 3; Arg < Argc; ++Arg) {
      std::string Flag = Argv[Arg];
      if (Flag == "--json")
        Json = true;
      else if (Flag == "--Werror")
        Werror = true;
      else {
        std::fprintf(stderr, "unknown lint flag '%s'\n", Flag.c_str());
        return 2;
      }
    }
    return lint(Source, Argv[2], Json, Werror);
  }
  return usage();
}
