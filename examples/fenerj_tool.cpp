//===- examples/fenerj_tool.cpp - FEnerJ checker / interpreter CLI --------===//
//
// A command-line driver for the FEnerJ formal language:
//
//   fenerj_tool check <file.fej>       type-check only
//   fenerj_tool run <file.fej>         check, then evaluate precisely
//   fenerj_tool fuzz <file.fej> [n]    check, then evaluate under n random
//                                      perturbation seeds and report
//                                      whether the precise projection is
//                                      invariant (non-interference)
//   fenerj_tool lint <file.fej> [--json]
//                                      check, then run the enerj-lint
//                                      audits (endorsement, precision
//                                      slack, dead values, isa-flow)
//   fenerj_tool eval [--apps a,b] [--levels l1,l2] [--seeds N]
//                    [--threads N] [--json]
//                                      run the Section 6 evaluation grid
//                                      on the parallel trial runner
//   fenerj_tool demo                   run a built-in demo program
//
//===----------------------------------------------------------------------===//

#include "analysis/lint.h"
#include "fenerj/codegen.h"
#include "fenerj/fenerj.h"
#include "harness/eval.h"
#include "isa/assembler.h"
#include "isa/machine.h"
#include "isa/verifier.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

using namespace enerj::fenerj;

namespace {

const char *DemoProgram = R"(// The paper's IntPair (Section 2.5.1), runnable.
class IntPair {
  @context int x;
  @context int y;
  @approx int numAdditions;
  int addToBoth(@context int amount) {
    this.x := this.x + amount;
    this.y := this.y + amount;
    this.numAdditions := this.numAdditions + 1;
    0;
  }
}
{
  let @precise IntPair p = new @precise IntPair();
  let @approx IntPair a = new @approx IntPair();
  let int i = 0;
  while (i < 5) {
    p.addToBoth(i);
    a.addToBoth(i);
    i = i + 1;
  };
  p.x + p.y;   // Precise: always 20.
}
)";

int check(const std::string &Source, bool Quiet = false) {
  DiagnosticEngine Diags;
  ClassTable Table;
  std::optional<Program> Prog = compile(Source, Table, Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  if (!Quiet)
    std::printf("ok: program is well typed (%zu class(es))\n",
                Prog->Classes.size());
  return 0;
}

int run(const std::string &Source) {
  DiagnosticEngine Diags;
  ClassTable Table;
  std::optional<Program> Prog = compile(Source, Table, Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  Interpreter Interp(*Prog, Table, {});
  EvalResult Result = Interp.run();
  if (Result.Trapped) {
    std::fprintf(stderr, "trap: %s\n", Result.TrapMessage.c_str());
    return 1;
  }
  std::printf("result: %s\n", Result.Result.str().c_str());
  std::printf("-- precise projection --\n%s",
              Interp.preciseProjection(Result).c_str());
  return 0;
}

int fuzz(const std::string &Source, int Rounds) {
  DiagnosticEngine Diags;
  ClassTable Table;
  std::optional<Program> Prog = compile(Source, Table, Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  Interpreter Ref(*Prog, Table, {});
  EvalResult RefResult = Ref.run();
  if (RefResult.Trapped) {
    std::fprintf(stderr, "trap (precise run): %s\n",
                 RefResult.TrapMessage.c_str());
    return 1;
  }
  std::string RefProjection = Ref.preciseProjection(RefResult);
  int Violations = 0;
  for (int Round = 1; Round <= Rounds; ++Round) {
    RandomPerturber Perturb(static_cast<uint64_t>(Round), 1.0);
    InterpOptions Options;
    Options.Perturb = &Perturb;
    Interpreter Interp(*Prog, Table, Options);
    EvalResult Result = Interp.run();
    if (Result.Trapped) {
      std::printf("round %d: TRAP: %s\n", Round,
                  Result.TrapMessage.c_str());
      ++Violations;
      continue;
    }
    if (Interp.preciseProjection(Result) != RefProjection) {
      std::printf("round %d: PRECISE STATE CHANGED\n", Round);
      ++Violations;
    }
  }
  if (Violations == 0) {
    std::printf("non-interference held across %d fully-perturbed runs\n",
                Rounds);
    return 0;
  }
  std::printf("%d violation(s) — if the program is endorse-free this is "
              "a checker bug\n", Violations);
  return 1;
}

int compileIsa(const std::string &Source, bool Execute) {
  DiagnosticEngine Diags;
  ClassTable Table;
  std::optional<Program> Prog = compile(Source, Table, Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  CodegenResult Code = compileToIsa(*Prog);
  if (!Code.Ok) {
    std::fprintf(stderr, "codegen error: %s\n", Code.Error.c_str());
    return 1;
  }
  std::vector<std::string> AsmErrors;
  std::optional<enerj::isa::IsaProgram> Binary =
      enerj::isa::assemble(Code.Assembly, AsmErrors);
  if (!Binary) {
    for (const std::string &E : AsmErrors)
      std::fprintf(stderr, "%s\n", E.c_str());
    return 1;
  }
  std::vector<enerj::isa::VerifyError> Violations =
      enerj::isa::verify(*Binary);
  for (const enerj::isa::VerifyError &E : Violations)
    std::fprintf(stderr, "verifier: %s\n", E.str().c_str());
  if (!Violations.empty())
    return 1;
  if (!Execute) {
    std::fputs(Code.Assembly.c_str(), stdout);
    return 0;
  }
  for (enerj::ApproxLevel Level :
       {enerj::ApproxLevel::None, enerj::ApproxLevel::Mild,
        enerj::ApproxLevel::Medium, enerj::ApproxLevel::Aggressive}) {
    enerj::isa::Machine M(*Binary, enerj::FaultConfig::preset(Level));
    enerj::isa::MachineResult Result = M.run();
    if (Result.Trapped) {
      std::printf("%-10s trap: %s\n", enerj::approxLevelName(Level),
                  Result.TrapMessage.c_str());
      continue;
    }
    std::printf("%-10s r1 = %lld   f1 = %.9g   (%llu instructions)\n",
                enerj::approxLevelName(Level),
                static_cast<long long>(M.intReg(1)), M.fpReg(1),
                static_cast<unsigned long long>(
                    Result.InstructionsExecuted));
  }
  return 0;
}

int lint(const std::string &Source, const char *FileName, bool Json) {
  DiagnosticEngine Diags;
  ClassTable Table;
  std::optional<Program> Prog = compile(Source, Table, Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  enerj::analysis::LintResult Result =
      enerj::analysis::runLint(*Prog, Table);
  std::string Rendered =
      Json ? enerj::analysis::renderLintJson(Result, FileName) + "\n"
           : enerj::analysis::renderLintText(Result, FileName);
  std::fputs(Rendered.c_str(), stdout);
  // Warnings and suggestions are advisory; only hard errors (isa-flow
  // discipline violations on an executable path) fail the run.
  return Result.hasErrors() ? 1 : 0;
}

/// Splits "a,b,c" on commas; empty segments are dropped.
std::vector<std::string> splitList(const std::string &Value) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (Start <= Value.size()) {
    size_t Comma = Value.find(',', Start);
    if (Comma == std::string::npos)
      Comma = Value.size();
    if (Comma > Start)
      Parts.push_back(Value.substr(Start, Comma - Start));
    Start = Comma + 1;
  }
  return Parts;
}

int eval(int Argc, char **Argv) {
  enerj::harness::EvalOptions Options;
  bool Json = false;
  for (int Arg = 2; Arg < Argc; ++Arg) {
    std::string Flag = Argv[Arg];
    auto NextValue = [&]() -> std::string {
      if (Arg + 1 >= Argc) {
        std::fprintf(stderr, "%s needs a value\n", Flag.c_str());
        std::exit(2);
      }
      return Argv[++Arg];
    };
    if (Flag == "--json") {
      Json = true;
    } else if (Flag == "--apps") {
      for (const std::string &Name : splitList(NextValue())) {
        const enerj::apps::Application *App =
            enerj::apps::findApplication(Name);
        if (!App) {
          std::fprintf(stderr, "unknown application '%s'; known:",
                       Name.c_str());
          for (const enerj::apps::Application *Known :
               enerj::apps::allApplications())
            std::fprintf(stderr, " %s", Known->name());
          std::fprintf(stderr, "\n");
          return 2;
        }
        Options.Apps.push_back(App);
      }
    } else if (Flag == "--levels") {
      for (const std::string &Name : splitList(NextValue())) {
        bool Found = false;
        for (enerj::ApproxLevel Level :
             {enerj::ApproxLevel::None, enerj::ApproxLevel::Mild,
              enerj::ApproxLevel::Medium, enerj::ApproxLevel::Aggressive})
          if (Name == enerj::approxLevelName(Level)) {
            Options.Levels.push_back(Level);
            Found = true;
          }
        if (!Found) {
          std::fprintf(stderr, "unknown level '%s' (none, mild, medium, "
                               "aggressive)\n", Name.c_str());
          return 2;
        }
      }
    } else if (Flag == "--seeds") {
      Options.Seeds = std::atoi(NextValue().c_str());
      if (Options.Seeds < 1) {
        std::fprintf(stderr, "--seeds needs a positive count\n");
        return 2;
      }
    } else if (Flag == "--threads") {
      Options.Threads =
          static_cast<unsigned>(std::atoi(NextValue().c_str()));
    } else {
      std::fprintf(stderr, "unknown eval flag '%s'\n", Flag.c_str());
      return 2;
    }
  }
  enerj::harness::EvalResult Result = enerj::harness::runEval(Options);
  std::string Rendered = Json
                             ? enerj::harness::renderEvalJson(Result) + "\n"
                             : enerj::harness::renderEvalText(Result);
  std::fputs(Rendered.c_str(), stdout);
  return 0;
}

std::string readFile(const char *Path, bool &Ok) {
  std::ifstream In(Path);
  if (!In) {
    Ok = false;
    return {};
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Ok = true;
  return Buffer.str();
}

int usage() {
  std::fprintf(stderr,
               "usage: fenerj_tool check <file.fej>\n"
               "       fenerj_tool run <file.fej>\n"
               "       fenerj_tool fuzz <file.fej> [rounds]\n"
               "       fenerj_tool compile <file.fej>   (emit ISA asm)\n"
               "       fenerj_tool exec <file.fej>      (compile + run at "
               "all levels)\n"
               "       fenerj_tool lint <file.fej> [--json]\n"
               "                      (endorsement / precision-slack / "
               "dead-value / isa-flow audits)\n"
               "       fenerj_tool eval [--apps a,b] [--levels l1,l2] "
               "[--seeds N] [--threads N] [--json]\n"
               "                      (the Section 6 evaluation grid on "
               "the parallel trial runner)\n"
               "       fenerj_tool demo\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc >= 2 && std::string(Argv[1]) == "eval")
    return eval(Argc, Argv);
  if (Argc >= 2 && std::string(Argv[1]) == "demo") {
    std::printf("--- demo program ---\n%s--- check ---\n", DemoProgram);
    if (check(DemoProgram))
      return 1;
    std::printf("--- run ---\n");
    if (run(DemoProgram))
      return 1;
    std::printf("--- fuzz ---\n");
    return fuzz(DemoProgram, 10);
  }
  if (Argc < 3)
    return usage();
  bool Ok = true;
  std::string Source = readFile(Argv[2], Ok);
  if (!Ok) {
    std::fprintf(stderr, "error: cannot read '%s'\n", Argv[2]);
    return 1;
  }
  std::string Mode = Argv[1];
  if (Mode == "check")
    return check(Source);
  if (Mode == "run")
    return run(Source);
  if (Mode == "fuzz")
    return fuzz(Source, Argc >= 4 ? std::atoi(Argv[3]) : 20);
  if (Mode == "compile")
    return compileIsa(Source, /*Execute=*/false);
  if (Mode == "exec")
    return compileIsa(Source, /*Execute=*/true);
  if (Mode == "lint" || Mode == "--lint")
    return lint(Source, Argv[2],
                Argc >= 4 && std::string(Argv[3]) == "--json");
  return usage();
}
