//===- examples/isa_demo.cpp - One binary, many microarchitectures --------===//
//
// Section 4's central claim, demonstrated at the ISA level: a single
// binary with a mix of precise and approximate (`.a`) instructions runs
// unchanged on processors with different approximation support. On a
// processor with none (ApproxLevel::None) the `.a` instructions execute
// precisely and save nothing; more aggressive microarchitectures save
// more energy at growing accuracy cost — without recompiling.
//
// The demo assembles a dot-product kernel (approximate data in the
// reduced-refresh memory region, approximate FP arithmetic, precise loop
// control), verifies it against the EnerJ discipline, and runs it at
// every level. It also shows the verifier rejecting an undisciplined
// program.
//
//===----------------------------------------------------------------------===//

#include "energy/model.h"
#include "isa/assembler.h"
#include "isa/machine.h"
#include "isa/verifier.h"

#include <cmath>
#include <cstdio>

using namespace enerj;
using namespace enerj::isa;

namespace {

constexpr int VectorLength = 64;

// r1: index; r2: length; r3: scratch addresses; f1: precise accumulator;
// f16/f17: approximate loads; f18: approximate product.
// Memory: [0, 64) = vector A (approx), [64, 128) = vector B (approx).
const char *DotProductKernel = R"(
  .adata 128
  li  r1, 0
  li  r2, 64
  lfi f1, 0.0
loop:
  flw.a f16, r1, 0      ; A[i]   (approximate region)
  flw.a f17, r1, 64     ; B[i]
  fmul.a f18, f16, f17  ; approximate multiply
  fendorse f2, f18      ; certified gate into the precise reduction
  fadd f1, f1, f2       ; precise accumulate (fault-sensitive phase)
  addi r1, r1, 1
  blt r1, r2, loop
  halt
)";

const char *Undisciplined = R"(
  .adata 4
  flw.a f16, r0, 0
  fadd f1, f16, f1   ; approximate register into a precise add: illegal
  halt
)";

} // namespace

int main() {
  std::vector<std::string> AsmErrors;
  std::optional<IsaProgram> Program = assemble(DotProductKernel, AsmErrors);
  if (!Program) {
    for (const std::string &E : AsmErrors)
      std::fprintf(stderr, "%s\n", E.c_str());
    return 1;
  }
  std::vector<VerifyError> Violations = verify(*Program);
  if (!Violations.empty()) {
    for (const VerifyError &E : Violations)
      std::fprintf(stderr, "%s\n", E.str().c_str());
    return 1;
  }
  std::printf("dot-product kernel: %zu instructions, verified against the "
              "EnerJ discipline\n\n",
              Program->Instructions.size());

  // The same binary on four microarchitectures.
  double Reference = 0.0;
  for (ApproxLevel Level : {ApproxLevel::None, ApproxLevel::Mild,
                            ApproxLevel::Medium, ApproxLevel::Aggressive}) {
    FaultConfig Config = FaultConfig::preset(Level);
    Machine M(*Program, Config);
    // Load the input vectors (the "OS" writes them before the program
    // runs; poke* is fault-free).
    for (int I = 0; I < VectorLength; ++I) {
      M.pokeMemFp(static_cast<uint64_t>(I), 0.5 + 0.01 * I);
      M.pokeMemFp(static_cast<uint64_t>(VectorLength + I), 1.0 - 0.005 * I);
    }
    MachineResult Result = M.run();
    if (Result.Trapped) {
      std::fprintf(stderr, "trap at %s: %s\n", approxLevelName(Level),
                   Result.TrapMessage.c_str());
      return 1;
    }
    double Dot = M.fpReg(1);
    if (Level == ApproxLevel::None)
      Reference = Dot;
    EnergyReport Energy = computeEnergy(M.stats(), Config);
    std::printf("%-10s  dot = %12.6f   |error| = %-10.3g  "
                "energy = %.3f (saves %4.1f%%)   [%llu instrs, %llu "
                "timing errors]\n",
                approxLevelName(Level), Dot, std::fabs(Dot - Reference),
                Energy.TotalFactor, Energy.saved() * 100,
                static_cast<unsigned long long>(Result.InstructionsExecuted),
                static_cast<unsigned long long>(
                    M.stats().Ops.TimingErrors));
  }

  std::printf("\nAnd the discipline is machine-checkable: the following "
              "kernel leaks an\napproximate register into a precise add "
              "and is rejected before it runs —\n");
  std::optional<IsaProgram> Bad = assemble(Undisciplined, AsmErrors);
  if (Bad)
    for (const VerifyError &E : verify(*Bad))
      std::printf("  %s\n", E.str().c_str());
  return 0;
}
