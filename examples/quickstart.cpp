//===- examples/quickstart.cpp - EnerJ API in five minutes ----------------===//
//
// The smallest useful EnerJ program: annotate a dot product, run it
// precisely and approximately, and see the energy/quality trade-off.
//
// Build & run:   cmake --build build && ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/enerj.h"

#include <cstdio>
#include <vector>

using namespace enerj;

/// Dot product following the paper's application pattern (Section 2.2):
/// a fault-tolerant elementwise phase on approximate data, then a
/// fault-sensitive reduction done precisely. Each product is endorsed at
/// the phase boundary; the accumulator itself carries precise guarantees,
/// so one corrupted product perturbs one term, never the whole sum.
static double dotProduct(size_t Size, uint64_t Seed) {
  Rng Workload(Seed);
  // @Approx double[] a, b;
  ApproxArray<double> A(Size), B(Size);
  for (size_t I = 0; I < Size; ++I) {
    A[I] = Approx<double>(Workload.nextDouble());
    B[I] = Approx<double>(Workload.nextDouble());
  }

  Precise<double> Sum = 0.0;
  for (Precise<int32_t> I = 0; I < static_cast<int32_t>(Size); ++I) {
    size_t Index = static_cast<size_t>(I.get());
    // Approximate multiply; endorse() is the certified gate into the
    // precise reduction. (Accumulating in an Approx<double> instead
    // would compile too — but then a single fault could wreck the whole
    // result, which is exactly why the paper keeps reductions precise.)
    Approx<double> Product = A.get(Index) * B.get(Index);
    // "The programmer certifies that the approximate data is handled
    // intelligently" (Section 2.2): both factors are in [0,1), so any
    // endorsed term outside [0,1] is a fault — drop it rather than let
    // one corrupted value dominate the sum.
    double Term = endorse(Product);
    if (!(Term >= 0.0 && Term <= 1.0))
      Term = 0.0;
    Sum += Term;
  }
  return Sum.get();
}

int main() {
  constexpr size_t Size = 10000;

  // 1. With no simulator installed, annotations are ignored: this is the
  //    precise reference ("one valid execution is plain Java").
  double Reference = dotProduct(Size, /*Seed=*/42);
  std::printf("precise result:      %.6f\n", Reference);

  // 2. The same code on approximate hardware, at each Table 2 level.
  for (ApproxLevel Level : {ApproxLevel::Mild, ApproxLevel::Medium,
                            ApproxLevel::Aggressive}) {
    FaultConfig Config = FaultConfig::preset(Level);
    Simulator Sim(Config);
    double Result;
    {
      SimulatorScope Scope(Sim);
      Result = dotProduct(Size, /*Seed=*/42);
    }
    RunStats Stats = Sim.stats();
    EnergyReport Energy = computeEnergy(Stats, Config);
    std::printf("%-10s result:    %14.6f   |error| = %-12.3g "
                "energy = %.3f (saves %4.1f%%)\n",
                approxLevelName(Level), Result,
                Result - Reference < 0 ? Reference - Result
                                       : Result - Reference,
                Energy.TotalFactor, Energy.saved() * 100);
  }

  // 3. What the static rules forbid (uncomment to see the compiler
  //    enforce the paper's guarantees):
  //
  //    Approx<double> A = 1.0;
  //    double P = A;                  // error: no approx->precise flow
  //    if (A > Approx<double>(0.0)) {}  // error: approximate condition
  //    ApproxArray<double> Arr(4);
  //    Arr[Approx<int32_t>(1)];       // error: approximate subscript
  return 0;
}
